//! Emits the `BENCH_daemon.json` wire-protocol baseline: hundreds of
//! client threads, round-robined across two tenant benchmarks, hammer a
//! single multi-tenant `intune_daemon` event loop over loopback TCP with
//! batched selection requests while identical shadow artifacts mirror
//! every tenant's traffic; then each shadow is promoted and the daemon
//! shut down.
//!
//! ```text
//! cargo run --release -p intune_bench --bin daemon_bench [-- OUT.json]
//! cargo run --release -p intune_bench --bin daemon_bench -- --journal [OUT.json]
//! cargo run --release -p intune_bench --bin daemon_bench -- --replay [OUT.json]
//! ```
//!
//! With `--journal` the bench instead exercises the **continuous-learning
//! loop** and emits `BENCH_retrain.json`: traced requests (features +
//! raw-input payloads) fill a request journal, the journal compacts into
//! a corpus, a retrain warm-started from the base training cache pushes
//! revision 1, and the shadow gate promotes it. Journal/compaction/cell
//! counts are deterministic; wall-clock figures are environment-dependent.
//!
//! With `--replay` the bench exercises the **record/replay subsystem**
//! and emits `BENCH_replay.json`: a recording daemon captures the wire
//! traffic of the load phase, the capture is replayed twice in-process
//! against the same artifact, and the transcripts are compared byte-wise
//! — `"diverged": 0` is the document's load-bearing (CI-asserted) figure.
//!
//! Daemon worker count follows `INTUNE_THREADS` (hardened parse;
//! default 1). The committed baselines use 256 clients × 8 batches
//! spread over the sort2 + binpacking tenants (daemon) and 4 clients ×
//! 8 traced batches of the sort2 micro corpus (retrain).

use intune_bench::{
    daemon_baseline, daemon_baseline_json, micro_config, replay_baseline, replay_baseline_json,
    retrain_baseline, retrain_baseline_json, DaemonBenchConfig, ReplayBenchConfig,
    RetrainBenchConfig,
};
use intune_eval::TestCase;

fn main() {
    let mut journal = false;
    let mut wire_replay = false;
    let mut out_path: Option<String> = None;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--journal" => journal = true,
            "--replay" => wire_replay = true,
            other if other.starts_with("--") => {
                eprintln!("error: unknown flag {other}");
                eprintln!("usage: daemon_bench [--journal | --replay] [OUT.json]");
                std::process::exit(2);
            }
            other => out_path = Some(other.to_string()),
        }
    }
    if journal && wire_replay {
        eprintln!("error: --journal and --replay are mutually exclusive");
        std::process::exit(2);
    }
    let threads = intune_exec::threads_from_env_or_exit(1);

    if wire_replay {
        let out_path = out_path.unwrap_or_else(|| "BENCH_replay.json".to_string());
        let cfg = ReplayBenchConfig {
            suite: micro_config(),
            case: TestCase::Sort2,
            clients: 4,
            batches_per_client: 8,
            threads,
        };
        eprintln!(
            "record/replay round trip: {} x {} batches of {} vectors \
             ({} daemon workers)...",
            cfg.clients, cfg.batches_per_client, cfg.suite.test, cfg.threads
        );
        let result = replay_baseline(&cfg);
        let json = replay_baseline_json(&cfg, &result);
        std::fs::write(&out_path, &json).expect("write baseline json");
        print!("{json}");
        eprintln!("wrote {out_path}");
        if result.diverged != 0 {
            eprintln!(
                "error: {} selections diverged between replays",
                result.diverged
            );
            std::process::exit(4);
        }
        return;
    }

    if journal {
        let out_path = out_path.unwrap_or_else(|| "BENCH_retrain.json".to_string());
        let cfg = RetrainBenchConfig {
            suite: micro_config(),
            case: TestCase::Sort2,
            clients: 4,
            batches_per_client: 8,
            threads,
        };
        eprintln!(
            "continuous-learning load test: {} x {} traced batches of {} vectors \
             ({} daemon workers)...",
            cfg.clients, cfg.batches_per_client, cfg.suite.test, cfg.threads
        );
        let result = retrain_baseline(&cfg);
        let json = retrain_baseline_json(&cfg, &result);
        std::fs::write(&out_path, &json).expect("write baseline json");
        print!("{json}");
        eprintln!("wrote {out_path}");
        return;
    }

    let out_path = out_path.unwrap_or_else(|| "BENCH_daemon.json".to_string());
    let cfg = DaemonBenchConfig {
        suite: micro_config(),
        cases: vec![TestCase::Sort2, TestCase::Binpacking],
        clients: std::env::var("BCLIENTS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(256),
        batches_per_client: std::env::var("BBATCH")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(8),
        threads,
    };
    eprintln!(
        "daemon load test: {} clients over {} tenants x {} batches of {} vectors \
         ({} daemon workers)...",
        cfg.clients,
        cfg.cases.len(),
        cfg.batches_per_client,
        cfg.suite.test,
        cfg.threads
    );
    let result = daemon_baseline(&cfg);
    let json = daemon_baseline_json(&cfg, &result);
    std::fs::write(&out_path, &json).expect("write baseline json");
    print!("{json}");
    eprintln!("wrote {out_path}");
}
