//! Emits the `BENCH_exec.json` measurement-path baseline: per-case suite
//! wall time plus the engine's cache-hit accounting, machine-readable so
//! the perf trajectory can be diffed across commits.
//!
//! ```text
//! cargo run --release -p intune_bench --bin bench_exec [-- OUT.json]
//! ```
//!
//! Worker count follows `INTUNE_THREADS` (default: machine parallelism,
//! capped at 8). Wall times are environment-dependent; the cell counts,
//! cache hits, and hit rates are deterministic for a given scale.
//!
//! Set `INTUNE_CACHE_DIR=DIR` to persist per-corpus cost caches across
//! invocations: the first run saves them, repeated runs warm-start and
//! measure zero fresh cells. The committed baseline is a cold run.

use intune_bench::{baseline_json, exec_baseline, micro_config};
use intune_eval::TestCase;
use intune_exec::Engine;

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_exec.json".to_string());
    // Hardened env parses: garbage INTUNE_CACHE_DIR / INTUNE_THREADS
    // values abort with a typed error instead of degrading silently.
    let cache_dir = intune_exec::cache_dir_from_env_or_exit();
    let engine = Engine::from_env_or_exit();
    let cfg = micro_config();
    eprintln!(
        "measuring {} cases at micro scale on {} worker threads{}...",
        TestCase::all().len(),
        engine.threads(),
        cache_dir
            .as_ref()
            .map(|d| format!(", cost caches in {}", d.display()))
            .unwrap_or_default()
    );
    let cases = exec_baseline(&cfg, &TestCase::all(), &engine, cache_dir.as_deref());
    let json = baseline_json(engine.threads(), &cases);
    std::fs::write(&out_path, &json).expect("write baseline json");
    print!("{json}");
    eprintln!("wrote {out_path}");
}
