//! # intune-bench
//!
//! Criterion benches for the `intune` workspace. Each paper table/figure
//! has a corresponding bench target that exercises the code path which
//! regenerates it (at micro scale — the `intune-eval` binaries produce the
//! full artifacts):
//!
//! * `table1` — the eight end-to-end learn+evaluate cases.
//! * `figures` — Figure 6 distribution computation, Figure 7 model,
//!   Figure 8 landmark-subset sweeps.
//! * `micro` — the underlying algorithms (sorts, packers, solvers, SVD
//!   methods, K-means, trees, the EA).
//! * `ablations` — λ sweep and landmark-selection strategies.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use intune_eval::SuiteConfig;

/// A micro-scale suite configuration for benches: one case runs in tens of
/// milliseconds so Criterion can sample it meaningfully.
pub fn micro_config() -> SuiteConfig {
    SuiteConfig {
        train: 16,
        test: 8,
        clusters: 3,
        ea_population: 6,
        ea_generations: 3,
        folds: 2,
        sort_n: (64, 256),
        cluster_n: (60, 120),
        pack_n: (60, 150),
        svd_n: (8, 12),
        pde2_sizes: vec![7],
        pde3_sizes: vec![3],
        ..SuiteConfig::ci()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn micro_config_is_tiny() {
        let cfg = micro_config();
        assert!(cfg.train <= 16);
        assert!(cfg.clusters <= 3);
    }
}
