//! # intune-bench
//!
//! Criterion benches for the `intune` workspace. Each paper table/figure
//! has a corresponding bench target that exercises the code path which
//! regenerates it (at micro scale — the `intune-eval` binaries produce the
//! full artifacts):
//!
//! * `table1` — the eight end-to-end learn+evaluate cases.
//! * `figures` — Figure 6 distribution computation, Figure 7 model,
//!   Figure 8 landmark-subset sweeps.
//! * `micro` — the underlying algorithms (sorts, packers, solvers, SVD
//!   methods, K-means, trees, the EA).
//! * `ablations` — λ sweep and landmark-selection strategies.
//!
//! Besides the Criterion targets, three binaries emit machine-readable
//! baselines so performance trajectories can be tracked across commits
//! (all rendered by [`report`]: sorted keys, trailing newline):
//!
//! * `bench_exec` → `BENCH_exec.json` — per-case suite wall time plus the
//!   measurement engine's cache-hit accounting (set `INTUNE_CACHE_DIR`
//!   to warm-start repeated runs from persisted cost caches);
//! * `serve_bench` → `BENCH_serve.json` — selector-service throughput
//!   (selections/sec), batch sizes, and drift/fallback counters over
//!   reloaded model artifacts ([`serve_baseline`]);
//! * `daemon_bench` → `BENCH_daemon.json` — wire-protocol load test
//!   against a live `intune_daemon`: N client threads × batched
//!   requests, p50/p95 frame latency, shadow agreement
//!   ([`daemon_baseline`]);
//! * `daemon_bench --journal` → `BENCH_retrain.json` — the
//!   continuous-learning loop under load: journal append throughput,
//!   compaction ratio, retrain wall time, and the cells the warm cost
//!   cache saved ([`retrain_baseline`]);
//! * `daemon_bench --replay` → `BENCH_replay.json` — the record/replay
//!   round trip: capture wire traffic under load, replay it twice
//!   in-process, and prove zero byte-wise divergence
//!   ([`replay_baseline`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod daemon_baseline;
mod replay_baseline;
pub mod report;
mod retrain_baseline;
mod serve_baseline;

pub use daemon_baseline::{
    daemon_baseline, daemon_baseline_json, DaemonBenchConfig, DaemonBenchResult, LatencyHistogram,
    TenantBenchResult,
};
pub use replay_baseline::{
    replay_baseline, replay_baseline_json, ReplayBenchConfig, ReplayBenchResult,
};
pub use retrain_baseline::{
    retrain_baseline, retrain_baseline_json, RetrainBenchConfig, RetrainBenchResult,
};
pub use serve_baseline::{
    serve_baseline, serve_baseline_json, ServeBenchConfig, ServeCaseBaseline,
};

use intune_eval::{run_case_full, CaseRunOptions, SuiteConfig, TestCase};
use intune_exec::Engine;
use std::path::Path;
use std::time::Instant;

/// A micro-scale suite configuration for benches: one case runs in tens of
/// milliseconds so Criterion can sample it meaningfully.
pub fn micro_config() -> SuiteConfig {
    SuiteConfig {
        train: 16,
        test: 8,
        clusters: 3,
        ea_population: 6,
        ea_generations: 3,
        folds: 2,
        sort_n: (64, 256),
        cluster_n: (60, 120),
        pack_n: (60, 150),
        svd_n: (8, 12),
        pde2_sizes: vec![7],
        pde3_sizes: vec![3],
        ..SuiteConfig::ci()
    }
}

/// One case's contribution to the `BENCH_exec.json` baseline.
#[derive(Debug, Clone)]
pub struct CaseBaseline {
    /// Table-1 case name.
    pub name: String,
    /// End-to-end learn + evaluate wall time, milliseconds.
    pub wall_ms: f64,
    /// Fresh benchmark executions performed by the engine.
    pub cells_measured: u64,
    /// Measurements answered from the cost cache.
    pub cache_hits: u64,
    /// Duplicate cells collapsed at plan construction.
    pub dedup_saved: u64,
    /// Cache hits over requested cells.
    pub hit_rate: f64,
}

/// Runs `cases` at `cfg` scale on one shared engine and collects the
/// measurement-path baseline (wall time + engine counters per case).
/// When `cache_dir` is given, per-corpus cost caches are loaded from and
/// saved back to it, so repeated runs warm-start (a second run measures
/// zero fresh cells); the committed `BENCH_exec.json` is a cold run.
pub fn exec_baseline(
    cfg: &SuiteConfig,
    cases: &[TestCase],
    engine: &Engine,
    cache_dir: Option<&Path>,
) -> Vec<CaseBaseline> {
    let run = CaseRunOptions {
        cache_dir: cache_dir.map(Path::to_path_buf),
        ..CaseRunOptions::default()
    };
    cases
        .iter()
        .map(|&case| {
            let start = Instant::now();
            let outcome = run_case_full(case, cfg, engine, &run).expect("suite case failed");
            let wall_ms = start.elapsed().as_secs_f64() * 1e3;
            CaseBaseline {
                name: case.name().to_string(),
                wall_ms,
                cells_measured: outcome.engine.cells_measured,
                cache_hits: outcome.engine.cache_hits,
                dedup_saved: outcome.engine.dedup_saved,
                hit_rate: outcome.engine.hit_rate(),
            }
        })
        .collect()
}

/// Renders a baseline as the machine-readable `BENCH_exec.json` document
/// (through [`report`]: sorted keys, trailing newline, versioned schema).
pub fn baseline_json(threads: usize, cases: &[CaseBaseline]) -> String {
    use serde_json::Value;
    let total_wall: f64 = cases.iter().map(|c| c.wall_ms).sum();
    let total_measured: u64 = cases.iter().map(|c| c.cells_measured).sum();
    let total_hits: u64 = cases.iter().map(|c| c.cache_hits).sum();
    let total_rate = intune_exec::hit_rate(total_hits, total_measured + total_hits);
    let doc = report::obj(vec![
        ("schema", Value::String("intune-bench-exec/2".into())),
        ("threads", Value::UInt(threads as u64)),
        (
            "cases",
            Value::Array(
                cases
                    .iter()
                    .map(|c| {
                        report::obj(vec![
                            ("name", Value::String(c.name.clone())),
                            ("wall_ms", report::ms(c.wall_ms)),
                            ("cells_measured", Value::UInt(c.cells_measured)),
                            ("cache_hits", Value::UInt(c.cache_hits)),
                            ("dedup_saved", Value::UInt(c.dedup_saved)),
                            ("hit_rate", report::rate(c.hit_rate)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "total",
            report::obj(vec![
                ("wall_ms", report::ms(total_wall)),
                ("cells_measured", Value::UInt(total_measured)),
                ("cache_hits", Value::UInt(total_hits)),
                ("hit_rate", report::rate(total_rate)),
            ]),
        ),
    ]);
    report::render(&doc)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn micro_config_is_tiny() {
        let cfg = micro_config();
        assert!(cfg.train <= 16);
        assert!(cfg.clusters <= 3);
    }

    #[test]
    fn warm_cache_dir_eliminates_fresh_measurement() {
        let dir = std::env::temp_dir().join(format!("intune-bench-warm-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let cold = exec_baseline(
            &micro_config(),
            &[TestCase::Sort2],
            &Engine::serial(),
            Some(&dir),
        );
        assert!(cold[0].cells_measured > 0);
        let warm = exec_baseline(
            &micro_config(),
            &[TestCase::Sort2],
            &Engine::serial(),
            Some(&dir),
        );
        assert_eq!(warm[0].cells_measured, 0, "persisted caches warm-start");
        assert!(warm[0].hit_rate > 0.99);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn baseline_measures_and_serializes() {
        let engine = Engine::serial();
        let cases = exec_baseline(&micro_config(), &[TestCase::Sort2], &engine, None);
        assert_eq!(cases.len(), 1);
        assert_eq!(cases[0].name, "sort2");
        assert!(cases[0].cells_measured > 0);
        assert!(
            cases[0].cache_hits > 0,
            "suite must exercise a warm cost cache"
        );
        assert!(cases[0].hit_rate > 0.0);

        let json = baseline_json(engine.threads(), &cases);
        for key in [
            "\"schema\": \"intune-bench-exec/2\"",
            "\"cases\"",
            "\"wall_ms\"",
            "\"cache_hits\"",
            "\"hit_rate\"",
            "\"total\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced JSON braces"
        );
    }
}
