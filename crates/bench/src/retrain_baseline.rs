//! The continuous-learning baseline behind `BENCH_retrain.json`
//! (`daemon_bench --journal`).
//!
//! Train one Table-1 case at micro scale, start a real [`Daemon`] with a
//! request journal attached, drive traced `SelectBatch` traffic (features
//! **plus raw-input payloads**) from N client threads, then run one full
//! retrain cycle — compact the journal into a corpus, retrain over base +
//! journaled inputs with the warm cost cache seeded from the base
//! training run, push revision 1, and let the shadow gate promote it.
//!
//! The report records journal append throughput, the compaction ratio
//! (journal records per surviving corpus entry), retrain wall time, and
//! **cells saved by the warm cache** — measured honestly, as the fresh
//! executions a cold retrain performs minus the warm one's. Record/cell
//! counts are deterministic; wall-clock figures are environment-dependent.

use crate::report;
use intune_core::{Benchmark, FeatureVector, Result};
use intune_daemon::{Daemon, DaemonClient, DaemonOptions, ListenConfig, ShadowPolicy};
use intune_eval::{visit_case, CaseVisitor, SuiteConfig, TestCase};
use intune_exec::Engine;
use intune_learning::pipeline::learn;
use intune_learning::TwoLevelOptions;
use intune_retrain::{
    compact_journal, input_fingerprint, retrain_from_corpus, run_cycle, save_warm_cache,
    AdmissionPolicy, CorpusStore, CycleOutcome, RetrainConfig, RetrainPolicy,
};
use intune_serve::{JournalOptions, JournalSink, ModelArtifact, ServeOptions, TraceSink};
use serde_json::Value;
use std::sync::Arc;
use std::time::Instant;

/// Knobs of the continuous-learning load test.
#[derive(Debug, Clone)]
pub struct RetrainBenchConfig {
    /// Suite scale used for training and traffic generation.
    pub suite: SuiteConfig,
    /// The case exercised (must support input journaling — sort/binpack).
    pub case: TestCase,
    /// Concurrent client threads in the journal-fill phase.
    pub clients: usize,
    /// Traced `SelectBatch` requests per client.
    pub batches_per_client: usize,
    /// Daemon-side selection worker threads.
    pub threads: usize,
}

/// The measured outcome (see module docs for what is deterministic).
#[derive(Debug, Clone)]
pub struct RetrainBenchResult {
    /// Case name served.
    pub case: String,
    /// Journal records appended during the load phase.
    pub journal_records: u64,
    /// Wall time of the journal-fill phase, milliseconds.
    pub journal_wall_ms: f64,
    /// Journal appends per second (wall-clock).
    pub records_per_sec: f64,
    /// Segments the compactor absorbed.
    pub segments: u64,
    /// Unique corpus entries after compaction.
    pub corpus_entries: u64,
    /// Journal records per surviving corpus entry (dedup leverage).
    pub compaction_ratio: f64,
    /// End-to-end retrain cycle wall time (compact → learn → push →
    /// promote), milliseconds.
    pub retrain_wall_ms: f64,
    /// Inputs the promoted model was trained on (base + journaled).
    pub trained_inputs: u64,
    /// Journaled inputs in that count.
    pub new_inputs: u64,
    /// Cells preloaded from the warm cache before the retrain ran.
    pub warm_cells: u64,
    /// Fresh executions of the warm retrain.
    pub cells_measured: u64,
    /// Fresh executions a cold retrain of the same corpus performs.
    pub cells_measured_cold: u64,
    /// `cells_measured_cold - cells_measured`: what the warm cache saved.
    pub cells_saved_by_warm_cache: u64,
    /// Revision serving after the cycle (1 by construction).
    pub promoted_revision: u64,
}

struct RetrainVisitor<'a> {
    cfg: &'a RetrainBenchConfig,
}

impl CaseVisitor for RetrainVisitor<'_> {
    type Output = RetrainBenchResult;

    fn visit<B: Benchmark + Sync>(
        &mut self,
        case: TestCase,
        benchmark: &B,
        train: &[B::Input],
        test: &[B::Input],
        opts: &TwoLevelOptions,
        engine: &Engine,
    ) -> Result<RetrainBenchResult>
    where
        B::Input: Sync + Clone,
    {
        let cfg = self.cfg;
        let dir = std::env::temp_dir().join(format!(
            "intune-bench-retrain-{}-{}",
            case.name(),
            std::process::id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).expect("bench temp dir");
        let journal_dir = dir.join("journal");
        let corpus_path = dir.join("corpus.json");
        let cache_path = dir.join("retrain.cache.json");

        // Revision 0 + a warm cache seeded from the base training run:
        // the retrain should re-measure only what production added.
        let result = learn(benchmark, train, opts, engine)?;
        let artifact = ModelArtifact::export(benchmark, &result);
        let prints: Vec<Option<u64>> = train
            .iter()
            .map(|i| input_fingerprint(benchmark, i))
            .collect();
        save_warm_cache(&cache_path, &prints, &result.level1.cache)?;

        // One in-process lifecycle log shared by the daemon and the
        // retrain controller: the cycle's RetrainCycle event interleaves
        // with the ShadowStaged/Promoted events it causes.
        let events_path = dir.join("events.log");
        let events = Arc::new(intune_obs::EventLog::open(&events_path)?);
        let sink = Arc::new(JournalSink::open(&journal_dir, JournalOptions::default())?);
        let daemon = Daemon::bind(
            artifact,
            DaemonOptions {
                events: Some(events.clone()),
                serve: ServeOptions {
                    threads: cfg.threads,
                    drift_threshold: 1.0,
                    ..ServeOptions::default()
                },
                shadow_serve: ServeOptions {
                    threads: cfg.threads,
                    drift_threshold: 1.0,
                    ..ServeOptions::default()
                },
                // Landmark indices of independently-trained models are
                // not comparable; the gate decides on mirrored volume.
                shadow: ShadowPolicy {
                    min_mirrored: test.len() as u64,
                    min_agreement: 0.0,
                },
                trace: Some(sink.clone() as Arc<dyn TraceSink>),
                inject_faults: false,
                ..DaemonOptions::default()
            },
            &ListenConfig::default(),
        )?;
        let addr = daemon.tcp_addr().to_string();
        let handle = daemon.spawn();

        // Journal-fill phase: N clients × traced batches.
        let features: Vec<FeatureVector> = test.iter().map(|i| benchmark.extract_all(i)).collect();
        let payloads: Vec<Value> = test
            .iter()
            .map(|i| benchmark.encode_input(i).unwrap_or(Value::Null))
            .collect();
        let start = Instant::now();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..cfg.clients)
                .map(|_| {
                    let addr = &addr;
                    let features = &features;
                    let payloads = &payloads;
                    scope.spawn(move || {
                        let client = DaemonClient::connect(addr).expect("load client");
                        for _ in 0..cfg.batches_per_client {
                            client
                                .select_batch_traced(features, payloads)
                                .expect("traced batch");
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().expect("client thread panicked");
            }
        });
        let journal_wall = start.elapsed().as_secs_f64();
        let control = DaemonClient::connect(&addr).expect("control client");
        let journal_records = control.stats().expect("stats").journaled;

        // Cold reference: same corpus, no warm cache — how many fresh
        // executions retraining costs without cache reuse.
        let mut cold_corpus = CorpusStore::new(4096);
        compact_journal(&journal_dir, &mut cold_corpus)?;
        let cold = retrain_from_corpus(benchmark, train, opts, engine, &cold_corpus, None, 1)?;

        // The real cycle: compact → policy → retrain (warm) → push →
        // shadow gate promotes.
        let retrain_cfg = RetrainConfig {
            journal_dir: journal_dir.clone(),
            corpus_path: corpus_path.clone(),
            cache_path: Some(cache_path.clone()),
            capacity: 4096,
            policy: RetrainPolicy {
                min_new_inputs: 1,
                drift_trip_rate: 1.1,
                min_drift_observations: u64::MAX,
                cooldown_records: 0,
            },
            mirror_target: test.len() as u64,
            mirror_batch: test.len().max(1),
            remove_compacted: true,
            admission: AdmissionPolicy::default(),
            events: Some(events.clone()),
        };
        let start = Instant::now();
        let report = run_cycle(benchmark, train, opts, engine, &retrain_cfg, &control)?;
        let retrain_wall = start.elapsed().as_secs_f64();
        let CycleOutcome::Promoted {
            revision,
            trained_inputs,
            new_inputs,
            ..
        } = report.outcome
        else {
            panic!("bench cycle must promote, got {:?}", report.outcome);
        };
        let stats = report.retrain.expect("retrain ran");

        control.shutdown().expect("shutdown");
        handle.join().expect("daemon exit");

        // The shared lifecycle log must tell the cycle's whole story:
        // the controller's stage, the gate's promote, and the cycle's
        // own outcome record.
        let logged = intune_obs::read_events(&events_path)?.events;
        let cycle = logged
            .iter()
            .find_map(|e| match &e.kind {
                intune_obs::EventKind::RetrainCycle { outcome, .. } => Some(outcome.as_str()),
                _ => None,
            })
            .expect("cycle journaled");
        assert_eq!(cycle, "promoted", "events: {logged:?}");
        assert!(
            logged
                .iter()
                .any(|e| matches!(e.kind, intune_obs::EventKind::ShadowStaged { .. })),
            "push journaled: {logged:?}"
        );
        assert!(
            logged
                .iter()
                .any(|e| matches!(e.kind, intune_obs::EventKind::Promoted { .. })),
            "promote journaled: {logged:?}"
        );
        std::fs::remove_dir_all(&dir).ok();

        let corpus_entries = report.compaction.added;
        Ok(RetrainBenchResult {
            case: case.name().to_string(),
            journal_records,
            journal_wall_ms: journal_wall * 1e3,
            records_per_sec: if journal_wall > 0.0 {
                journal_records as f64 / journal_wall
            } else {
                0.0
            },
            segments: report.compaction.segments,
            corpus_entries,
            compaction_ratio: if corpus_entries > 0 {
                report.compaction.records as f64 / corpus_entries as f64
            } else {
                0.0
            },
            retrain_wall_ms: retrain_wall * 1e3,
            trained_inputs,
            new_inputs,
            warm_cells: stats.warm_cells,
            cells_measured: stats.cells_measured,
            cells_measured_cold: cold.stats.cells_measured,
            cells_saved_by_warm_cache: cold
                .stats
                .cells_measured
                .saturating_sub(stats.cells_measured),
            promoted_revision: revision,
        })
    }
}

/// Runs the continuous-learning load test end to end.
///
/// # Panics
/// Panics if training, the daemon, the clients, or the cycle fail —
/// baseline emitters want loud failures.
pub fn retrain_baseline(cfg: &RetrainBenchConfig) -> RetrainBenchResult {
    let engine = Engine::serial();
    visit_case(cfg.case, &cfg.suite, &engine, &mut RetrainVisitor { cfg })
        .expect("retrain baseline failed")
}

/// Renders the result as the `BENCH_retrain.json` document (through
/// [`report`]: sorted keys, trailing newline).
pub fn retrain_baseline_json(cfg: &RetrainBenchConfig, r: &RetrainBenchResult) -> String {
    let doc = report::obj(vec![
        ("schema", Value::String("intune-bench-retrain/1".into())),
        ("case", Value::String(r.case.clone())),
        ("clients", Value::UInt(cfg.clients as u64)),
        (
            "batches_per_client",
            Value::UInt(cfg.batches_per_client as u64),
        ),
        ("workers", Value::UInt(cfg.threads as u64)),
        (
            "journal",
            report::obj(vec![
                ("records", Value::UInt(r.journal_records)),
                ("wall_ms", report::ms(r.journal_wall_ms)),
                ("records_per_sec", Value::Float(r.records_per_sec.round())),
            ]),
        ),
        (
            "compaction",
            report::obj(vec![
                ("segments", Value::UInt(r.segments)),
                ("journal_records", Value::UInt(r.journal_records)),
                ("corpus_entries", Value::UInt(r.corpus_entries)),
                ("ratio", report::rate(r.compaction_ratio)),
            ]),
        ),
        (
            "retrain",
            report::obj(vec![
                ("wall_ms", report::ms(r.retrain_wall_ms)),
                ("trained_inputs", Value::UInt(r.trained_inputs)),
                ("new_inputs", Value::UInt(r.new_inputs)),
                ("warm_cells", Value::UInt(r.warm_cells)),
                ("cells_measured", Value::UInt(r.cells_measured)),
                ("cells_measured_cold", Value::UInt(r.cells_measured_cold)),
                (
                    "cells_saved_by_warm_cache",
                    Value::UInt(r.cells_saved_by_warm_cache),
                ),
                ("promoted_revision", Value::UInt(r.promoted_revision)),
            ]),
        ),
    ]);
    report::render(&doc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::micro_config;

    fn tiny() -> RetrainBenchConfig {
        RetrainBenchConfig {
            suite: micro_config(),
            case: TestCase::Sort2,
            clients: 2,
            batches_per_client: 2,
            threads: 1,
        }
    }

    #[test]
    fn retrain_baseline_promotes_and_warm_cache_saves_cells() {
        let cfg = tiny();
        let r = retrain_baseline(&cfg);
        assert_eq!(r.journal_records, 2 * 2 * cfg.suite.test as u64);
        assert_eq!(r.corpus_entries, cfg.suite.test as u64, "test inputs dedup");
        assert!(
            (r.compaction_ratio - 4.0).abs() < 1e-9,
            "{}",
            r.compaction_ratio
        );
        assert_eq!(r.promoted_revision, 1);
        assert_eq!(
            r.trained_inputs,
            (cfg.suite.train + cfg.suite.test) as u64,
            "base + journaled"
        );
        assert_eq!(r.new_inputs, cfg.suite.test as u64);
        assert!(r.warm_cells > 0, "base training cache warm-starts");
        assert!(
            r.cells_saved_by_warm_cache > 0,
            "warm {} vs cold {}",
            r.cells_measured,
            r.cells_measured_cold
        );
        assert!(r.records_per_sec > 0.0);
    }

    #[test]
    fn retrain_json_has_stable_schema() {
        let cfg = tiny();
        let r = retrain_baseline(&cfg);
        let json = retrain_baseline_json(&cfg, &r);
        for key in [
            "\"schema\": \"intune-bench-retrain/1\"",
            "\"compaction\"",
            "\"corpus_entries\": 8",
            "\"cells_saved_by_warm_cache\"",
            "\"promoted_revision\": 1",
            "\"workers\": 1",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        let reparsed: Value = serde_json::from_str(&json).unwrap();
        assert_eq!(crate::report::render(&reparsed), json);
    }
}
