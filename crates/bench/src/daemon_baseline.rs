//! The wire-protocol baseline behind `BENCH_daemon.json`.
//!
//! Train one Table-1 case at micro scale, export its artifact, start a
//! real [`Daemon`] on a loopback port, stage an identical artifact
//! (revision-bumped) as the shadow, and hammer the daemon with N client
//! threads × batched `SelectBatch` requests over TCP. The report records
//! throughput (selections/sec), per-frame round-trip latency (p50/p95),
//! and the shadow agreement record — which is **100% by construction**
//! (identical model), making the shadow counters deterministic. Request
//! and selection counts are deterministic; wall-clock figures are
//! environment-dependent.
//!
//! The fallback policy is disabled (`drift_threshold: 1.0` can never be
//! strictly exceeded), so every answer is the pure classifier selection
//! regardless of drift-counter interleaving across client threads.

use crate::report;
use intune_core::{Benchmark, FeatureVector};
use intune_daemon::{Daemon, DaemonClient, DaemonOptions, ListenConfig, ShadowPolicy};
use intune_eval::{visit_case, CaseVisitor, SuiteConfig, TestCase};
use intune_exec::Engine;
use intune_learning::pipeline::learn;
use intune_learning::TwoLevelOptions;
use intune_serve::{ModelArtifact, ServeOptions, ARTIFACT_VERSION};
use serde_json::Value;
use std::time::Instant;

/// Knobs of the daemon load test.
#[derive(Debug, Clone)]
pub struct DaemonBenchConfig {
    /// Suite scale used for training the served artifact.
    pub suite: SuiteConfig,
    /// The case whose artifact is served.
    pub case: TestCase,
    /// Concurrent client threads.
    pub clients: usize,
    /// `SelectBatch` requests per client.
    pub batches_per_client: usize,
    /// Daemon-side selection worker threads.
    pub threads: usize,
}

/// The measured outcome (see module docs for what is deterministic).
#[derive(Debug, Clone)]
pub struct DaemonBenchResult {
    /// Case name served.
    pub case: String,
    /// Client thread count.
    pub clients: u64,
    /// Requests per client.
    pub batches_per_client: u64,
    /// Vectors per request.
    pub batch_size: u64,
    /// Total `SelectBatch` frames sent.
    pub requests: u64,
    /// Total selections answered.
    pub selections: u64,
    /// Wall time of the load phase, milliseconds.
    pub wall_ms: f64,
    /// Selections per second (wall-clock).
    pub selections_per_sec: f64,
    /// Median frame round-trip, milliseconds.
    pub p50_ms: f64,
    /// 95th-percentile frame round-trip, milliseconds.
    pub p95_ms: f64,
    /// Selections mirrored to the staged shadow (one per vector).
    pub shadow_mirrored: u64,
    /// Mirrored selections the shadow agreed on (all of them).
    pub shadow_agreed: u64,
    /// `agreed / mirrored` (1.0 by construction).
    pub shadow_agreement_rate: f64,
    /// Revision serving after the final promote.
    pub promoted_revision: u64,
}

/// Extracts the case's artifact and the full feature vectors of its
/// held-out corpus (what wire clients ship).
struct ExportVisitor;

impl CaseVisitor for ExportVisitor {
    type Output = (ModelArtifact, Vec<FeatureVector>);

    fn visit<B: Benchmark + Sync>(
        &mut self,
        _case: TestCase,
        benchmark: &B,
        train: &[B::Input],
        test: &[B::Input],
        opts: &TwoLevelOptions,
        engine: &Engine,
    ) -> intune_core::Result<(ModelArtifact, Vec<FeatureVector>)>
    where
        B::Input: Sync,
    {
        let result = learn(benchmark, train, opts, engine)?;
        let artifact = ModelArtifact::export(benchmark, &result).with_revision(1);
        let features = test.iter().map(|i| benchmark.extract_all(i)).collect();
        Ok((artifact, features))
    }
}

/// Runs the load test end to end (train → serve → stage shadow → hammer
/// → promote → shutdown).
///
/// # Panics
/// Panics if training, the daemon, or any client fails — baseline
/// emitters want loud failures.
pub fn daemon_baseline(cfg: &DaemonBenchConfig) -> DaemonBenchResult {
    let engine = Engine::serial();
    let (artifact, features) =
        visit_case(cfg.case, &cfg.suite, &engine, &mut ExportVisitor).expect("training failed");
    let shadow_artifact = artifact.clone().with_revision(2);
    let batch_size = features.len() as u64;

    let daemon = Daemon::bind(
        artifact,
        DaemonOptions {
            serve: ServeOptions {
                threads: cfg.threads,
                // Never strictly exceeded: the fallback policy stays off.
                drift_threshold: 1.0,
                ..ServeOptions::default()
            },
            // The shadow mirrors the same deterministic traffic; its
            // monitor is pinned off too so the agreement record (not a
            // drift trip) decides the promote.
            shadow_serve: ServeOptions {
                threads: cfg.threads,
                drift_threshold: 1.0,
                ..ServeOptions::default()
            },
            shadow: ShadowPolicy {
                min_mirrored: 1,
                min_agreement: 0.99,
            },
            trace: None,
            inject_faults: false,
        },
        &ListenConfig::default(),
    )
    .expect("daemon bind failed");
    let addr = daemon.tcp_addr().to_string();
    let handle = daemon.spawn();

    // Stage the shadow before any traffic so every request is mirrored.
    let control = DaemonClient::connect(&addr).expect("control client");
    control
        .load_artifact(&shadow_artifact)
        .expect("stage shadow");

    // The load phase: N clients × R framed batches each.
    let start = Instant::now();
    let mut latencies: Vec<f64> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..cfg.clients)
            .map(|_| {
                let addr = &addr;
                let features = &features;
                scope.spawn(move || {
                    let client = DaemonClient::connect(addr).expect("load client");
                    let mut lat = Vec::with_capacity(cfg.batches_per_client);
                    for _ in 0..cfg.batches_per_client {
                        let t = Instant::now();
                        let got = client.select_batch(features).expect("select batch");
                        lat.push(t.elapsed().as_secs_f64() * 1e3);
                        assert_eq!(got.len(), features.len());
                    }
                    lat
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread panicked"))
            .collect()
    });
    let wall = start.elapsed().as_secs_f64();
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));

    let stats = control.stats().expect("stats");
    let shadow = stats.shadow.expect("shadow still staged");
    let promoted_revision = control.promote().expect("promote gate");
    control.shutdown().expect("shutdown");
    handle.join().expect("daemon exit");

    let requests = (cfg.clients * cfg.batches_per_client) as u64;
    let selections = requests * batch_size;
    DaemonBenchResult {
        case: cfg.case.name().to_string(),
        clients: cfg.clients as u64,
        batches_per_client: cfg.batches_per_client as u64,
        batch_size,
        requests,
        selections,
        wall_ms: wall * 1e3,
        selections_per_sec: if wall > 0.0 {
            selections as f64 / wall
        } else {
            0.0
        },
        p50_ms: percentile(&latencies, 0.50),
        p95_ms: percentile(&latencies, 0.95),
        shadow_mirrored: shadow.mirrored,
        shadow_agreed: shadow.agreed,
        shadow_agreement_rate: shadow.agreement_rate,
        promoted_revision,
    }
}

/// Renders the result as the `BENCH_daemon.json` document (through
/// [`report`]: sorted keys, trailing newline).
pub fn daemon_baseline_json(cfg: &DaemonBenchConfig, r: &DaemonBenchResult) -> String {
    let doc = report::obj(vec![
        ("schema", Value::String("intune-bench-daemon/1".into())),
        ("artifact_version", Value::UInt(ARTIFACT_VERSION as u64)),
        ("case", Value::String(r.case.clone())),
        ("clients", Value::UInt(r.clients)),
        ("batches_per_client", Value::UInt(r.batches_per_client)),
        ("batch_size", Value::UInt(r.batch_size)),
        ("workers", Value::UInt(cfg.threads as u64)),
        ("requests", Value::UInt(r.requests)),
        ("selections", Value::UInt(r.selections)),
        ("wall_ms", report::ms(r.wall_ms)),
        (
            "selections_per_sec",
            Value::Float(r.selections_per_sec.round()),
        ),
        (
            "frame_latency_ms",
            report::obj(vec![
                ("p50", report::ms(r.p50_ms)),
                ("p95", report::ms(r.p95_ms)),
            ]),
        ),
        (
            "shadow",
            report::obj(vec![
                ("mirrored", Value::UInt(r.shadow_mirrored)),
                ("agreed", Value::UInt(r.shadow_agreed)),
                ("agreement_rate", report::rate(r.shadow_agreement_rate)),
                ("promoted_revision", Value::UInt(r.promoted_revision)),
            ]),
        ),
    ]);
    report::render(&doc)
}

/// Nearest-rank percentile of an ascending-sorted slice.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((sorted.len() as f64 * q).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::micro_config;

    fn tiny() -> DaemonBenchConfig {
        DaemonBenchConfig {
            suite: micro_config(),
            case: TestCase::Sort2,
            clients: 2,
            batches_per_client: 3,
            threads: 1,
        }
    }

    #[test]
    fn daemon_baseline_counts_are_deterministic_and_shadow_agrees() {
        let cfg = tiny();
        let r = daemon_baseline(&cfg);
        assert_eq!(r.requests, 6);
        assert_eq!(r.batch_size, cfg.suite.test as u64);
        assert_eq!(r.selections, 6 * cfg.suite.test as u64);
        assert_eq!(r.shadow_mirrored, r.selections, "every selection mirrored");
        assert_eq!(r.shadow_agreed, r.shadow_mirrored, "identical model agrees");
        assert_eq!(r.shadow_agreement_rate, 1.0);
        assert_eq!(r.promoted_revision, 2);
        assert!(r.selections_per_sec > 0.0);
        assert!(r.p95_ms >= r.p50_ms);
    }

    #[test]
    fn daemon_json_has_stable_schema() {
        let cfg = tiny();
        let r = daemon_baseline(&cfg);
        let json = daemon_baseline_json(&cfg, &r);
        for key in [
            "\"schema\": \"intune-bench-daemon/1\"",
            "\"artifact_version\": 2",
            "\"frame_latency_ms\"",
            "\"agreement_rate\": 1.0",
            "\"promoted_revision\": 2",
            "\"workers\": 1",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        let reparsed: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(crate::report::render(&reparsed), json);
    }

    #[test]
    fn percentile_is_nearest_rank() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&xs, 0.5), 2.0);
        assert_eq!(percentile(&xs, 0.95), 4.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }
}
