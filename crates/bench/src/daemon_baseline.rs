//! The wire-protocol baseline behind `BENCH_daemon.json`.
//!
//! Train one Table-1 case *per tenant* at micro scale, export the
//! artifacts, start a single multi-tenant [`Daemon`] (one readiness-driven
//! event loop) on a loopback port, stage an identical revision-bumped
//! shadow behind every tenant, and hammer the daemon with N client
//! threads — round-robined across the tenants — each sending batched
//! `SelectBatch` requests over TCP. The report records aggregate
//! throughput (selections/sec), a full per-frame round-trip latency
//! histogram (p50/p90/p99/p999 + max over every recorded sample), and
//! each tenant's shadow agreement record — which is **100% by
//! construction** (identical model), making the shadow counters
//! deterministic. Request and selection counts are deterministic;
//! wall-clock figures are environment-dependent.
//!
//! The fallback policy is disabled (`drift_threshold: 1.0` can never be
//! strictly exceeded), so every answer is the pure classifier selection
//! regardless of drift-counter interleaving across client threads.

use crate::report;
use intune_core::{Benchmark, FeatureVector};
use intune_daemon::{
    protocol, Daemon, DaemonClient, DaemonOptions, ListenConfig, ShadowPolicy, TenantSpec,
};
use intune_eval::{visit_case, CaseVisitor, SuiteConfig, TestCase};
use intune_exec::Engine;
use intune_learning::pipeline::learn;
use intune_learning::TwoLevelOptions;
use intune_obs::{Histogram, LatencySummary, SpanLog};
use intune_serve::{ModelArtifact, ServeOptions, ARTIFACT_VERSION};
use serde_json::Value;
use std::sync::Arc;
use std::time::Instant;

/// Knobs of the daemon load test.
#[derive(Debug, Clone)]
pub struct DaemonBenchConfig {
    /// Suite scale used for training the served artifacts.
    pub suite: SuiteConfig,
    /// The cases whose artifacts are served — one tenant each, all out
    /// of the same daemon process.
    pub cases: Vec<TestCase>,
    /// Concurrent client threads, round-robined across the tenants.
    pub clients: usize,
    /// `SelectBatch` requests per client.
    pub batches_per_client: usize,
    /// Daemon-side selection worker threads.
    pub threads: usize,
}

/// Frame round-trip latency distribution over every recorded sample.
///
/// Backed by [`intune_obs::Histogram`] — the same log-bucketed,
/// wait-free histogram the daemon records its own stage timings into
/// (16 sub-buckets per power of two, ≤6.25% relative bucket error; the
/// bucket scheme and its readout are pinned by `intune_obs` unit
/// tests). Clients record nanoseconds concurrently with no sorting or
/// post-hoc merge; quantiles are nearest-rank over the bucket counts
/// and the max is tracked exactly.
#[derive(Debug, Clone, Copy)]
pub struct LatencyHistogram {
    /// Number of samples behind the percentiles (one per frame).
    pub count: u64,
    /// Median, milliseconds.
    pub p50_ms: f64,
    /// 90th percentile, milliseconds.
    pub p90_ms: f64,
    /// 99th percentile, milliseconds.
    pub p99_ms: f64,
    /// 99.9th percentile, milliseconds.
    pub p999_ms: f64,
    /// Slowest observed frame, milliseconds.
    pub max_ms: f64,
}

impl LatencyHistogram {
    /// Quantile readout of everything recorded into `histogram`.
    fn of(histogram: &Histogram) -> LatencyHistogram {
        let ms = |ns: u64| ns as f64 / 1e6;
        let summary = LatencySummary::of(&histogram.snapshot());
        LatencyHistogram {
            count: summary.count,
            p50_ms: ms(summary.p50_ns),
            p90_ms: ms(summary.p90_ns),
            p99_ms: ms(summary.p99_ns),
            p999_ms: ms(summary.p999_ns),
            max_ms: ms(summary.max_ns),
        }
    }
}

/// One tenant's deterministic slice of the load.
#[derive(Debug, Clone)]
pub struct TenantBenchResult {
    /// Case name this tenant serves.
    pub case: String,
    /// Client threads bound to this tenant.
    pub clients: u64,
    /// Vectors per request (the case's held-out corpus size).
    pub batch_size: u64,
    /// `SelectBatch` frames this tenant answered.
    pub requests: u64,
    /// Selections this tenant answered.
    pub selections: u64,
    /// Selections mirrored to the staged shadow (one per vector).
    pub shadow_mirrored: u64,
    /// Mirrored selections the shadow agreed on (all of them).
    pub shadow_agreed: u64,
    /// `agreed / mirrored` (1.0 by construction).
    pub shadow_agreement_rate: f64,
    /// Revision serving after this tenant's promote.
    pub promoted_revision: u64,
}

/// The tracing-overhead phase: the same load replayed against a second
/// daemon that head-samples 1-in-64 requests into a span log. Wall-clock
/// figures are environment-dependent; `spans_recorded` is deterministic
/// (the sampler admits the first request and every 64th thereafter, and
/// each sampled request records a fixed set of spans).
#[derive(Debug, Clone, Copy)]
pub struct TraceBenchResult {
    /// Wall time of the traced load phase, milliseconds.
    pub wall_ms: f64,
    /// Aggregate selections per second under 1-in-64 sampling.
    pub selections_per_sec: f64,
    /// Spans the daemon appended to its log during the phase.
    pub spans_recorded: u64,
    /// `traced wall / untraced wall` — ~1.0 when sampling is cheap.
    pub overhead_ratio: f64,
}

/// The measured outcome (see module docs for what is deterministic).
#[derive(Debug, Clone)]
pub struct DaemonBenchResult {
    /// Total client thread count.
    pub clients: u64,
    /// Requests per client.
    pub batches_per_client: u64,
    /// Total `SelectBatch` frames sent, all tenants.
    pub requests: u64,
    /// Total selections answered, all tenants.
    pub selections: u64,
    /// Wall time of the load phase, milliseconds.
    pub wall_ms: f64,
    /// Aggregate selections per second (wall-clock).
    pub selections_per_sec: f64,
    /// Frame round-trip latency over every client's every frame.
    pub latency: LatencyHistogram,
    /// Per-tenant counters, in `cases` order.
    pub tenants: Vec<TenantBenchResult>,
    /// The 1-in-64 sampled re-run.
    pub traced: TraceBenchResult,
}

/// Extracts the case's artifact and the full feature vectors of its
/// held-out corpus (what wire clients ship).
struct ExportVisitor;

impl CaseVisitor for ExportVisitor {
    type Output = (ModelArtifact, Vec<FeatureVector>);

    fn visit<B: Benchmark + Sync>(
        &mut self,
        _case: TestCase,
        benchmark: &B,
        train: &[B::Input],
        test: &[B::Input],
        opts: &TwoLevelOptions,
        engine: &Engine,
    ) -> intune_core::Result<(ModelArtifact, Vec<FeatureVector>)>
    where
        B::Input: Sync,
    {
        let result = learn(benchmark, train, opts, engine)?;
        let artifact = ModelArtifact::export(benchmark, &result).with_revision(1);
        let features = test.iter().map(|i| benchmark.extract_all(i)).collect();
        Ok((artifact, features))
    }
}

/// Runs the load test end to end (train every tenant → serve them from
/// one event loop → stage shadows → hammer → promote each → shutdown).
///
/// # Panics
/// Panics if training, the daemon, or any client fails — baseline
/// emitters want loud failures.
pub fn daemon_baseline(cfg: &DaemonBenchConfig) -> DaemonBenchResult {
    assert!(!cfg.cases.is_empty(), "at least one tenant case");
    let engine = Engine::serial();
    let mut specs = Vec::with_capacity(cfg.cases.len());
    let mut shadows = Vec::with_capacity(cfg.cases.len());
    let mut tenant_features: Vec<Vec<FeatureVector>> = Vec::with_capacity(cfg.cases.len());
    // `Benchmark::name()` keys tenants, not the case name: e.g. the
    // `sort2` case serves benchmark `sort`.
    let mut tenant_names: Vec<String> = Vec::with_capacity(cfg.cases.len());
    // Artifacts for the traced re-run daemon, cloned before the specs
    // consume them.
    let mut traced_specs = Vec::with_capacity(cfg.cases.len());
    for case in &cfg.cases {
        let (artifact, features) =
            visit_case(*case, &cfg.suite, &engine, &mut ExportVisitor).expect("training failed");
        shadows.push(artifact.clone().with_revision(2));
        tenant_names.push(artifact.benchmark.clone());
        traced_specs.push(TenantSpec {
            artifact: artifact.clone(),
            trace: None,
            recorder: None,
            trace_sample: None,
        });
        specs.push(TenantSpec {
            artifact,
            trace: None,
            recorder: None,
            trace_sample: None,
        });
        tenant_features.push(features);
    }

    let daemon = Daemon::bind_tenants(
        specs,
        DaemonOptions {
            serve: ServeOptions {
                threads: cfg.threads,
                // Never strictly exceeded: the fallback policy stays off.
                drift_threshold: 1.0,
                ..ServeOptions::default()
            },
            // Shadows mirror the same deterministic traffic; their
            // monitors are pinned off too so the agreement record (not a
            // drift trip) decides each promote.
            shadow_serve: ServeOptions {
                threads: cfg.threads,
                drift_threshold: 1.0,
                ..ServeOptions::default()
            },
            shadow: ShadowPolicy {
                min_mirrored: 1,
                min_agreement: 0.99,
            },
            trace: None,
            inject_faults: false,
            ..DaemonOptions::default()
        },
        &ListenConfig::default(),
    )
    .expect("daemon bind failed");
    let addr = daemon.tcp_addr().to_string();
    let handle = daemon.spawn();

    // One control client per tenant; stage every shadow before any
    // traffic so every request is mirrored.
    let controls: Vec<DaemonClient> = tenant_names
        .iter()
        .map(|name| DaemonClient::connect_to(&addr, name).expect("control client"))
        .collect();
    for (control, shadow) in controls.iter().zip(&shadows) {
        control.load_artifact(shadow).expect("stage shadow");
    }

    let latency = Histogram::new();
    let wall = hammer(&addr, cfg, &tenant_names, &tenant_features, &latency);

    // Per-tenant accounting, promotes, and the final shutdown (sent once;
    // the daemon is one process).
    let mut tenants = Vec::with_capacity(cfg.cases.len());
    let mut total_requests = 0u64;
    let mut total_selections = 0u64;
    for (t, (case, control)) in cfg.cases.iter().zip(&controls).enumerate() {
        let stats = control.stats().expect("stats");
        let shadow = stats.shadow.expect("shadow still staged");
        let promoted_revision = control.promote().expect("promote gate");
        let clients =
            (cfg.clients / cfg.cases.len() + usize::from(t < cfg.clients % cfg.cases.len())) as u64;
        let batch_size = tenant_features[t].len() as u64;
        let requests = clients * cfg.batches_per_client as u64;
        let selections = requests * batch_size;
        total_requests += requests;
        total_selections += selections;
        tenants.push(TenantBenchResult {
            case: case.name().to_string(),
            clients,
            batch_size,
            requests,
            selections,
            shadow_mirrored: shadow.mirrored,
            shadow_agreed: shadow.agreed,
            shadow_agreement_rate: shadow.agreement_rate,
            promoted_revision,
        });
    }
    controls[0].shutdown().expect("shutdown");
    handle.join().expect("daemon exit");

    // Tracing-overhead phase: the identical load against a fresh daemon
    // that head-samples 1-in-64 requests into a span log (no shadows —
    // the comparison isolates the sampling layer, not the mirror).
    let span_path = std::env::temp_dir().join(format!(
        "intune-bench-daemon-{}.spans.log",
        std::process::id()
    ));
    std::fs::remove_file(&span_path).ok();
    let spans = Arc::new(SpanLog::open(&span_path).expect("span log"));
    let traced_daemon = Daemon::bind_tenants(
        traced_specs,
        DaemonOptions {
            serve: ServeOptions {
                threads: cfg.threads,
                drift_threshold: 1.0,
                ..ServeOptions::default()
            },
            trace_sample: 64,
            spans: Some(Arc::clone(&spans)),
            ..DaemonOptions::default()
        },
        &ListenConfig::default(),
    )
    .expect("traced daemon bind failed");
    let traced_addr = traced_daemon.tcp_addr().to_string();
    let traced_handle = traced_daemon.spawn();
    let traced_latency = Histogram::new();
    let traced_wall = hammer(
        &traced_addr,
        cfg,
        &tenant_names,
        &tenant_features,
        &traced_latency,
    );
    DaemonClient::connect_to(&traced_addr, &tenant_names[0])
        .expect("traced control client")
        .shutdown()
        .expect("traced shutdown");
    traced_handle.join().expect("traced daemon exit");
    let spans_recorded = spans.appended();
    drop(spans);
    std::fs::remove_file(&span_path).ok();

    DaemonBenchResult {
        clients: cfg.clients as u64,
        batches_per_client: cfg.batches_per_client as u64,
        requests: total_requests,
        selections: total_selections,
        wall_ms: wall * 1e3,
        selections_per_sec: if wall > 0.0 {
            total_selections as f64 / wall
        } else {
            0.0
        },
        latency: LatencyHistogram::of(&latency),
        tenants,
        traced: TraceBenchResult {
            wall_ms: traced_wall * 1e3,
            selections_per_sec: if traced_wall > 0.0 {
                total_selections as f64 / traced_wall
            } else {
                0.0
            },
            spans_recorded,
            overhead_ratio: if wall > 0.0 { traced_wall / wall } else { 0.0 },
        },
    }
}

/// The load phase: N clients x R framed batches each, client i bound
/// to tenant i mod cases. Thread spawns and the N `Hello` handshakes
/// happen *before* the barrier so the timed window measures serving
/// throughput, not connection setup. Each client drives the wire
/// protocol directly with a request body encoded **once** — a load
/// generator re-serializing the identical batch every iteration
/// measures its own JSON printer, not the daemon. Responses are still
/// fully decoded and checked per frame. Every client records each
/// frame's round trip straight into one shared wait-free histogram —
/// no per-thread sample vectors, no post-hoc sort/merge. Returns the
/// wall time of the timed window in seconds.
fn hammer(
    addr: &str,
    cfg: &DaemonBenchConfig,
    tenant_names: &[String],
    tenant_features: &[Vec<FeatureVector>],
    latency: &Histogram,
) -> f64 {
    let ready = std::sync::Barrier::new(cfg.clients + 1);
    let mut start = Instant::now();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..cfg.clients)
            .map(|i| {
                let ready = &ready;
                let name = &tenant_names[i % cfg.cases.len()];
                let features = &tenant_features[i % cfg.cases.len()];
                scope.spawn(move || {
                    let mut stream =
                        std::net::TcpStream::connect(addr).expect("load client connect");
                    stream.set_nodelay(true).ok();
                    let mut reader = protocol::FrameReader::new();
                    protocol::send(
                        &mut stream,
                        &protocol::Request::Hello {
                            client: "daemon-bench".to_string(),
                            benchmark: name.clone(),
                        },
                    )
                    .expect("hello");
                    match reader.recv(&mut stream).expect("hello reply") {
                        Some(protocol::Response::HelloAck { .. }) => {}
                        other => panic!("unexpected hello reply: {other:?}"),
                    }
                    let body = protocol::encode_select_batch(features);
                    ready.wait();
                    for _ in 0..cfg.batches_per_client {
                        let t = Instant::now();
                        protocol::write_frame(&mut stream, &body).expect("send batch");
                        let reply = reader
                            .recv(&mut stream)
                            .expect("batch reply")
                            .expect("connection open");
                        latency.record(u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX));
                        match reply {
                            protocol::Response::Selections { selections } => {
                                assert_eq!(selections.len(), features.len());
                            }
                            other => panic!("unexpected batch reply: {other:?}"),
                        }
                    }
                })
            })
            .collect();
        ready.wait();
        start = Instant::now();
        for h in handles {
            h.join().expect("client thread panicked");
        }
    });
    start.elapsed().as_secs_f64()
}

/// Renders the result as the `BENCH_daemon.json` document (through
/// [`report`]: sorted keys, trailing newline).
pub fn daemon_baseline_json(cfg: &DaemonBenchConfig, r: &DaemonBenchResult) -> String {
    let tenants = r
        .tenants
        .iter()
        .map(|t| {
            (
                t.case.as_str(),
                report::obj(vec![
                    ("batch_size", Value::UInt(t.batch_size)),
                    ("clients", Value::UInt(t.clients)),
                    ("requests", Value::UInt(t.requests)),
                    ("selections", Value::UInt(t.selections)),
                    (
                        "shadow",
                        report::obj(vec![
                            ("mirrored", Value::UInt(t.shadow_mirrored)),
                            ("agreed", Value::UInt(t.shadow_agreed)),
                            ("agreement_rate", report::rate(t.shadow_agreement_rate)),
                            ("promoted_revision", Value::UInt(t.promoted_revision)),
                        ]),
                    ),
                ]),
            )
        })
        .collect();
    let doc = report::obj(vec![
        ("schema", Value::String("intune-bench-daemon/3".into())),
        ("artifact_version", Value::UInt(ARTIFACT_VERSION as u64)),
        ("clients", Value::UInt(r.clients)),
        ("batches_per_client", Value::UInt(r.batches_per_client)),
        ("workers", Value::UInt(cfg.threads as u64)),
        ("requests", Value::UInt(r.requests)),
        ("selections", Value::UInt(r.selections)),
        ("wall_ms", report::ms(r.wall_ms)),
        (
            "selections_per_sec",
            Value::Float(r.selections_per_sec.round()),
        ),
        (
            "frame_latency_ms",
            report::obj(vec![
                ("count", Value::UInt(r.latency.count)),
                ("p50", report::ms(r.latency.p50_ms)),
                ("p90", report::ms(r.latency.p90_ms)),
                ("p99", report::ms(r.latency.p99_ms)),
                ("p999", report::ms(r.latency.p999_ms)),
                ("max", report::ms(r.latency.max_ms)),
            ]),
        ),
        (
            "trace_1_in_64",
            report::obj(vec![
                ("wall_ms", report::ms(r.traced.wall_ms)),
                (
                    "selections_per_sec",
                    Value::Float(r.traced.selections_per_sec.round()),
                ),
                ("spans_recorded", Value::UInt(r.traced.spans_recorded)),
                ("overhead_ratio", report::rate(r.traced.overhead_ratio)),
            ]),
        ),
        ("tenants", report::obj(tenants)),
    ]);
    report::render(&doc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::micro_config;

    fn tiny() -> DaemonBenchConfig {
        DaemonBenchConfig {
            suite: micro_config(),
            cases: vec![TestCase::Sort2, TestCase::Binpacking],
            clients: 3,
            batches_per_client: 2,
            threads: 1,
        }
    }

    #[test]
    fn daemon_baseline_counts_are_deterministic_and_shadows_agree() {
        let cfg = tiny();
        let r = daemon_baseline(&cfg);
        let batch = cfg.suite.test as u64;
        assert_eq!(r.requests, 6);
        assert_eq!(r.selections, 6 * batch);
        assert_eq!(r.latency.count, 6, "one latency sample per frame");
        assert!(r.latency.p50_ms <= r.latency.p90_ms);
        assert!(r.latency.p90_ms <= r.latency.p99_ms);
        assert!(r.latency.p99_ms <= r.latency.p999_ms);
        assert!(r.latency.p999_ms <= r.latency.max_ms);
        assert!(r.selections_per_sec > 0.0);
        assert_eq!(r.tenants.len(), 2);
        assert_eq!(r.tenants[0].case, "sort2");
        assert_eq!(r.tenants[1].case, "binpacking");
        // 3 clients round-robined over 2 tenants: 2 + 1.
        assert_eq!(r.tenants[0].clients, 2);
        assert_eq!(r.tenants[1].clients, 1);
        for t in &r.tenants {
            assert_eq!(t.requests, t.clients * 2);
            assert_eq!(t.selections, t.requests * batch);
            assert_eq!(t.shadow_mirrored, t.selections, "every selection mirrored");
            assert_eq!(t.shadow_agreed, t.shadow_mirrored, "identical model agrees");
            assert_eq!(t.shadow_agreement_rate, 1.0);
            assert_eq!(t.promoted_revision, 2, "{}", t.case);
        }
        // The 1-in-64 sampler admits the first request, so at least one
        // request traced end to end: server span + stage spans + the
        // service's own selection span.
        assert!(
            r.traced.spans_recorded >= 4,
            "expected spans from the sampled request, got {}",
            r.traced.spans_recorded
        );
        assert!(r.traced.overhead_ratio > 0.0);
    }

    #[test]
    fn daemon_json_has_stable_schema() {
        let cfg = tiny();
        let r = daemon_baseline(&cfg);
        let json = daemon_baseline_json(&cfg, &r);
        for key in [
            "\"schema\": \"intune-bench-daemon/3\"",
            "\"trace_1_in_64\"",
            "\"spans_recorded\"",
            "\"overhead_ratio\"",
            "\"artifact_version\": 2",
            "\"frame_latency_ms\"",
            "\"count\": 6",
            "\"p999\"",
            "\"max\"",
            "\"tenants\"",
            "\"sort2\"",
            "\"binpacking\"",
            "\"agreement_rate\": 1.0",
            "\"promoted_revision\": 2",
            "\"workers\": 1",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        let reparsed: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(crate::report::render(&reparsed), json);
    }

    #[test]
    fn latency_histogram_readout_matches_obs_summary() {
        // The bench's ms-facing view is a unit conversion over the
        // shared obs histogram, nothing more: max is exact, quantiles
        // are the obs nearest-rank readout.
        let h = Histogram::new();
        for ns in [1_000_000u64, 2_000_000, 3_000_000, 4_000_000] {
            h.record(ns);
        }
        let lat = LatencyHistogram::of(&h);
        assert_eq!(lat.count, 4);
        assert_eq!(lat.max_ms, 4.0, "max tracked exactly");
        assert!(lat.p50_ms <= lat.p90_ms && lat.p90_ms <= lat.p99_ms);
        assert!(lat.p999_ms <= lat.max_ms);
        // ≤6.25% bucket error around the true 2ms median.
        assert!((lat.p50_ms - 2.0).abs() / 2.0 <= 0.0625, "{}", lat.p50_ms);

        let empty = LatencyHistogram::of(&Histogram::new());
        assert_eq!(empty.count, 0);
        assert_eq!(empty.max_ms, 0.0);
    }
}
