//! Investigation record for the `dedup_saved: 0` rows in BENCH_exec.json.
//!
//! Conclusion (verified by this probe): the accounting is correct. Suite
//! plans are built from EA-winner landmark configurations, which are
//! pairwise *distinct* in every case at micro scale — so no plan ever
//! contains a duplicate `(input, configuration)` cell and `dedup_saved`
//! is genuinely zero. Two cases (sort2, helmholtz3d) produce landmarks
//! with *identical cost rows* despite distinct configurations (the genes
//! that differ are cost-neutral there); distinct configurations are
//! distinct cells, so not deduplicating them is correct — only the
//! memoized cost cache can (and does) help them.
//!
//! The positive control lives in
//! `intune_learning::level1::tests::duplicate_landmarks_dedup_through_the_suite_measure_path`,
//! which shows a plan with a repeated configuration reporting
//! `dedup_saved = n_inputs`.
//!
//! ```text
//! cargo run --example dedup_probe -p intune_bench
//! ```

use intune_bench::micro_config;
use intune_eval::{run_case_with, TestCase};
use intune_exec::Engine;

fn main() {
    let cfg = micro_config();
    let engine = Engine::serial();
    for case in TestCase::all() {
        let outcome = run_case_with(case, &cfg, &engine).expect("case failed");
        let perf = &outcome.perf_train;
        let (k, n) = (perf.num_landmarks(), perf.num_inputs());
        let dup_rows = (0..k)
            .flat_map(|a| ((a + 1)..k).map(move |b| (a, b)))
            .filter(|&(a, b)| (0..n).all(|i| perf.cost(a, i) == perf.cost(b, i)))
            .count();
        println!(
            "{:<12} landmarks={k} identical-cost-row pairs={dup_rows} dedup_saved={}",
            case.name(),
            outcome.engine.dedup_saved
        );
    }
}
