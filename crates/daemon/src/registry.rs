//! The daemon's artifact registry: one serving **tenant** per benchmark.
//!
//! A multi-tenant daemon serves several benchmarks out of one event loop.
//! Each tenant owns the full single-benchmark serving state the daemon
//! had before multi-tenancy: a lock-free primary slot, a staged-shadow
//! slot with its promotion counters, and an optional request journal.
//! Connections bind to a tenant at `Hello { benchmark }` time and every
//! stateful request (`SelectBatch`, `LoadArtifact`, `Promote`, `Stats`)
//! is routed through that binding — two tenants' lifecycles never
//! interact.

use crate::shadow::ShadowState;
use arc_swap::ArcSwap;
use intune_core::{Error, Result};
use intune_datalog::RecorderSink;
use intune_obs::{Counter, EventLog, Histogram, Sampler, SpanLog};
use intune_serve::{ModelArtifact, ServeOptions, TraceSink, VectorService};
use std::sync::atomic::AtomicU64;
use std::sync::{Arc, Mutex};

/// What one tenant serves: its initial artifact and (optionally) its own
/// request journal. Every tenant gets a *separate* trace sink on purpose
/// — the retrainer consumes one journal per benchmark, and writing two
/// tenants' traffic into one sink would interleave corpora.
pub struct TenantSpec {
    /// The initial primary artifact; its `benchmark` names the tenant.
    pub artifact: ModelArtifact,
    /// Optional request journal attached to this tenant's primary — the
    /// initial artifact and each promoted successor.
    pub trace: Option<Arc<dyn TraceSink>>,
    /// Optional wire-traffic recorder: every inbound request frame for
    /// this tenant is captured into an `intune-datalog/1` recording
    /// (per-tenant for the same reason traces are — replay and
    /// divergence checks consume one recording per benchmark).
    pub recorder: Option<Arc<RecorderSink>>,
    /// Per-tenant trace-sampling override: `Some(n)` samples 1-in-`n` of
    /// this tenant's un-traced batch requests (`Some(0)` = never),
    /// overriding the daemon-wide `--trace-sample` rate. `None` falls
    /// through to the daemon's sampler.
    pub trace_sample: Option<u64>,
}

impl std::fmt::Debug for TenantSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TenantSpec")
            .field("benchmark", &self.artifact.benchmark)
            .field("revision", &self.artifact.revision)
            .field("trace", &self.trace.as_ref().map(|_| "<sink>"))
            .field("recorder", &self.recorder.as_ref().map(|_| "<sink>"))
            .field("trace_sample", &self.trace_sample)
            .finish()
    }
}

/// The staged shadow, guarded by a (briefly held) mutex. `staged_seq`
/// identifies the current shadow so a concurrent auto-reject never drops
/// a *newer* shadow staged in between: mirroring happens outside the
/// lock, and the rejection only lands if the slot still holds the same
/// generation the tripped mirror scored.
pub(crate) struct ShadowSlot {
    pub(crate) shadow: Option<Arc<ShadowState>>,
    pub(crate) staged_seq: u64,
}

/// One tenant's wait-free metrics, recorded on the select hot path.
/// They live *beside* the swappable primary, not inside it, so a
/// promotion never resets the tenant's request history and recording
/// never races the pointer store.
#[derive(Debug, Default)]
pub(crate) struct TenantObs {
    /// Selection request frames served (one per `SelectBatch` frame).
    pub(crate) requests: Counter,
    /// Individual selections answered (a batch of B counts B).
    pub(crate) selections: Counter,
    /// End-to-end request latency in nanoseconds: frame decode through
    /// reply queueing.
    pub(crate) latency: Histogram,
}

/// One benchmark's serving state inside the daemon.
pub(crate) struct Tenant {
    /// `Benchmark::name()` — the registry key and the `Hello` routing
    /// token.
    pub(crate) name: String,
    /// The serving primary. Readers (`SelectBatch`, `Hello`, `Stats`)
    /// take a wait-free load; `Promote` publishes a replacement with one
    /// pointer store. No lock, so no lock to poison and no writer that
    /// can stall the hot path.
    pub(crate) primary: ArcSwap<VectorService>,
    pub(crate) shadow: Mutex<ShadowSlot>,
    pub(crate) shadow_rejections: AtomicU64,
    pub(crate) promotions: AtomicU64,
    /// This tenant's request journal; promoted primaries re-attach it.
    pub(crate) trace: Option<Arc<dyn TraceSink>>,
    /// This tenant's wire-traffic recorder (the `--record` tap).
    pub(crate) recorder: Option<Arc<RecorderSink>>,
    /// Per-tenant sampler overriding the daemon-wide one, if configured.
    pub(crate) sampler: Option<Sampler>,
    /// Per-tenant request metrics (counters + latency histogram).
    pub(crate) obs: TenantObs,
}

/// Benchmark name → tenant, in registration order.
///
/// Lookups are a linear scan: a daemon serves a handful of benchmarks,
/// not thousands, and the scan happens once per connection (at `Hello`),
/// not per request — after binding, a connection holds its tenant
/// directly.
pub(crate) struct ArtifactRegistry {
    tenants: Vec<Arc<Tenant>>,
}

impl ArtifactRegistry {
    /// Validates every spec and builds its serving primary.
    ///
    /// # Errors
    /// Returns [`Error::Artifact`] for an inconsistent artifact and
    /// [`Error::Wire`] for an empty registry or a duplicate benchmark.
    pub(crate) fn build(
        specs: Vec<TenantSpec>,
        serve: &ServeOptions,
        events: Option<&Arc<EventLog>>,
        spans: Option<&Arc<SpanLog>>,
    ) -> Result<Self> {
        if specs.is_empty() {
            return Err(Error::wire("a daemon needs at least one tenant artifact"));
        }
        let mut tenants: Vec<Arc<Tenant>> = Vec::with_capacity(specs.len());
        for spec in specs {
            let name = spec.artifact.benchmark.clone();
            if tenants.iter().any(|t| t.name == name) {
                return Err(Error::wire(format!(
                    "two artifacts for benchmark `{name}`; one tenant per benchmark"
                )));
            }
            let mut primary = VectorService::new(spec.artifact, serve.clone())?;
            primary.set_trace(spec.trace.clone());
            // The event log follows the primary role (drift trips and
            // fallback transitions are journaled per tenant); promoted
            // successors re-attach it in `handle_promote`.
            primary.set_events(events.cloned());
            // So does the span log: a traced request's `service.select`
            // span must keep landing after a promotion.
            primary.set_spans(spans.cloned());
            tenants.push(Arc::new(Tenant {
                name,
                primary: ArcSwap::from_pointee(primary),
                shadow: Mutex::new(ShadowSlot {
                    shadow: None,
                    staged_seq: 0,
                }),
                shadow_rejections: AtomicU64::new(0),
                promotions: AtomicU64::new(0),
                trace: spec.trace,
                recorder: spec.recorder,
                sampler: spec.trace_sample.map(Sampler::new),
                obs: TenantObs::default(),
            }));
        }
        Ok(ArtifactRegistry { tenants })
    }

    /// Every tenant, in registration order — the `Metrics` snapshot walk.
    pub(crate) fn tenants(&self) -> &[Arc<Tenant>] {
        &self.tenants
    }

    /// Registered benchmark count.
    pub(crate) fn len(&self) -> usize {
        self.tenants.len()
    }

    /// Routes a `Hello` (or an un-bound request) to a tenant. The empty
    /// string means "the sole tenant" — the wire/2 behavior from before
    /// multi-tenancy — and is refused when the daemon serves several.
    ///
    /// # Errors
    /// A human-readable detail for the typed `Error` reply; the
    /// connection survives it.
    pub(crate) fn resolve(&self, benchmark: &str) -> std::result::Result<Arc<Tenant>, String> {
        if benchmark.is_empty() {
            return match self.tenants.as_slice() {
                [sole] => Ok(Arc::clone(sole)),
                _ => Err(format!(
                    "this daemon serves several benchmarks; say Hello naming one of: {}",
                    self.names().join(", ")
                )),
            };
        }
        self.tenants
            .iter()
            .find(|t| t.name == benchmark)
            .map(Arc::clone)
            .ok_or_else(|| {
                format!(
                    "unknown benchmark `{benchmark}`; this daemon serves: {}",
                    self.names().join(", ")
                )
            })
    }

    fn names(&self) -> Vec<&str> {
        self.tenants.iter().map(|t| t.name.as_str()).collect()
    }
}
