//! Shadow evaluation: a staged candidate model mirrored behind the
//! primary.
//!
//! Lesoil et al.'s interaction study is the motivation: configuration
//! quality shifts with the input distribution, so a retrained artifact
//! must be compared against production traffic *before* it answers a
//! single client. A staged [`ShadowState`] receives a mirror of every
//! `SelectBatch`, records per-landmark agreement with the primary's
//! served answers, and runs its own drift monitor over the mirrored
//! stream. Promotion is gated on that record ([`ShadowPolicy`]); a shadow
//! whose drift monitor trips is **auto-rejected** — dropped on the spot,
//! having never answered a client.

use crate::protocol::{LandmarkAgreement, ShadowStats};
use intune_core::{FeatureVector, Result};
use intune_serve::{Selection, VectorService};
use std::sync::atomic::{AtomicU64, Ordering};

/// The promotion gate for staged shadows.
#[derive(Debug, Clone)]
pub struct ShadowPolicy {
    /// Minimum mirrored **selections** (individual vectors, not
    /// `SelectBatch` frames) before `Promote` may succeed.
    pub min_mirrored: u64,
    /// Minimum overall agreement rate (`agreed / mirrored`) for
    /// promotion.
    pub min_agreement: f64,
}

impl Default for ShadowPolicy {
    fn default() -> Self {
        ShadowPolicy {
            min_mirrored: 64,
            min_agreement: 0.95,
        }
    }
}

/// A staged candidate model and its mirrored-traffic record.
#[derive(Debug)]
pub(crate) struct ShadowState {
    pub(crate) service: VectorService,
    mirrored: AtomicU64,
    agreed: AtomicU64,
    /// `(mirrored, agreed)` per primary landmark index.
    per_landmark: Vec<(AtomicU64, AtomicU64)>,
}

impl ShadowState {
    pub(crate) fn new(service: VectorService, primary_landmarks: usize) -> Self {
        ShadowState {
            service,
            mirrored: AtomicU64::new(0),
            agreed: AtomicU64::new(0),
            per_landmark: (0..primary_landmarks)
                .map(|_| (AtomicU64::new(0), AtomicU64::new(0)))
                .collect(),
        }
    }

    /// Mirrors one served batch: the shadow selects for the same vectors
    /// and its answers are compared landmark-for-landmark against what
    /// the primary actually served. Returns whether the shadow's own
    /// drift monitor has tripped (the auto-reject signal).
    ///
    /// # Errors
    /// Propagates vector-shape mismatches (a shadow trained on a
    /// different feature declaration cannot score this traffic).
    pub(crate) fn mirror(&self, vectors: &[FeatureVector], primary: &[Selection]) -> Result<bool> {
        let shadow = self.service.select_vector_batch(vectors)?;
        for (p, s) in primary.iter().zip(&shadow) {
            self.mirrored.fetch_add(1, Ordering::AcqRel);
            let (m, a) = &self.per_landmark[p.landmark];
            m.fetch_add(1, Ordering::AcqRel);
            if s.landmark == p.landmark {
                self.agreed.fetch_add(1, Ordering::AcqRel);
                a.fetch_add(1, Ordering::AcqRel);
            }
        }
        Ok(self.service.fallback_active())
    }

    /// Checks the promotion gate.
    ///
    /// # Errors
    /// Returns a human-readable refusal reason.
    pub(crate) fn promotable(&self, policy: &ShadowPolicy) -> std::result::Result<(), String> {
        let mirrored = self.mirrored.load(Ordering::Acquire);
        if mirrored < policy.min_mirrored {
            return Err(format!(
                "shadow has mirrored {mirrored} selections, promotion needs {}",
                policy.min_mirrored
            ));
        }
        let agreed = self.agreed.load(Ordering::Acquire);
        let rate = intune_exec::hit_rate(agreed, mirrored);
        if rate < policy.min_agreement {
            return Err(format!(
                "shadow agreement rate {rate:.4} is below the {:.4} promotion bar",
                policy.min_agreement
            ));
        }
        if self.service.fallback_active() {
            return Err("shadow drift monitor is tripped".to_string());
        }
        Ok(())
    }

    /// Counter snapshot for `Stats` replies.
    pub(crate) fn stats(&self) -> ShadowStats {
        let mirrored = self.mirrored.load(Ordering::Acquire);
        let agreed = self.agreed.load(Ordering::Acquire);
        ShadowStats {
            revision: self.service.artifact().revision,
            mirrored,
            agreed,
            agreement_rate: intune_exec::hit_rate(agreed, mirrored),
            per_landmark: self
                .per_landmark
                .iter()
                .enumerate()
                .map(|(landmark, (m, a))| LandmarkAgreement {
                    landmark: landmark as u64,
                    mirrored: m.load(Ordering::Acquire),
                    agreed: a.load(Ordering::Acquire),
                })
                .collect(),
            drift: self.service.stats(),
        }
    }
}
