//! The `intune-wire/2` protocol: binary-headed frames carrying compact
//! checksummed JSON messages.
//!
//! ## Frame layout
//!
//! ```text
//! ┌──────────────────┬─────────────┬────────────────────┬───────────────────────────┐
//! │ length: u32 (BE) │ version: u8 │ checksum: u64 (BE) │ payload: `length` bytes   │
//! └──────────────────┴─────────────┴────────────────────┴───────────────────────────┘
//! ```
//!
//! The 13-byte header carries the payload length, the wire version
//! ([`WIRE_VERSION`]), and the FNV-1a 64 checksum of the **raw payload
//! bytes**. The payload is the compact JSON of an externally-tagged
//! message ([`Request`] from clients, [`Response`] from the daemon):
//!
//! ```json
//! {"SelectBatch":{"features":[...]}}
//! ```
//!
//! Wire/1 wrapped every message in the pretty-printed `intune_core::codec`
//! document envelope, whose decode *re-serialized* the payload to verify
//! the checksum — four JSON passes per frame per direction. Wire/2
//! checksums the bytes as sent, so each direction costs one serialization
//! or one parse, nothing else.
//!
//! Every request gets exactly one response on the same connection, in
//! order. Receivers hold a persistent [`FrameReader`] per connection:
//! payloads land in its reusable buffer (decoded by borrowing, never
//! re-allocated per frame), and the buffer grows **incrementally** in
//! [`READ_CHUNK_BYTES`] steps as body bytes actually arrive — a peer
//! announcing a huge length allocates nothing beyond one chunk until it
//! ships real data, and lengths above [`MAX_FRAME_BYTES`] are rejected
//! outright. Any transport, header, or payload failure is a typed
//! [`intune_core::Error::Wire`].

use intune_core::{codec, Error, FeatureVector, Result};
use intune_serve::{Selection, ServeStats};
use serde::{Deserialize, Serialize};
use std::io::{Read, Write};

/// Wire protocol version byte (`intune-wire/2`).
pub const WIRE_VERSION: u8 = 2;
/// Upper bound on a frame payload; larger announced lengths are rejected
/// before any allocation happens.
pub const MAX_FRAME_BYTES: usize = 64 << 20;
/// Frame header size: length (4) + version (1) + checksum (8).
pub const HEADER_BYTES: usize = 13;
/// Growth step of a [`FrameReader`]'s buffer while a payload arrives.
/// Memory committed to a connection is bounded by the bytes its peer has
/// actually sent, rounded up to this chunk — not by the announced length.
pub const READ_CHUNK_BYTES: usize = 64 << 10;

/// Client → daemon messages.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Opens a session; the daemon answers [`Response::HelloAck`]
    /// describing the model it serves.
    Hello {
        /// Client self-identification (free-form, for server logs).
        client: String,
    },
    /// Selects a landmark for each fully-extracted feature vector.
    SelectBatch {
        /// The vectors, shaped for the served artifact's feature
        /// declaration (`extract_all`-complete).
        features: Vec<FeatureVector>,
    },
    /// [`Request::SelectBatch`] with opaque raw-input payloads riding
    /// along for the daemon's request journal (continuous learning
    /// retrains on what production actually processed, and feature
    /// vectors alone cannot be re-measured). Payloads are parallel to
    /// `features` (`null` = no payload for that vector), produced by
    /// `Benchmark::encode_input` client-side, and never influence the
    /// selection. A daemon without a journal serves this identically to
    /// `SelectBatch`.
    SelectBatchTraced {
        /// The vectors, as in [`Request::SelectBatch`].
        features: Vec<FeatureVector>,
        /// One opaque input payload per vector (`null` allowed).
        payloads: Vec<serde_json::Value>,
    },
    /// Requests the daemon's counter snapshot.
    Stats,
    /// Stages a candidate model artifact (a full
    /// `intune-model-artifact` document, any readable schema version) as
    /// the **shadow**: mirrored on every subsequent `SelectBatch`, never
    /// answering clients, until promoted or rejected.
    LoadArtifact {
        /// The artifact document text (what `ModelArtifact::save` writes).
        document: String,
    },
    /// Promotes the staged shadow to primary, gated on its mirrored
    /// agreement record.
    Promote,
    /// Panics the handling connection thread — fault injection for
    /// resilience tests (the panic-containment invariant: one poisoned
    /// request costs one connection, never the daemon). Refused with a
    /// typed [`Response::Error`] unless the daemon opted in via
    /// `DaemonOptions::inject_faults`.
    InjectPanic,
    /// Asks the daemon to stop accepting connections and exit.
    Shutdown,
}

/// Daemon → client messages.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// Session opened.
    HelloAck {
        /// Server self-identification.
        server: String,
        /// `Benchmark::name()` of the served model.
        benchmark: String,
        /// Rollout revision of the primary artifact.
        revision: u64,
        /// Artifact schema version the daemon writes
        /// (`intune_serve::ARTIFACT_VERSION`).
        artifact_version: u32,
        /// Number of landmarks in the primary model.
        landmarks: u64,
    },
    /// Answers to a `SelectBatch`, in request order.
    Selections {
        /// One selection per requested vector.
        selections: Vec<Selection>,
    },
    /// Counter snapshot.
    StatsReply {
        /// The daemon's counters.
        stats: DaemonStats,
    },
    /// Shadow staged.
    Loaded {
        /// Benchmark the staged artifact was trained for.
        benchmark: String,
        /// Rollout revision of the staged artifact.
        revision: u64,
    },
    /// Shadow promoted to primary.
    Promoted {
        /// Rollout revision now serving.
        revision: u64,
    },
    /// Shutdown acknowledged; the daemon exits after this frame.
    ShuttingDown,
    /// The request failed; the connection stays usable.
    Error {
        /// Human-readable failure detail.
        detail: String,
    },
}

/// Mirrored-agreement record for one primary landmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LandmarkAgreement {
    /// Landmark index in the primary model.
    pub landmark: u64,
    /// Mirrored selections the primary routed to this landmark.
    pub mirrored: u64,
    /// How many of those the shadow agreed on.
    pub agreed: u64,
}

/// Counters of a staged shadow model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShadowStats {
    /// Rollout revision of the staged artifact.
    pub revision: u64,
    /// Selections mirrored to the shadow so far (one per vector; a
    /// `SelectBatch` frame of B vectors mirrors B selections).
    pub mirrored: u64,
    /// Mirrored selections where the shadow chose the primary's landmark.
    pub agreed: u64,
    /// `agreed / mirrored` (0 when nothing mirrored yet).
    pub agreement_rate: f64,
    /// Per-primary-landmark agreement breakdown.
    pub per_landmark: Vec<LandmarkAgreement>,
    /// The shadow's own drift-monitor counters over the mirrored stream.
    pub drift: ServeStats,
}

/// Counter snapshot of the whole daemon.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DaemonStats {
    /// `Benchmark::name()` of the served model.
    pub benchmark: String,
    /// Rollout revision of the primary artifact.
    pub revision: u64,
    /// Primary serving counters (requests, probes, OOD, fallbacks).
    pub primary: ServeStats,
    /// The staged shadow's counters, if one is staged.
    pub shadow: Option<ShadowStats>,
    /// Shadows auto-rejected by the drift monitor since startup.
    pub shadow_rejections: u64,
    /// Shadows promoted to primary since startup.
    pub promotions: u64,
    /// Connections accepted since startup.
    pub connections: u64,
    /// Selections durably appended to the request journal since startup
    /// (0 when the daemon runs without a journal).
    pub journaled: u64,
}

/// Encodes a message into its frame payload (compact JSON).
pub fn encode_message<T: Serialize>(message: &T) -> String {
    serde_json::to_string(message).expect("message serialization is infallible")
}

/// Encodes a `SelectBatch` frame payload directly from a borrowed vector
/// slice — byte-identical to
/// `encode_message(&Request::SelectBatch { features: features.to_vec() })`
/// without cloning the batch first (the client's hot path; a unit test
/// pins the equivalence against the derive's external tagging).
pub fn encode_select_batch(features: &[FeatureVector]) -> String {
    let payload = serde_json::Value::Object(vec![(
        "SelectBatch".to_string(),
        serde_json::Value::Object(vec![(
            "features".to_string(),
            serde::Serialize::to_value(&features),
        )]),
    )]);
    serde_json::to_string(&payload).expect("value printing is infallible")
}

/// Decodes a frame payload into a message.
///
/// # Errors
/// Returns [`Error::Wire`] on a payload-shape failure.
pub fn decode_message<T: Deserialize>(text: &str) -> Result<T> {
    serde_json::from_str(text).map_err(|e| Error::wire(format!("bad frame payload: {e}")))
}

/// Assembles one frame (header + payload) as a single buffer, so writers
/// hand the transport one contiguous write instead of a header syscall
/// followed by a body syscall.
///
/// # Errors
/// Returns [`Error::Wire`] for an oversized payload.
pub fn encode_frame(payload: &str) -> Result<Vec<u8>> {
    let bytes = payload.as_bytes();
    if bytes.len() > MAX_FRAME_BYTES {
        return Err(Error::wire(format!(
            "frame payload of {} bytes exceeds the {MAX_FRAME_BYTES}-byte cap",
            bytes.len()
        )));
    }
    let mut frame = Vec::with_capacity(HEADER_BYTES + bytes.len());
    frame.extend_from_slice(&(bytes.len() as u32).to_be_bytes());
    frame.push(WIRE_VERSION);
    frame.extend_from_slice(&codec::fnv1a64(bytes).to_be_bytes());
    frame.extend_from_slice(bytes);
    Ok(frame)
}

/// Writes one frame (one buffered write + flush).
///
/// # Errors
/// Returns [`Error::Wire`] on transport failure or an oversized payload.
pub fn write_frame<W: Write>(w: &mut W, payload: &str) -> Result<()> {
    let frame = encode_frame(payload)?;
    w.write_all(&frame)
        .and_then(|()| w.flush())
        .map_err(|e| Error::wire(format!("cannot write frame: {e}")))
}

/// Writes a message as one frame.
///
/// # Errors
/// Returns [`Error::Wire`] on transport failure.
pub fn send<W: Write, T: Serialize>(w: &mut W, message: &T) -> Result<()> {
    write_frame(w, &encode_message(message))
}

/// A per-connection frame receiver owning a reusable payload buffer.
///
/// The buffer persists across frames (no per-frame allocation once it has
/// grown to the connection's working size) and decoded payloads are
/// borrowed straight out of it. While a payload arrives the buffer grows
/// in [`READ_CHUNK_BYTES`] steps, so memory tracks bytes *received*, not
/// bytes *announced* — the defense against a peer declaring a 64 MiB
/// frame and then trickling or abandoning it.
#[derive(Debug, Default)]
pub struct FrameReader {
    buf: Vec<u8>,
}

impl FrameReader {
    /// Creates a reader with an empty buffer.
    pub fn new() -> Self {
        FrameReader::default()
    }

    /// Current capacity of the payload buffer — what this connection
    /// durably pins in memory between frames.
    pub fn buffer_capacity(&self) -> usize {
        self.buf.capacity()
    }

    /// Reads one frame, returning its payload borrowed from the internal
    /// buffer. `Ok(None)` is a clean end-of-stream (the peer closed
    /// between frames).
    ///
    /// # Errors
    /// Returns [`Error::Wire`] on transport failure, a truncated header
    /// or payload, a version or checksum mismatch, an oversized announced
    /// length, or a non-UTF-8 payload.
    pub fn read_frame<'a, R: Read>(&'a mut self, r: &mut R) -> Result<Option<&'a str>> {
        let mut header = [0u8; HEADER_BYTES];
        // Distinguish clean EOF (no bytes of a next frame) from truncation.
        let mut filled = 0;
        while filled < header.len() {
            match r.read(&mut header[filled..]) {
                Ok(0) if filled == 0 => return Ok(None),
                Ok(0) => return Err(Error::wire("connection closed mid-header")),
                Ok(n) => filled += n,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(Error::wire(format!("cannot read frame header: {e}"))),
            }
        }
        let len = u32::from_be_bytes(header[..4].try_into().expect("4 header bytes")) as usize;
        if header[4] != WIRE_VERSION {
            return Err(Error::wire(format!(
                "peer speaks wire version {}, this daemon speaks {WIRE_VERSION}",
                header[4]
            )));
        }
        let expected = u64::from_be_bytes(header[5..].try_into().expect("8 header bytes"));
        if len > MAX_FRAME_BYTES {
            return Err(Error::wire(format!(
                "peer announced a {len}-byte frame, cap is {MAX_FRAME_BYTES}"
            )));
        }
        // Incremental, capped growth: commit at most one chunk ahead of
        // the bytes actually received.
        self.buf.clear();
        while self.buf.len() < len {
            let upto = (self.buf.len() + READ_CHUNK_BYTES).min(len);
            let start = self.buf.len();
            self.buf.resize(upto, 0);
            r.read_exact(&mut self.buf[start..upto]).map_err(|e| {
                self.buf.clear();
                Error::wire(format!("connection closed mid-frame: {e}"))
            })?;
        }
        if codec::fnv1a64(&self.buf) != expected {
            return Err(Error::wire("frame checksum mismatch"));
        }
        std::str::from_utf8(&self.buf)
            .map(Some)
            .map_err(|_| Error::wire("frame payload is not valid UTF-8"))
    }

    /// Reads one message; `Ok(None)` is a clean end-of-stream.
    ///
    /// # Errors
    /// Returns [`Error::Wire`] on transport, header, or payload failure.
    pub fn recv<R: Read, T: Deserialize>(&mut self, r: &mut R) -> Result<Option<T>> {
        match self.read_frame(r)? {
            None => Ok(None),
            Some(payload) => decode_message(payload).map(Some),
        }
    }
}

/// One-shot [`FrameReader::recv`] for callers without a persistent
/// connection (tests, single-frame probes). Hot paths should hold a
/// `FrameReader` to reuse its buffer.
///
/// # Errors
/// Returns [`Error::Wire`] on transport, header, or payload failure.
pub fn recv<R: Read, T: Deserialize>(r: &mut R) -> Result<Option<T>> {
    FrameReader::new().recv(r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use intune_core::{FeatureDef, FeatureId, FeatureSample};

    fn vector() -> FeatureVector {
        let defs = [FeatureDef::new("a", 2), FeatureDef::new("b", 1)];
        let mut fv = FeatureVector::empty(&defs);
        for (p, def) in defs.iter().enumerate() {
            for level in 0..def.levels {
                fv.insert(
                    FeatureId { property: p, level },
                    FeatureSample::new(0.25 + p as f64, 1.5 * (level + 1) as f64),
                )
                .unwrap();
            }
        }
        fv
    }

    #[test]
    fn requests_round_trip_through_frames() {
        let requests = vec![
            Request::Hello {
                client: "test".into(),
            },
            Request::SelectBatch {
                features: vec![vector(), vector()],
            },
            Request::SelectBatchTraced {
                features: vec![vector(), vector()],
                payloads: vec![
                    serde_json::Value::Array(vec![serde_json::Value::Float(0.1 + 0.2)]),
                    serde_json::Value::Null,
                ],
            },
            Request::Stats,
            Request::LoadArtifact {
                document: "{\"not\": \"checked here\"}".into(),
            },
            Request::Promote,
            Request::InjectPanic,
            Request::Shutdown,
        ];
        let mut buf = Vec::new();
        for r in &requests {
            send(&mut buf, r).unwrap();
        }
        let mut cursor = std::io::Cursor::new(buf);
        let mut reader = FrameReader::new();
        for expect in &requests {
            let got: Request = reader.recv(&mut cursor).unwrap().expect("a frame");
            assert_eq!(&got, expect);
        }
        assert_eq!(
            reader.recv::<_, Request>(&mut cursor).unwrap(),
            None,
            "clean EOF"
        );
    }

    #[test]
    fn responses_round_trip_including_float_bit_patterns() {
        let responses = vec![
            Response::HelloAck {
                server: "intune-daemon".into(),
                benchmark: "sort2".into(),
                revision: 3,
                artifact_version: 2,
                landmarks: 8,
            },
            Response::Selections {
                selections: vec![Selection {
                    landmark: 5,
                    extraction_cost: 0.1 + 0.2, // a classic non-exact float
                    out_of_distribution: true,
                    fell_back: false,
                }],
            },
            Response::ShuttingDown,
            Response::Error {
                detail: "nope".into(),
            },
        ];
        let mut buf = Vec::new();
        for r in &responses {
            send(&mut buf, r).unwrap();
        }
        let mut cursor = std::io::Cursor::new(buf);
        for expect in &responses {
            let got: Response = recv(&mut cursor).unwrap().expect("a frame");
            assert_eq!(&got, expect);
            if let (
                Response::Selections { selections: a },
                Response::Selections { selections: b },
            ) = (&got, expect)
            {
                assert_eq!(
                    a[0].extraction_cost.to_bits(),
                    b[0].extraction_cost.to_bits(),
                    "floats cross the wire bit-exactly"
                );
            }
        }
    }

    #[test]
    fn borrowed_select_batch_encoding_matches_the_derived_one() {
        let features = vec![vector(), vector()];
        assert_eq!(
            encode_select_batch(&features),
            encode_message(&Request::SelectBatch {
                features: features.clone()
            }),
            "hand-tagged encoding must track the derive's external tagging"
        );
    }

    #[test]
    fn corrupted_payloads_fail_the_checksum() {
        let mut buf = Vec::new();
        send(&mut buf, &Request::Stats).unwrap();
        // Flip a payload byte without touching the header checksum.
        let at = buf.len() - 2;
        buf[at] ^= 0x01;
        let mut cursor = std::io::Cursor::new(buf);
        let err = recv::<_, Request>(&mut cursor).unwrap_err();
        assert!(err.to_string().contains("checksum"), "{err}");
        assert!(matches!(err, Error::Wire { .. }), "{err:?}");
    }

    #[test]
    fn wrong_wire_version_is_a_typed_error() {
        let mut buf = Vec::new();
        send(&mut buf, &Request::Stats).unwrap();
        buf[4] = 1; // wire/1 speaker
        let err = recv::<_, Request>(&mut std::io::Cursor::new(buf)).unwrap_err();
        assert!(err.to_string().contains("version"), "{err}");
    }

    #[test]
    fn truncated_and_oversized_frames_are_rejected() {
        let mut buf = Vec::new();
        send(&mut buf, &Request::Stats).unwrap();
        buf.truncate(buf.len() - 2);
        let mut cursor = std::io::Cursor::new(buf);
        let err = FrameReader::new().read_frame(&mut cursor).unwrap_err();
        assert!(err.to_string().contains("mid-frame"), "{err}");

        let mut huge = Vec::new();
        huge.extend_from_slice(&u32::MAX.to_be_bytes());
        huge.push(WIRE_VERSION);
        huge.extend_from_slice(&[0u8; 8]);
        let err = FrameReader::new()
            .read_frame(&mut std::io::Cursor::new(huge))
            .unwrap_err();
        assert!(err.to_string().contains("cap"), "{err}");

        // A partial header (slow-loris that died) is truncation, not
        // clean EOF.
        let err = FrameReader::new()
            .read_frame(&mut std::io::Cursor::new(vec![0u8, 0, 0, 9, WIRE_VERSION]))
            .unwrap_err();
        assert!(err.to_string().contains("mid-header"), "{err}");
    }

    #[test]
    fn huge_announced_length_does_not_preallocate() {
        // A peer announcing a cap-sized frame but shipping 10 bytes: the
        // reader must commit at most one growth chunk, not 64 MiB.
        let mut adversarial = Vec::new();
        adversarial.extend_from_slice(&(MAX_FRAME_BYTES as u32).to_be_bytes());
        adversarial.push(WIRE_VERSION);
        adversarial.extend_from_slice(&[0u8; 8]);
        adversarial.extend_from_slice(b"ten bytes.");
        let mut reader = FrameReader::new();
        let err = reader
            .read_frame(&mut std::io::Cursor::new(adversarial))
            .unwrap_err();
        assert!(err.to_string().contains("mid-frame"), "{err}");
        assert!(
            reader.buffer_capacity() <= READ_CHUNK_BYTES,
            "announced 64 MiB, received 10 bytes, but {} bytes committed",
            reader.buffer_capacity()
        );
    }

    #[test]
    fn reader_buffer_is_reused_across_frames() {
        let mut buf = Vec::new();
        let batch = Request::SelectBatch {
            features: vec![vector(); 16],
        };
        send(&mut buf, &batch).unwrap();
        send(&mut buf, &batch).unwrap();
        let mut cursor = std::io::Cursor::new(buf);
        let mut reader = FrameReader::new();
        assert!(reader.recv::<_, Request>(&mut cursor).unwrap().is_some());
        let after_first = reader.buffer_capacity();
        assert!(reader.recv::<_, Request>(&mut cursor).unwrap().is_some());
        assert_eq!(
            reader.buffer_capacity(),
            after_first,
            "second frame reuses the first frame's buffer"
        );
    }

    #[test]
    fn unknown_message_shapes_are_rejected() {
        let err = decode_message::<Request>("\"NotARealVariant\"").unwrap_err();
        assert!(matches!(err, Error::Wire { .. }), "{err:?}");

        let err = decode_message::<Request>("{ not json").unwrap_err();
        assert!(err.to_string().contains("payload"), "{err}");
    }
}
