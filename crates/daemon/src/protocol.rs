//! The `intune-wire/1` protocol: length-prefixed frames carrying
//! checksummed JSON envelopes.
//!
//! ## Frame layout
//!
//! ```text
//! ┌────────────────────┬──────────────────────────────────────────────┐
//! │ length: u32 (BE)   │ body: `length` bytes of UTF-8 JSON           │
//! └────────────────────┴──────────────────────────────────────────────┘
//! ```
//!
//! The body is an `intune_core::codec` envelope — the same checksummed
//! document format model artifacts use — with `schema: "intune-wire"`,
//! `version: 1`, and the message as payload:
//!
//! ```json
//! {
//!   "schema": "intune-wire",
//!   "version": 1,
//!   "checksum": "fnv1a64:<16 hex digits>",
//!   "payload": {"SelectBatch": {"features": [...]}}
//! }
//! ```
//!
//! Messages are externally-tagged enums ([`Request`] from clients,
//! [`Response`] from the daemon); every request gets exactly one response
//! on the same connection, in order. Frames above [`MAX_FRAME_BYTES`] are
//! rejected before allocation. Any transport or envelope failure is a
//! typed [`intune_core::Error::Wire`].

use intune_core::{codec, Error, FeatureVector, Result};
use intune_serve::{Selection, ServeStats};
use serde::{Deserialize, Serialize};
use std::io::{Read, Write};

/// Envelope schema name of wire frames.
pub const WIRE_SCHEMA: &str = "intune-wire";
/// Wire protocol version (`intune-wire/1`).
pub const WIRE_VERSION: u32 = 1;
/// Upper bound on a frame body; larger length prefixes are rejected
/// before any allocation happens.
pub const MAX_FRAME_BYTES: usize = 64 << 20;

/// Client → daemon messages.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Opens a session; the daemon answers [`Response::HelloAck`]
    /// describing the model it serves.
    Hello {
        /// Client self-identification (free-form, for server logs).
        client: String,
    },
    /// Selects a landmark for each fully-extracted feature vector.
    SelectBatch {
        /// The vectors, shaped for the served artifact's feature
        /// declaration (`extract_all`-complete).
        features: Vec<FeatureVector>,
    },
    /// [`Request::SelectBatch`] with opaque raw-input payloads riding
    /// along for the daemon's request journal (continuous learning
    /// retrains on what production actually processed, and feature
    /// vectors alone cannot be re-measured). Payloads are parallel to
    /// `features` (`null` = no payload for that vector), produced by
    /// `Benchmark::encode_input` client-side, and never influence the
    /// selection. A daemon without a journal serves this identically to
    /// `SelectBatch`.
    SelectBatchTraced {
        /// The vectors, as in [`Request::SelectBatch`].
        features: Vec<FeatureVector>,
        /// One opaque input payload per vector (`null` allowed).
        payloads: Vec<serde_json::Value>,
    },
    /// Requests the daemon's counter snapshot.
    Stats,
    /// Stages a candidate model artifact (a full
    /// `intune-model-artifact` document, any readable schema version) as
    /// the **shadow**: mirrored on every subsequent `SelectBatch`, never
    /// answering clients, until promoted or rejected.
    LoadArtifact {
        /// The artifact document text (what `ModelArtifact::save` writes).
        document: String,
    },
    /// Promotes the staged shadow to primary, gated on its mirrored
    /// agreement record.
    Promote,
    /// Asks the daemon to stop accepting connections and exit.
    Shutdown,
}

/// Daemon → client messages.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// Session opened.
    HelloAck {
        /// Server self-identification.
        server: String,
        /// `Benchmark::name()` of the served model.
        benchmark: String,
        /// Rollout revision of the primary artifact.
        revision: u64,
        /// Artifact schema version the daemon writes
        /// (`intune_serve::ARTIFACT_VERSION`).
        artifact_version: u32,
        /// Number of landmarks in the primary model.
        landmarks: u64,
    },
    /// Answers to a `SelectBatch`, in request order.
    Selections {
        /// One selection per requested vector.
        selections: Vec<Selection>,
    },
    /// Counter snapshot.
    StatsReply {
        /// The daemon's counters.
        stats: DaemonStats,
    },
    /// Shadow staged.
    Loaded {
        /// Benchmark the staged artifact was trained for.
        benchmark: String,
        /// Rollout revision of the staged artifact.
        revision: u64,
    },
    /// Shadow promoted to primary.
    Promoted {
        /// Rollout revision now serving.
        revision: u64,
    },
    /// Shutdown acknowledged; the daemon exits after this frame.
    ShuttingDown,
    /// The request failed; the connection stays usable.
    Error {
        /// Human-readable failure detail.
        detail: String,
    },
}

/// Mirrored-agreement record for one primary landmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LandmarkAgreement {
    /// Landmark index in the primary model.
    pub landmark: u64,
    /// Mirrored selections the primary routed to this landmark.
    pub mirrored: u64,
    /// How many of those the shadow agreed on.
    pub agreed: u64,
}

/// Counters of a staged shadow model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShadowStats {
    /// Rollout revision of the staged artifact.
    pub revision: u64,
    /// Selections mirrored to the shadow so far (one per vector; a
    /// `SelectBatch` frame of B vectors mirrors B selections).
    pub mirrored: u64,
    /// Mirrored selections where the shadow chose the primary's landmark.
    pub agreed: u64,
    /// `agreed / mirrored` (0 when nothing mirrored yet).
    pub agreement_rate: f64,
    /// Per-primary-landmark agreement breakdown.
    pub per_landmark: Vec<LandmarkAgreement>,
    /// The shadow's own drift-monitor counters over the mirrored stream.
    pub drift: ServeStats,
}

/// Counter snapshot of the whole daemon.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DaemonStats {
    /// `Benchmark::name()` of the served model.
    pub benchmark: String,
    /// Rollout revision of the primary artifact.
    pub revision: u64,
    /// Primary serving counters (requests, probes, OOD, fallbacks).
    pub primary: ServeStats,
    /// The staged shadow's counters, if one is staged.
    pub shadow: Option<ShadowStats>,
    /// Shadows auto-rejected by the drift monitor since startup.
    pub shadow_rejections: u64,
    /// Shadows promoted to primary since startup.
    pub promotions: u64,
    /// Connections accepted since startup.
    pub connections: u64,
    /// Selections durably appended to the request journal since startup
    /// (0 when the daemon runs without a journal).
    pub journaled: u64,
}

/// Encodes a message into its frame body (the checksummed envelope text).
pub fn encode_message<T: Serialize>(message: &T) -> String {
    codec::encode_document(WIRE_SCHEMA, WIRE_VERSION, serde_json::to_value(message))
}

/// Encodes a `SelectBatch` frame body directly from a borrowed vector
/// slice — byte-identical to
/// `encode_message(&Request::SelectBatch { features: features.to_vec() })`
/// without cloning the batch first (the client's hot path; a unit test
/// pins the equivalence against the derive's external tagging).
pub fn encode_select_batch(features: &[FeatureVector]) -> String {
    let payload = serde_json::Value::Object(vec![(
        "SelectBatch".to_string(),
        serde_json::Value::Object(vec![(
            "features".to_string(),
            serde::Serialize::to_value(&features),
        )]),
    )]);
    codec::encode_document(WIRE_SCHEMA, WIRE_VERSION, payload)
}

/// Decodes a frame body into a message.
///
/// # Errors
/// Returns [`Error::Wire`] on envelope or payload-shape failures.
pub fn decode_message<T: Deserialize>(text: &str) -> Result<T> {
    let payload = codec::decode_document(text, WIRE_SCHEMA, WIRE_VERSION)
        .map_err(|e| Error::wire(format!("bad frame envelope: {e}")))?;
    serde_json::from_value(&payload).map_err(|e| Error::wire(format!("bad frame payload: {e}")))
}

/// Writes one frame (length prefix + body).
///
/// # Errors
/// Returns [`Error::Wire`] on transport failure or an oversized body.
pub fn write_frame<W: Write>(w: &mut W, body: &str) -> Result<()> {
    let bytes = body.as_bytes();
    if bytes.len() > MAX_FRAME_BYTES {
        return Err(Error::wire(format!(
            "frame body of {} bytes exceeds the {MAX_FRAME_BYTES}-byte cap",
            bytes.len()
        )));
    }
    let len = (bytes.len() as u32).to_be_bytes();
    w.write_all(&len)
        .and_then(|()| w.write_all(bytes))
        .and_then(|()| w.flush())
        .map_err(|e| Error::wire(format!("cannot write frame: {e}")))
}

/// Reads one frame body. `Ok(None)` is a clean end-of-stream (the peer
/// closed between frames).
///
/// # Errors
/// Returns [`Error::Wire`] on transport failure, a truncated frame, an
/// oversized length prefix, or a non-UTF-8 body.
pub fn read_frame<R: Read>(r: &mut R) -> Result<Option<String>> {
    let mut len = [0u8; 4];
    // Distinguish clean EOF (no bytes of a next frame) from truncation.
    let mut filled = 0;
    while filled < len.len() {
        match r.read(&mut len[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => return Err(Error::wire("connection closed mid-length-prefix")),
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(Error::wire(format!("cannot read frame length: {e}"))),
        }
    }
    let len = u32::from_be_bytes(len) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(Error::wire(format!(
            "peer announced a {len}-byte frame, cap is {MAX_FRAME_BYTES}"
        )));
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)
        .map_err(|e| Error::wire(format!("connection closed mid-frame: {e}")))?;
    String::from_utf8(body)
        .map(Some)
        .map_err(|_| Error::wire("frame body is not valid UTF-8"))
}

/// Writes a message as one frame.
///
/// # Errors
/// Returns [`Error::Wire`] on transport failure.
pub fn send<W: Write, T: Serialize>(w: &mut W, message: &T) -> Result<()> {
    write_frame(w, &encode_message(message))
}

/// Reads one message; `Ok(None)` is a clean end-of-stream.
///
/// # Errors
/// Returns [`Error::Wire`] on transport or envelope failure.
pub fn recv<R: Read, T: Deserialize>(r: &mut R) -> Result<Option<T>> {
    match read_frame(r)? {
        None => Ok(None),
        Some(body) => decode_message(&body).map(Some),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use intune_core::{FeatureDef, FeatureId, FeatureSample};

    fn vector() -> FeatureVector {
        let defs = [FeatureDef::new("a", 2), FeatureDef::new("b", 1)];
        let mut fv = FeatureVector::empty(&defs);
        for (p, def) in defs.iter().enumerate() {
            for level in 0..def.levels {
                fv.insert(
                    FeatureId { property: p, level },
                    FeatureSample::new(0.25 + p as f64, 1.5 * (level + 1) as f64),
                )
                .unwrap();
            }
        }
        fv
    }

    #[test]
    fn requests_round_trip_through_frames() {
        let requests = vec![
            Request::Hello {
                client: "test".into(),
            },
            Request::SelectBatch {
                features: vec![vector(), vector()],
            },
            Request::SelectBatchTraced {
                features: vec![vector(), vector()],
                payloads: vec![
                    serde_json::Value::Array(vec![serde_json::Value::Float(0.1 + 0.2)]),
                    serde_json::Value::Null,
                ],
            },
            Request::Stats,
            Request::LoadArtifact {
                document: "{\"not\": \"checked here\"}".into(),
            },
            Request::Promote,
            Request::Shutdown,
        ];
        let mut buf = Vec::new();
        for r in &requests {
            send(&mut buf, r).unwrap();
        }
        let mut cursor = std::io::Cursor::new(buf);
        for expect in &requests {
            let got: Request = recv(&mut cursor).unwrap().expect("a frame");
            assert_eq!(&got, expect);
        }
        assert_eq!(recv::<_, Request>(&mut cursor).unwrap(), None, "clean EOF");
    }

    #[test]
    fn responses_round_trip_including_float_bit_patterns() {
        let responses = vec![
            Response::HelloAck {
                server: "intune-daemon".into(),
                benchmark: "sort2".into(),
                revision: 3,
                artifact_version: 2,
                landmarks: 8,
            },
            Response::Selections {
                selections: vec![Selection {
                    landmark: 5,
                    extraction_cost: 0.1 + 0.2, // a classic non-exact float
                    out_of_distribution: true,
                    fell_back: false,
                }],
            },
            Response::ShuttingDown,
            Response::Error {
                detail: "nope".into(),
            },
        ];
        let mut buf = Vec::new();
        for r in &responses {
            send(&mut buf, r).unwrap();
        }
        let mut cursor = std::io::Cursor::new(buf);
        for expect in &responses {
            let got: Response = recv(&mut cursor).unwrap().expect("a frame");
            assert_eq!(&got, expect);
            if let (
                Response::Selections { selections: a },
                Response::Selections { selections: b },
            ) = (&got, expect)
            {
                assert_eq!(
                    a[0].extraction_cost.to_bits(),
                    b[0].extraction_cost.to_bits(),
                    "floats cross the wire bit-exactly"
                );
            }
        }
    }

    #[test]
    fn borrowed_select_batch_encoding_matches_the_derived_one() {
        let features = vec![vector(), vector()];
        assert_eq!(
            encode_select_batch(&features),
            encode_message(&Request::SelectBatch {
                features: features.clone()
            }),
            "hand-tagged encoding must track the derive's external tagging"
        );
    }

    #[test]
    fn corrupted_frames_are_typed_wire_errors() {
        let mut buf = Vec::new();
        send(&mut buf, &Request::Stats).unwrap();
        // Flip a payload byte without touching the checksum.
        let at = buf.len() - 4;
        buf[at] ^= 0x01;
        let mut cursor = std::io::Cursor::new(buf);
        let err = recv::<_, Request>(&mut cursor).unwrap_err();
        assert!(matches!(err, Error::Wire { .. }), "{err:?}");
    }

    #[test]
    fn truncated_and_oversized_frames_are_rejected() {
        let mut buf = Vec::new();
        send(&mut buf, &Request::Stats).unwrap();
        buf.truncate(buf.len() - 2);
        let mut cursor = std::io::Cursor::new(buf);
        let err = read_frame(&mut cursor).unwrap_err();
        assert!(err.to_string().contains("mid-frame"), "{err}");

        let mut huge = Vec::new();
        huge.extend_from_slice(&(u32::MAX).to_be_bytes());
        let err = read_frame(&mut std::io::Cursor::new(huge)).unwrap_err();
        assert!(err.to_string().contains("cap"), "{err}");

        // A partial length prefix is truncation, not clean EOF.
        let err = read_frame(&mut std::io::Cursor::new(vec![0u8, 0])).unwrap_err();
        assert!(err.to_string().contains("mid-length"), "{err}");
    }

    #[test]
    fn unknown_message_shapes_are_rejected() {
        let body = codec::encode_document(
            WIRE_SCHEMA,
            WIRE_VERSION,
            serde_json::to_value(&"NotARealVariant".to_string()),
        );
        let err = decode_message::<Request>(&body).unwrap_err();
        assert!(matches!(err, Error::Wire { .. }), "{err:?}");

        // Wrong schema name in the envelope.
        let body = codec::encode_document("other-wire", WIRE_VERSION, serde_json::Value::Null);
        let err = decode_message::<Request>(&body).unwrap_err();
        assert!(err.to_string().contains("envelope"), "{err}");
    }
}
