//! The `intune-wire/2` protocol: binary-headed frames carrying compact
//! checksummed JSON messages.
//!
//! ## Frame layout
//!
//! ```text
//! ┌──────────────────┬─────────────┬────────────────────┬───────────────────────────┐
//! │ length: u32 (BE) │ version: u8 │ checksum: u64 (BE) │ payload: `length` bytes   │
//! └──────────────────┴─────────────┴────────────────────┴───────────────────────────┘
//! ```
//!
//! The 13-byte header carries the payload length, the wire version
//! ([`WIRE_VERSION`]), and the FNV-1a 64 checksum of the **raw payload
//! bytes**. The payload is the compact JSON of an externally-tagged
//! message ([`Request`] from clients, [`Response`] from the daemon):
//!
//! ```json
//! {"SelectBatch":{"features":[...]}}
//! ```
//!
//! Wire/1 wrapped every message in the pretty-printed `intune_core::codec`
//! document envelope, whose decode *re-serialized* the payload to verify
//! the checksum — four JSON passes per frame per direction. Wire/2
//! checksums the bytes as sent, so each direction costs one serialization
//! or one parse, nothing else.
//!
//! Every request gets exactly one response on the same connection, in
//! order. Receivers hold a persistent [`FrameReader`] per connection:
//! payloads land in its reusable buffer (decoded by borrowing, never
//! re-allocated per frame), and the buffer grows **incrementally** in
//! [`READ_CHUNK_BYTES`] steps as body bytes actually arrive — a peer
//! announcing a huge length allocates nothing beyond one chunk until it
//! ships real data, and lengths above [`MAX_FRAME_BYTES`] are rejected
//! outright. Any transport, header, or payload failure is a typed
//! [`intune_core::Error::Wire`].

use intune_core::{codec, Error, FeatureVector, Result};
use intune_obs::LatencySummary;
use intune_serve::{Selection, ServeStats};
use serde::{Deserialize, Serialize};
use std::io::{Read, Write};

/// Wire protocol version byte (`intune-wire/2`).
pub const WIRE_VERSION: u8 = 2;
/// Upper bound on a frame payload; larger announced lengths are rejected
/// before any allocation happens.
pub const MAX_FRAME_BYTES: usize = 64 << 20;
/// Frame header size: length (4) + version (1) + checksum (8).
pub const HEADER_BYTES: usize = 13;
/// Growth step of a [`FrameReader`]'s buffer while a payload arrives.
/// Memory committed to a connection is bounded by the bytes its peer has
/// actually sent, rounded up to this chunk — not by the announced length.
pub const READ_CHUNK_BYTES: usize = 64 << 10;

/// Client → daemon messages.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Opens a session and binds the connection to one of the daemon's
    /// tenants; the daemon answers [`Response::HelloAck`] describing the
    /// model that tenant serves. An unknown `benchmark` gets a typed
    /// [`Response::Error`] naming the registered tenants — the
    /// connection survives and may `Hello` again.
    Hello {
        /// Client self-identification (free-form, for server logs).
        client: String,
        /// `Benchmark::name()` of the tenant to bind to. The empty
        /// string binds a single-tenant daemon's sole tenant (the wire/2
        /// behavior before multi-tenancy) and is refused with a typed
        /// error when several tenants are registered.
        benchmark: String,
    },
    /// Selects a landmark for each fully-extracted feature vector.
    SelectBatch {
        /// The vectors, shaped for the served artifact's feature
        /// declaration (`extract_all`-complete).
        features: Vec<FeatureVector>,
        /// Optional trace context for end-to-end request tracing. The
        /// field is **elided when absent** (`None` encodes nothing),
        /// so untraced traffic is byte-identical to a wire/2 peer that
        /// predates tracing — and the [`decode_select_batch`] fast
        /// path, which only understands the canonical untraced shape,
        /// keeps serving it. Traced frames take the generic route.
        trace: Option<intune_core::TraceContext>,
    },
    /// [`Request::SelectBatch`] with opaque raw-input payloads riding
    /// along for the daemon's request journal (continuous learning
    /// retrains on what production actually processed, and feature
    /// vectors alone cannot be re-measured). Payloads are parallel to
    /// `features` (`null` = no payload for that vector), produced by
    /// `Benchmark::encode_input` client-side, and never influence the
    /// selection. A daemon without a journal serves this identically to
    /// `SelectBatch`.
    SelectBatchTraced {
        /// The vectors, as in [`Request::SelectBatch`].
        features: Vec<FeatureVector>,
        /// One opaque input payload per vector (`null` allowed).
        payloads: Vec<serde_json::Value>,
        /// Optional trace context, as in [`Request::SelectBatch`]
        /// (elided when `None`; journaled requests carry the trace id
        /// into the journal so retraining can cite its inputs).
        trace: Option<intune_core::TraceContext>,
    },
    /// Requests the daemon's counter snapshot.
    Stats,
    /// Requests the daemon-wide observability snapshot: per-tenant
    /// request counters and latency percentiles, event-loop stage-timing
    /// histograms, and event-log counters. Unlike [`Request::Stats`]
    /// this is **not** routed through the connection's tenant binding —
    /// the reply covers every tenant, so a monitoring connection need
    /// not `Hello` first. The same snapshot is what `--metrics` renders
    /// as Prometheus text.
    Metrics,
    /// Stages a candidate model artifact (a full
    /// `intune-model-artifact` document, any readable schema version) as
    /// the **shadow**: mirrored on every subsequent `SelectBatch`, never
    /// answering clients, until promoted or rejected.
    LoadArtifact {
        /// The artifact document text (what `ModelArtifact::save` writes).
        document: String,
    },
    /// Promotes the staged shadow to primary, gated on its mirrored
    /// agreement record.
    Promote,
    /// Panics the handling connection thread — fault injection for
    /// resilience tests (the panic-containment invariant: one poisoned
    /// request costs one connection, never the daemon). Refused with a
    /// typed [`Response::Error`] unless the daemon opted in via
    /// `DaemonOptions::inject_faults`.
    InjectPanic,
    /// Asks the daemon to stop accepting connections and exit.
    Shutdown,
}

/// Daemon → client messages.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// Session opened.
    HelloAck {
        /// Server self-identification.
        server: String,
        /// `Benchmark::name()` of the served model.
        benchmark: String,
        /// Rollout revision of the primary artifact.
        revision: u64,
        /// Artifact schema version the daemon writes
        /// (`intune_serve::ARTIFACT_VERSION`).
        artifact_version: u32,
        /// Number of landmarks in the primary model.
        landmarks: u64,
    },
    /// Answers to a `SelectBatch`, in request order.
    Selections {
        /// One selection per requested vector.
        selections: Vec<Selection>,
    },
    /// Counter snapshot.
    StatsReply {
        /// The daemon's counters.
        stats: DaemonStats,
    },
    /// Observability snapshot, answering [`Request::Metrics`].
    MetricsReply {
        /// The daemon-wide metrics snapshot.
        metrics: MetricsSnapshot,
    },
    /// Shadow staged.
    Loaded {
        /// Benchmark the staged artifact was trained for.
        benchmark: String,
        /// Rollout revision of the staged artifact.
        revision: u64,
    },
    /// Shadow promoted to primary.
    Promoted {
        /// Rollout revision now serving.
        revision: u64,
    },
    /// Shutdown acknowledged; the daemon exits after this frame.
    ShuttingDown,
    /// The request failed; the connection stays usable.
    Error {
        /// Human-readable failure detail.
        detail: String,
    },
}

/// Mirrored-agreement record for one primary landmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LandmarkAgreement {
    /// Landmark index in the primary model.
    pub landmark: u64,
    /// Mirrored selections the primary routed to this landmark.
    pub mirrored: u64,
    /// How many of those the shadow agreed on.
    pub agreed: u64,
}

/// Counters of a staged shadow model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShadowStats {
    /// Rollout revision of the staged artifact.
    pub revision: u64,
    /// Selections mirrored to the shadow so far (one per vector; a
    /// `SelectBatch` frame of B vectors mirrors B selections).
    pub mirrored: u64,
    /// Mirrored selections where the shadow chose the primary's landmark.
    pub agreed: u64,
    /// `agreed / mirrored` (0 when nothing mirrored yet).
    pub agreement_rate: f64,
    /// Per-primary-landmark agreement breakdown.
    pub per_landmark: Vec<LandmarkAgreement>,
    /// The shadow's own drift-monitor counters over the mirrored stream.
    pub drift: ServeStats,
}

/// Counter snapshot of one tenant, plus the daemon-wide counters
/// (`connections`, `tenants`). `Stats` is routed per tenant: the reply
/// describes the tenant the requesting connection is bound to.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DaemonStats {
    /// `Benchmark::name()` of the served model.
    pub benchmark: String,
    /// Rollout revision of the primary artifact.
    pub revision: u64,
    /// Primary serving counters (requests, probes, OOD, fallbacks).
    pub primary: ServeStats,
    /// The staged shadow's counters, if one is staged.
    pub shadow: Option<ShadowStats>,
    /// Shadows auto-rejected by the drift monitor since startup.
    pub shadow_rejections: u64,
    /// Shadows promoted to primary since startup.
    pub promotions: u64,
    /// Connections accepted since startup.
    pub connections: u64,
    /// Selections durably appended to this tenant's request journal
    /// since startup (0 when the tenant runs without a journal).
    pub journaled: u64,
    /// Request frames captured into this tenant's wire recording since
    /// startup (0 when the tenant runs without a recorder).
    pub recorded: u64,
    /// Request frames the wire recorder **dropped** (encode failure or a
    /// torn sink) since startup — nonzero means the recording is not a
    /// faithful transcript (0 without a recorder).
    pub recorded_dropped: u64,
    /// Benchmarks registered in the daemon's artifact registry.
    pub tenants: u64,
    /// This tenant's end-to-end request latency (full frame service
    /// time, decode through reply queueing), as percentiles over the
    /// daemon's log-bucketed histogram.
    pub latency: LatencySummary,
}

/// Event-loop stage timings: where a request frame's wall time goes.
/// Each stage is a [`LatencySummary`] over the daemon-wide histogram for
/// that stage (stages are per-loop, not per-tenant — the loop is shared).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct StageTimings {
    /// Frame decode: checksum + payload parse into a [`Request`].
    pub decode: LatencySummary,
    /// Request handling: selection (or lifecycle work) producing the
    /// reply message.
    pub select: LatencySummary,
    /// Reply encode: message serialization + frame assembly.
    pub encode: LatencySummary,
    /// Queued write: draining the connection's outbox to the socket.
    pub queued_write: LatencySummary,
}

/// A latency exemplar: one concrete traced request standing in for an
/// aggregate — the link from a histogram reading to a trace an operator
/// can pull up with `intune_trace --trace-id`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatencyExemplar {
    /// Trace id of the sampled request.
    pub trace_id: u64,
    /// Its latency reading, nanoseconds (bucket upper bound clamped to
    /// the histogram max).
    pub value_ns: u64,
}

/// One tenant's slice of the [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantMetrics {
    /// `Benchmark::name()` — the tenant key.
    pub benchmark: String,
    /// Rollout revision of the tenant's current primary.
    pub revision: u64,
    /// Selection request frames served for this tenant.
    pub requests: u64,
    /// Individual selections answered (a batch of B counts B).
    pub selections: u64,
    /// End-to-end request latency percentiles for this tenant.
    pub latency: LatencySummary,
    /// Shadows promoted to primary since startup.
    pub promotions: u64,
    /// Shadows auto-rejected by the drift monitor since startup.
    pub shadow_rejections: u64,
    /// The slowest sampled request since startup, when tracing sampled
    /// one (elided when `None`, so pre-tracing peers interop).
    pub exemplar: Option<LatencyExemplar>,
}

/// The daemon-wide observability snapshot: what [`Request::Metrics`]
/// returns and what the `--metrics` HTTP listener renders as Prometheus
/// text.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Event-loop stage timings, daemon-wide.
    pub stages: StageTimings,
    /// Per-tenant counters and latency, in registration order.
    pub tenants: Vec<TenantMetrics>,
    /// Connections accepted since startup (wire connections; metrics
    /// scrapes are not counted).
    pub connections: u64,
    /// Lifecycle events durably appended to the event log (0 without
    /// `--events`).
    pub events_appended: u64,
    /// Lifecycle events dropped on encode/write failure (0 without
    /// `--events`).
    pub events_dropped: u64,
}

/// Encodes a message into its frame payload (compact JSON).
pub fn encode_message<T: Serialize>(message: &T) -> String {
    serde_json::to_string(message).expect("message serialization is infallible")
}

/// Encodes a `SelectBatch` frame payload directly from a borrowed vector
/// slice — byte-identical to
/// `encode_message(&Request::SelectBatch { features: features.to_vec() })`
/// without cloning the batch first (the client's hot path; a unit test
/// pins the equivalence against the derive's external tagging).
pub fn encode_select_batch(features: &[FeatureVector]) -> String {
    let payload = serde_json::Value::Object(vec![(
        "SelectBatch".to_string(),
        serde_json::Value::Object(vec![(
            "features".to_string(),
            serde::Serialize::to_value(&features),
        )]),
    )]);
    serde_json::to_string(&payload).expect("value printing is infallible")
}

/// [`encode_select_batch`] carrying a trace context — the sampled-path
/// variant, still borrowing the vector slice. Byte-identical to the
/// derive encoding of `Request::SelectBatch { features, trace: Some(..) }`
/// (pinned by a unit test). The daemon's fast-path scanner does not
/// recognize this shape and falls back to the generic parser: sampled
/// requests pay the generic decode, untraced traffic never does.
pub fn encode_select_batch_with_trace(
    features: &[FeatureVector],
    trace: &intune_core::TraceContext,
) -> String {
    let payload = serde_json::Value::Object(vec![(
        "SelectBatch".to_string(),
        serde_json::Value::Object(vec![
            (
                "features".to_string(),
                serde::Serialize::to_value(&features),
            ),
            ("trace".to_string(), serde::Serialize::to_value(trace)),
        ]),
    )]);
    serde_json::to_string(&payload).expect("value printing is infallible")
}

/// Decodes a frame payload into a message.
///
/// # Errors
/// Returns [`Error::Wire`] on a payload-shape failure.
pub fn decode_message<T: Deserialize>(text: &str) -> Result<T> {
    serde_json::from_str(text).map_err(|e| Error::wire(format!("bad frame payload: {e}")))
}

/// Decodes a `SelectBatch` payload on the serving hot path without
/// materializing the generic `serde_json::Value` tree the derive-based
/// route builds (one tree node plus one conversion per slot — the
/// dominant per-request cost at high connection counts).
///
/// The scanner accepts exactly the canonical compact encoding that
/// [`encode_select_batch`] and the derive emit — field order, no
/// whitespace, finite floats. `None` means "not that shape" (a different
/// message, whitespace, a non-finite float spelled as a string, a
/// hand-written client): callers **must** fall back to
/// [`decode_message`], so coverage here is an optimization, never a
/// compatibility statement. Numbers go through the same `str::parse`
/// the generic parser uses, so both routes yield bit-identical vectors
/// (a unit test pins this).
pub fn decode_select_batch(payload: &str) -> Option<Vec<FeatureVector>> {
    let mut scan = Scan {
        bytes: payload.as_bytes(),
        at: 0,
    };
    scan.tag(b"{\"SelectBatch\":{\"features\":[")?;
    let mut features = Vec::new();
    if !scan.eat(b']') {
        loop {
            features.push(scan.vector()?);
            if !scan.eat(b',') {
                break;
            }
        }
        scan.tag(b"]")?;
    }
    scan.tag(b"}}")?;
    if scan.at == scan.bytes.len() {
        Some(features)
    } else {
        None
    }
}

/// Byte cursor for [`decode_select_batch`]'s strict scan.
struct Scan<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl Scan<'_> {
    fn tag(&mut self, expected: &[u8]) -> Option<()> {
        if self.bytes[self.at..].starts_with(expected) {
            self.at += expected.len();
            Some(())
        } else {
            None
        }
    }

    fn eat(&mut self, byte: u8) -> bool {
        if self.bytes.get(self.at) == Some(&byte) {
            self.at += 1;
            true
        } else {
            false
        }
    }

    fn number(&mut self) -> Option<f64> {
        let start = self.at;
        while let Some(&b) = self.bytes.get(self.at) {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.at += 1;
            } else {
                break;
            }
        }
        // Guaranteed ASCII by the byte class above.
        std::str::from_utf8(&self.bytes[start..self.at])
            .ok()?
            .parse::<f64>()
            .ok()
    }

    fn integer(&mut self) -> Option<usize> {
        let start = self.at;
        while self.bytes.get(self.at).is_some_and(|b| b.is_ascii_digit()) {
            self.at += 1;
        }
        if self.at == start {
            return None;
        }
        std::str::from_utf8(&self.bytes[start..self.at])
            .ok()?
            .parse::<usize>()
            .ok()
    }

    fn vector(&mut self) -> Option<FeatureVector> {
        self.tag(b"{\"slots\":[")?;
        let mut slots = Vec::new();
        if !self.eat(b']') {
            loop {
                if self.tag(b"null").is_some() {
                    slots.push(None);
                } else {
                    self.tag(b"{\"value\":")?;
                    let value = self.number()?;
                    self.tag(b",\"cost\":")?;
                    let cost = self.number()?;
                    self.tag(b"}")?;
                    slots.push(Some(intune_core::FeatureSample { value, cost }));
                }
                if !self.eat(b',') {
                    break;
                }
            }
            self.tag(b"]")?;
        }
        self.tag(b",\"offsets\":[")?;
        let mut offsets = Vec::new();
        if !self.eat(b']') {
            loop {
                offsets.push(self.integer()?);
                if !self.eat(b',') {
                    break;
                }
            }
            self.tag(b"]")?;
        }
        self.tag(b"}")?;
        Some(FeatureVector::from_wire_parts(slots, offsets))
    }
}

/// Assembles one frame (header + payload) as a single buffer, so writers
/// hand the transport one contiguous write instead of a header syscall
/// followed by a body syscall.
///
/// # Errors
/// Returns [`Error::Wire`] for an oversized payload.
pub fn encode_frame(payload: &str) -> Result<Vec<u8>> {
    let bytes = payload.as_bytes();
    if bytes.len() > MAX_FRAME_BYTES {
        return Err(Error::wire(format!(
            "frame payload of {} bytes exceeds the {MAX_FRAME_BYTES}-byte cap",
            bytes.len()
        )));
    }
    let mut frame = Vec::with_capacity(HEADER_BYTES + bytes.len());
    frame.extend_from_slice(&(bytes.len() as u32).to_be_bytes());
    frame.push(WIRE_VERSION);
    frame.extend_from_slice(&codec::fnv1a64(bytes).to_be_bytes());
    frame.extend_from_slice(bytes);
    Ok(frame)
}

/// Writes one frame (one buffered write + flush).
///
/// # Errors
/// Returns [`Error::Wire`] on transport failure or an oversized payload.
pub fn write_frame<W: Write>(w: &mut W, payload: &str) -> Result<()> {
    let frame = encode_frame(payload)?;
    w.write_all(&frame)
        .and_then(|()| w.flush())
        .map_err(|e| Error::wire(format!("cannot write frame: {e}")))
}

/// Writes a message as one frame.
///
/// # Errors
/// Returns [`Error::Wire`] on transport failure.
pub fn send<W: Write, T: Serialize>(w: &mut W, message: &T) -> Result<()> {
    write_frame(w, &encode_message(message))
}

/// How one nonblocking [`FrameReader::fill`] call ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fill {
    /// At least one byte was buffered.
    Bytes(usize),
    /// The transport has no bytes available right now
    /// (`ErrorKind::WouldBlock`); try again after the next readiness
    /// event.
    WouldBlock,
    /// The peer closed the stream. Whether that is a clean end or a
    /// truncation depends on [`FrameReader::pending_bytes`].
    Closed,
}

/// Floor of one [`FrameReader::fill`] read when no frame header is
/// buffered yet: large enough to swallow a typical request (header +
/// small batch) in one syscall and to pick up pipelined frames, small
/// enough that an idle connection pins only this much.
const READ_FLOOR_BYTES: usize = 4 << 10;

/// A per-connection frame receiver owning a reusable payload buffer.
///
/// The buffer persists across frames (no per-frame allocation once it
/// has grown to the connection's working size) and decoded payloads are
/// borrowed straight out of it. Parsing is **incremental**: bytes arrive
/// via [`FrameReader::fill`] (blocking or nonblocking transports alike)
/// and complete frames are taken off the front with
/// [`FrameReader::pop_frame`] — the shape a readiness-driven event loop
/// needs, and what the blocking [`FrameReader::read_frame`] is built on.
/// While a payload arrives the buffer grows in [`READ_CHUNK_BYTES`]
/// steps, so memory tracks bytes *received*, not bytes *announced* — the
/// defense against a peer declaring a 64 MiB frame and then trickling or
/// abandoning it.
#[derive(Debug, Default)]
pub struct FrameReader {
    buf: Vec<u8>,
    /// Cursor past the frames already popped; bytes at `start..` are the
    /// unconsumed tail. Reset to 0 by compaction at the top of every
    /// `fill`/`pop_frame`, so a popped payload stays borrowable until
    /// the next call.
    start: usize,
}

impl FrameReader {
    /// Creates a reader with an empty buffer.
    pub fn new() -> Self {
        FrameReader::default()
    }

    /// Current capacity of the payload buffer — what this connection
    /// durably pins in memory between frames.
    pub fn buffer_capacity(&self) -> usize {
        self.buf.capacity()
    }

    /// Bytes buffered but not yet consumed as frames. Nonzero at
    /// end-of-stream means the peer died mid-frame.
    pub fn pending_bytes(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Moves the unconsumed tail to the front so the buffer never grows
    /// by the bytes of already-popped frames. The tail is empty after a
    /// request/response exchange and tiny (one partial frame) under
    /// pipelining, so this is a cheap or no-op memmove.
    fn compact(&mut self) {
        if self.start == self.buf.len() {
            self.buf.clear();
        } else if self.start > 0 {
            self.buf.drain(..self.start);
        }
        self.start = 0;
    }

    /// Validates and reads the buffered header, if complete: announced
    /// payload length.
    ///
    /// # Errors
    /// [`Error::Wire`] for a foreign wire version or an announced length
    /// beyond [`MAX_FRAME_BYTES`] — both detectable (and fatal for the
    /// connection) before the payload arrives.
    fn header(&self) -> Result<Option<usize>> {
        if self.pending_bytes() < HEADER_BYTES {
            return Ok(None);
        }
        let h = &self.buf[self.start..self.start + HEADER_BYTES];
        if h[4] != WIRE_VERSION {
            return Err(Error::wire(format!(
                "peer speaks wire version {}, this daemon speaks {WIRE_VERSION}",
                h[4]
            )));
        }
        let len = u32::from_be_bytes(h[..4].try_into().expect("4 header bytes")) as usize;
        if len > MAX_FRAME_BYTES {
            return Err(Error::wire(format!(
                "peer announced a {len}-byte frame, cap is {MAX_FRAME_BYTES}"
            )));
        }
        Ok(Some(len))
    }

    /// Whether a complete frame is buffered (validating the header on
    /// the way).
    ///
    /// # Errors
    /// Same as [`FrameReader::pop_frame`]'s header failures.
    fn frame_buffered(&self) -> Result<bool> {
        Ok(match self.header()? {
            None => false,
            Some(len) => self.pending_bytes() >= HEADER_BYTES + len,
        })
    }

    /// Takes one complete frame off the buffer, returning its payload
    /// borrowed from the internal buffer — or `Ok(None)` when no
    /// complete frame is buffered yet (call [`FrameReader::fill`] and
    /// retry). Callers drain frames in a loop: several pipelined frames
    /// buffered by one `fill` pop without further transport reads.
    ///
    /// # Errors
    /// Returns [`Error::Wire`] on a version or checksum mismatch, an
    /// oversized announced length, or a non-UTF-8 payload. The reader is
    /// left unusable mid-frame — framing state is untrusted after any
    /// error, and the connection should be dropped.
    pub fn pop_frame(&mut self) -> Result<Option<&str>> {
        self.compact();
        let Some(len) = self.header()? else {
            return Ok(None);
        };
        if self.pending_bytes() < HEADER_BYTES + len {
            return Ok(None);
        }
        let expected = u64::from_be_bytes(
            self.buf[5..HEADER_BYTES]
                .try_into()
                .expect("8 header bytes"),
        );
        let payload = &self.buf[HEADER_BYTES..HEADER_BYTES + len];
        if codec::fnv1a64(payload) != expected {
            return Err(Error::wire("frame checksum mismatch"));
        }
        self.start = HEADER_BYTES + len;
        std::str::from_utf8(payload)
            .map(Some)
            .map_err(|_| Error::wire("frame payload is not valid UTF-8"))
    }

    /// Reads once from `r` into the buffer. Works for blocking and
    /// nonblocking transports: `WouldBlock` is an outcome, not an error,
    /// and `Interrupted` is retried. Growth is incremental and capped —
    /// with a frame in flight the buffer extends toward that frame's
    /// end, at most one [`READ_CHUNK_BYTES`] boundary at a time;
    /// otherwise one [`READ_FLOOR_BYTES`] step.
    ///
    /// # Errors
    /// Returns [`Error::Wire`] for a buffered foreign version or
    /// oversized announcement (refused before more bytes are committed)
    /// or a transport failure.
    pub fn fill<R: Read>(&mut self, r: &mut R) -> Result<Fill> {
        self.compact();
        let end = self.buf.len();
        let target = match self.header()? {
            Some(len) if HEADER_BYTES + len > end => {
                // Mid-frame: grow toward the frame end, chunk-capped so
                // commitment tracks received bytes.
                (HEADER_BYTES + len).min((end / READ_CHUNK_BYTES + 1) * READ_CHUNK_BYTES)
            }
            // No (complete) header yet, or a whole frame already
            // buffered and unpopped: read a floor-sized step.
            _ => end + READ_FLOOR_BYTES,
        };
        self.buf.resize(target, 0);
        loop {
            match r.read(&mut self.buf[end..target]) {
                Ok(0) => {
                    self.buf.truncate(end);
                    return Ok(Fill::Closed);
                }
                Ok(n) => {
                    self.buf.truncate(end + n);
                    return Ok(Fill::Bytes(n));
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    self.buf.truncate(end);
                    return Ok(Fill::WouldBlock);
                }
                Err(e) => {
                    self.buf.truncate(end);
                    return Err(Error::wire(format!("cannot read frame: {e}")));
                }
            }
        }
    }

    /// Reads one frame, returning its payload borrowed from the internal
    /// buffer. `Ok(None)` is a clean end-of-stream (the peer closed
    /// between frames).
    ///
    /// # Errors
    /// Returns [`Error::Wire`] on transport failure, a truncated header
    /// or payload, a version or checksum mismatch, an oversized announced
    /// length, or a non-UTF-8 payload.
    pub fn read_frame<'a, R: Read>(&'a mut self, r: &mut R) -> Result<Option<&'a str>> {
        while !self.frame_buffered()? {
            match self.fill(r)? {
                Fill::Bytes(_) => {}
                Fill::WouldBlock => {
                    // A blocking transport only lands here via a read
                    // timeout — a transport failure to this blocking API.
                    return Err(Error::wire("cannot read frame: transport would block"));
                }
                Fill::Closed => {
                    return match self.pending_bytes() {
                        0 => Ok(None),
                        n if n < HEADER_BYTES => Err(Error::wire("connection closed mid-header")),
                        _ => Err(Error::wire("connection closed mid-frame")),
                    };
                }
            }
        }
        self.pop_frame()
    }

    /// Reads one message; `Ok(None)` is a clean end-of-stream.
    ///
    /// # Errors
    /// Returns [`Error::Wire`] on transport, header, or payload failure.
    pub fn recv<R: Read, T: Deserialize>(&mut self, r: &mut R) -> Result<Option<T>> {
        match self.read_frame(r)? {
            None => Ok(None),
            Some(payload) => decode_message(payload).map(Some),
        }
    }
}

/// One-shot [`FrameReader::recv`] for callers without a persistent
/// connection (tests, single-frame probes). Hot paths should hold a
/// `FrameReader` to reuse its buffer.
///
/// # Errors
/// Returns [`Error::Wire`] on transport, header, or payload failure.
pub fn recv<R: Read, T: Deserialize>(r: &mut R) -> Result<Option<T>> {
    // Exact reads, never past this frame's end: the stream may carry
    // further frames belonging to a later call, and this reader's
    // buffer dies with it. The header is read byte-exactly; once it is
    // buffered, `fill` bounds itself to the announced frame end.
    let mut header = [0u8; HEADER_BYTES];
    let mut filled = 0;
    while filled < header.len() {
        match r.read(&mut header[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => return Err(Error::wire("connection closed mid-header")),
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(Error::wire(format!("cannot read frame: {e}"))),
        }
    }
    let mut reader = FrameReader::new();
    reader.buf.extend_from_slice(&header);
    let len = reader.header()?.unwrap_or(0);
    while reader.pending_bytes() < HEADER_BYTES + len {
        match reader.fill(r)? {
            Fill::Bytes(_) => {}
            Fill::WouldBlock => {
                return Err(Error::wire("cannot read frame: transport would block"))
            }
            Fill::Closed => return Err(Error::wire("connection closed mid-frame")),
        }
    }
    match reader.pop_frame()? {
        Some(payload) => decode_message(payload).map(Some),
        None => Err(Error::wire("connection closed mid-frame")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use intune_core::{FeatureDef, FeatureId, FeatureSample};

    fn vector() -> FeatureVector {
        let defs = [FeatureDef::new("a", 2), FeatureDef::new("b", 1)];
        let mut fv = FeatureVector::empty(&defs);
        for (p, def) in defs.iter().enumerate() {
            for level in 0..def.levels {
                fv.insert(
                    FeatureId { property: p, level },
                    FeatureSample::new(0.25 + p as f64, 1.5 * (level + 1) as f64),
                )
                .unwrap();
            }
        }
        fv
    }

    #[test]
    fn requests_round_trip_through_frames() {
        let requests = vec![
            Request::Hello {
                client: "test".into(),
                benchmark: "sort2".into(),
            },
            Request::SelectBatch {
                features: vec![vector(), vector()],
                trace: None,
            },
            Request::SelectBatch {
                features: vec![vector()],
                trace: Some(intune_core::TraceContext {
                    trace_id: 0xfeed_face,
                    parent_span: 17,
                    sampled: true,
                }),
            },
            Request::SelectBatchTraced {
                features: vec![vector(), vector()],
                payloads: vec![
                    serde_json::Value::Array(vec![serde_json::Value::Float(0.1 + 0.2)]),
                    serde_json::Value::Null,
                ],
                trace: None,
            },
            Request::SelectBatchTraced {
                features: vec![vector()],
                payloads: vec![serde_json::Value::Bool(true)],
                trace: Some(intune_core::TraceContext {
                    trace_id: 1,
                    parent_span: 0,
                    sampled: false,
                }),
            },
            Request::Stats,
            Request::LoadArtifact {
                document: "{\"not\": \"checked here\"}".into(),
            },
            Request::Promote,
            Request::InjectPanic,
            Request::Shutdown,
        ];
        let mut buf = Vec::new();
        for r in &requests {
            send(&mut buf, r).unwrap();
        }
        let mut cursor = std::io::Cursor::new(buf);
        let mut reader = FrameReader::new();
        for expect in &requests {
            let got: Request = reader.recv(&mut cursor).unwrap().expect("a frame");
            assert_eq!(&got, expect);
        }
        assert_eq!(
            reader.recv::<_, Request>(&mut cursor).unwrap(),
            None,
            "clean EOF"
        );
    }

    #[test]
    fn responses_round_trip_including_float_bit_patterns() {
        let responses = vec![
            Response::HelloAck {
                server: "intune-daemon".into(),
                benchmark: "sort2".into(),
                revision: 3,
                artifact_version: 2,
                landmarks: 8,
            },
            Response::Selections {
                selections: vec![Selection {
                    landmark: 5,
                    extraction_cost: 0.1 + 0.2, // a classic non-exact float
                    out_of_distribution: true,
                    fell_back: false,
                }],
            },
            Response::ShuttingDown,
            Response::Error {
                detail: "nope".into(),
            },
        ];
        let mut buf = Vec::new();
        for r in &responses {
            send(&mut buf, r).unwrap();
        }
        let mut cursor = std::io::Cursor::new(buf);
        for expect in &responses {
            let got: Response = recv(&mut cursor).unwrap().expect("a frame");
            assert_eq!(&got, expect);
            if let (
                Response::Selections { selections: a },
                Response::Selections { selections: b },
            ) = (&got, expect)
            {
                assert_eq!(
                    a[0].extraction_cost.to_bits(),
                    b[0].extraction_cost.to_bits(),
                    "floats cross the wire bit-exactly"
                );
            }
        }
    }

    #[test]
    fn borrowed_select_batch_encoding_matches_the_derived_one() {
        let features = vec![vector(), vector()];
        assert_eq!(
            encode_select_batch(&features),
            encode_message(&Request::SelectBatch {
                features: features.clone(),
                trace: None,
            }),
            "hand-tagged encoding must track the derive's external tagging \
             (an absent trace context encodes nothing)"
        );
        let trace = intune_core::TraceContext {
            trace_id: 0xabcd,
            parent_span: 3,
            sampled: true,
        };
        assert_eq!(
            encode_select_batch_with_trace(&features, &trace),
            encode_message(&Request::SelectBatch {
                features,
                trace: Some(trace),
            }),
            "traced hand-tagged encoding must track the derive too"
        );
    }

    #[test]
    fn fast_select_batch_decode_matches_the_generic_parser() {
        let defs = [FeatureDef::new("a", 2), FeatureDef::new("b", 1)];
        let mut tricky = FeatureVector::empty(&defs);
        // Awkward bit patterns plus a hole (slot left `None`).
        tricky
            .insert(
                FeatureId {
                    property: 0,
                    level: 0,
                },
                FeatureSample::new(-0.0, f64::MIN_POSITIVE / 2.0),
            )
            .unwrap();
        tricky
            .insert(
                FeatureId {
                    property: 1,
                    level: 0,
                },
                FeatureSample::new(0.1 + 0.2, f64::MAX),
            )
            .unwrap();
        for features in [
            vec![],
            vec![FeatureVector::empty(&[])],
            vec![vector(), tricky, vector()],
        ] {
            let payload = encode_select_batch(&features);
            let fast = decode_select_batch(&payload).expect("canonical payload");
            let Request::SelectBatch {
                features: generic,
                trace: None,
            } = decode_message(&payload).unwrap()
            else {
                panic!("generic parse must see an untraced SelectBatch")
            };
            assert_eq!(fast, generic);
            // `PartialEq` treats -0.0 == 0.0; pin the bits as well.
            for (f, g) in fast.iter().zip(&generic) {
                assert!(f
                    .dense()
                    .iter()
                    .zip(g.dense().iter())
                    .all(|(x, y)| x.to_bits() == y.to_bits()));
            }
        }
    }

    #[test]
    fn fast_select_batch_decode_refuses_non_canonical_payloads() {
        let canonical = encode_select_batch(&[vector()]);
        let traced =
            encode_select_batch_with_trace(&[vector()], &intune_core::TraceContext::root(7));
        for payload in [
            "\"Stats\"".to_string(),
            "{\"Promote\":null}".to_string(),
            traced,                  // trace field: sampled requests take the generic route
            format!(" {canonical}"), // leading whitespace
            format!("{canonical} "), // trailing bytes
            canonical.replace(":[", ": ["), // inner whitespace
            canonical.replace("\"slots\"", "\"stols\""), // foreign key
            canonical.replace("1.5", "\"NaN\""), // stringified float
            canonical[..canonical.len() - 1].to_string(), // truncated
        ] {
            assert!(
                decode_select_batch(&payload).is_none(),
                "fast path must refuse {payload:?} and defer to the parser"
            );
        }
        // ... and the generic route still understands the whitespace one.
        let spaced = canonical.replace(":[", ": [");
        assert!(decode_message::<Request>(&spaced).is_ok());
    }

    #[test]
    fn corrupted_payloads_fail_the_checksum() {
        let mut buf = Vec::new();
        send(&mut buf, &Request::Stats).unwrap();
        // Flip a payload byte without touching the header checksum.
        let at = buf.len() - 2;
        buf[at] ^= 0x01;
        let mut cursor = std::io::Cursor::new(buf);
        let err = recv::<_, Request>(&mut cursor).unwrap_err();
        assert!(err.to_string().contains("checksum"), "{err}");
        assert!(matches!(err, Error::Wire { .. }), "{err:?}");
    }

    #[test]
    fn wrong_wire_version_is_a_typed_error() {
        let mut buf = Vec::new();
        send(&mut buf, &Request::Stats).unwrap();
        buf[4] = 1; // wire/1 speaker
        let err = recv::<_, Request>(&mut std::io::Cursor::new(buf)).unwrap_err();
        assert!(err.to_string().contains("version"), "{err}");
    }

    #[test]
    fn truncated_and_oversized_frames_are_rejected() {
        let mut buf = Vec::new();
        send(&mut buf, &Request::Stats).unwrap();
        buf.truncate(buf.len() - 2);
        let mut cursor = std::io::Cursor::new(buf);
        let err = FrameReader::new().read_frame(&mut cursor).unwrap_err();
        assert!(err.to_string().contains("mid-frame"), "{err}");

        let mut huge = Vec::new();
        huge.extend_from_slice(&u32::MAX.to_be_bytes());
        huge.push(WIRE_VERSION);
        huge.extend_from_slice(&[0u8; 8]);
        let err = FrameReader::new()
            .read_frame(&mut std::io::Cursor::new(huge))
            .unwrap_err();
        assert!(err.to_string().contains("cap"), "{err}");

        // A partial header (slow-loris that died) is truncation, not
        // clean EOF.
        let err = FrameReader::new()
            .read_frame(&mut std::io::Cursor::new(vec![0u8, 0, 0, 9, WIRE_VERSION]))
            .unwrap_err();
        assert!(err.to_string().contains("mid-header"), "{err}");
    }

    #[test]
    fn huge_announced_length_does_not_preallocate() {
        // A peer announcing a cap-sized frame but shipping 10 bytes: the
        // reader must commit at most one growth chunk, not 64 MiB.
        let mut adversarial = Vec::new();
        adversarial.extend_from_slice(&(MAX_FRAME_BYTES as u32).to_be_bytes());
        adversarial.push(WIRE_VERSION);
        adversarial.extend_from_slice(&[0u8; 8]);
        adversarial.extend_from_slice(b"ten bytes.");
        let mut reader = FrameReader::new();
        let err = reader
            .read_frame(&mut std::io::Cursor::new(adversarial))
            .unwrap_err();
        assert!(err.to_string().contains("mid-frame"), "{err}");
        assert!(
            reader.buffer_capacity() <= READ_CHUNK_BYTES,
            "announced 64 MiB, received 10 bytes, but {} bytes committed",
            reader.buffer_capacity()
        );
    }

    #[test]
    fn reader_buffer_is_reused_across_frames() {
        let mut buf = Vec::new();
        let batch = Request::SelectBatch {
            features: vec![vector(); 16],
            trace: None,
        };
        send(&mut buf, &batch).unwrap();
        send(&mut buf, &batch).unwrap();
        let mut cursor = std::io::Cursor::new(buf);
        let mut reader = FrameReader::new();
        assert!(reader.recv::<_, Request>(&mut cursor).unwrap().is_some());
        let after_first = reader.buffer_capacity();
        assert!(reader.recv::<_, Request>(&mut cursor).unwrap().is_some());
        assert_eq!(
            reader.buffer_capacity(),
            after_first,
            "second frame reuses the first frame's buffer"
        );
    }

    /// Serves one byte per read, with a `WouldBlock` between every pair
    /// of bytes — the worst case a nonblocking transport can present.
    struct Dribble {
        data: Vec<u8>,
        at: usize,
        ready: bool,
    }

    impl Read for Dribble {
        fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
            if !self.ready {
                self.ready = true;
                return Err(std::io::ErrorKind::WouldBlock.into());
            }
            self.ready = false;
            if self.at == self.data.len() {
                return Ok(0);
            }
            out[0] = self.data[self.at];
            self.at += 1;
            Ok(1)
        }
    }

    #[test]
    fn fill_and_pop_reassemble_dribbled_nonblocking_frames() {
        let mut wire = Vec::new();
        send(&mut wire, &Request::Stats).unwrap();
        send(&mut wire, &Request::Promote).unwrap();
        let total = wire.len();
        let mut dribble = Dribble {
            data: wire,
            at: 0,
            ready: false,
        };
        let mut reader = FrameReader::new();
        let mut got = Vec::new();
        let mut blocked = 0;
        loop {
            while let Some(payload) = reader.pop_frame().unwrap() {
                got.push(decode_message::<Request>(payload).unwrap());
            }
            match reader.fill(&mut dribble).unwrap() {
                Fill::Bytes(n) => assert_eq!(n, 1, "dribble serves single bytes"),
                Fill::WouldBlock => blocked += 1,
                Fill::Closed => break,
            }
        }
        assert_eq!(got, vec![Request::Stats, Request::Promote]);
        assert_eq!(reader.pending_bytes(), 0, "clean EOF leaves nothing over");
        assert_eq!(blocked, total + 1, "every byte cost one WouldBlock");
    }

    #[test]
    fn one_fill_pops_several_pipelined_frames() {
        let mut wire = Vec::new();
        send(&mut wire, &Request::Stats).unwrap();
        send(&mut wire, &Request::Promote).unwrap();
        send(&mut wire, &Request::Shutdown).unwrap();
        assert!(wire.len() <= READ_FLOOR_BYTES, "fits one floor-sized read");
        let mut reader = FrameReader::new();
        let mut cursor = std::io::Cursor::new(wire);
        assert!(matches!(reader.fill(&mut cursor).unwrap(), Fill::Bytes(_)));
        let mut got = Vec::new();
        while let Some(payload) = reader.pop_frame().unwrap() {
            got.push(decode_message::<Request>(payload).unwrap());
        }
        assert_eq!(
            got,
            vec![Request::Stats, Request::Promote, Request::Shutdown],
            "pipelined frames pop without further transport reads"
        );
    }

    #[test]
    fn unknown_message_shapes_are_rejected() {
        let err = decode_message::<Request>("\"NotARealVariant\"").unwrap_err();
        assert!(matches!(err, Error::Wire { .. }), "{err:?}");

        let err = decode_message::<Request>("{ not json").unwrap_err();
        assert!(err.to_string().contains("payload"), "{err}");
    }
}
