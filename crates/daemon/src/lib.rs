//! # intune-daemon
//!
//! The long-running selection daemon: the deployment phase of the paper
//! as a network service.
//!
//! PR 3 drew the train/deploy boundary (a persisted, checksummed
//! [`intune_serve::ModelArtifact`]); this crate puts a server in front of
//! it. A [`Daemon`] loads an artifact, listens on TCP (plus a Unix-domain
//! socket on unix), and speaks **`intune-wire/2`** — a binary-header
//! framed protocol carrying one compact JSON message per frame, with the
//! payload checksum in the header so neither side re-serializes to
//! verify (see [`protocol`] and `crates/daemon/README.md` for the frame
//! layout). Clients ship fully-extracted feature vectors; the daemon
//! answers landmark selections computed by a benchmark-free
//! [`intune_serve::VectorService`] — bit-identical to in-process
//! selection, which `table1 --daemon` + CI prove end to end. The primary
//! service sits behind a lock-free pointer, so selection reads are
//! wait-free and a promotion (or a crashed handler) can never stall or
//! poison them.
//!
//! Model lifecycle over the wire:
//!
//! * `LoadArtifact` **hot-stages** a candidate artifact (any readable
//!   schema version — version-1 documents migrate on load) as the
//!   **shadow**;
//! * every `SelectBatch` is answered by the primary and **mirrored** to
//!   the shadow, building per-landmark agreement counters;
//! * `Promote` swaps the shadow in behind a [`ShadowPolicy`] gate
//!   (minimum mirrored traffic, minimum agreement, untripped drift);
//! * a shadow whose own drift monitor trips is **auto-rejected** — it
//!   never answers a client.
//!
//! ```no_run
//! use intune_daemon::{Daemon, DaemonClient, DaemonOptions, ListenConfig};
//! use intune_serve::ModelArtifact;
//!
//! let artifact = ModelArtifact::load(std::path::Path::new("sort2.model.json"))?;
//! let daemon = Daemon::bind(artifact, DaemonOptions::default(), &ListenConfig::default())?;
//! let addr = daemon.tcp_addr();
//! let handle = daemon.spawn();
//!
//! let client = DaemonClient::connect(&addr.to_string())?;
//! println!("serving {} at revision {}", client.info().benchmark, client.info().revision);
//! client.shutdown()?;
//! handle.join()?;
//! # intune_core::Result::Ok(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod protocol;
pub mod registry;
pub mod server;
pub mod shadow;

pub use client::{DaemonClient, ServerInfo};
pub use protocol::{
    DaemonStats, Fill, FrameReader, LandmarkAgreement, MetricsSnapshot, Request, Response,
    ShadowStats, StageTimings, TenantMetrics, MAX_FRAME_BYTES, WIRE_VERSION,
};
pub use registry::TenantSpec;
pub use server::{Daemon, DaemonHandle, DaemonOptions, ListenConfig, SERVER_NAME};
pub use shadow::ShadowPolicy;

#[cfg(test)]
mod tests {
    use super::*;
    use intune_core::{ConfigSpace, FeatureDef, FeatureId, FeatureSample, FeatureVector};
    use intune_learning::classifiers::Classifier;
    use intune_ml::{DecisionTree, TreeOptions, ZScore};
    use intune_serve::{ModelArtifact, ServeOptions};

    /// A small hand-built artifact (no training pipeline needed): a
    /// 2-landmark tree model over one 2-level property plus a 1-level
    /// property, routing feature `a@1 < 5` to landmark 0, else 1.
    fn artifact(revision: u64) -> ModelArtifact {
        let space = ConfigSpace::builder().switch("alg", 2).build();
        let defs = vec![FeatureDef::new("a", 2), FeatureDef::new("b", 1)];
        let rows: Vec<Vec<f64>> = (0..8)
            .map(|i| vec![i as f64, (i * 2) as f64, 1.0])
            .collect();
        let tree_rows: Vec<Vec<f64>> = (0..8).map(|i| vec![i as f64]).collect();
        let labels: Vec<usize> = (0..8).map(|i| usize::from(i >= 4)).collect();
        let landmarks: Vec<_> = (0..2)
            .map(|c| {
                let mut cfg = space.default_config();
                cfg.set(0, intune_core::ParamValue::Choice(c));
                cfg
            })
            .collect();
        ModelArtifact {
            benchmark: "daemon-test".to_string(),
            feature_defs: defs,
            normalizer: ZScore::fit(&rows),
            landmarks,
            classifier: Classifier::Tree {
                set: intune_core::FeatureSet::from_choices(vec![Some(1), None]),
                tree: DecisionTree::fit_plain(&tree_rows, &labels, 2, TreeOptions::default()),
            },
            centroids: vec![vec![0.0; 3], vec![1.0; 3]],
            dispersion: vec![2.0, 2.0],
            fallback: 0,
            accuracy_threshold: None,
            revision,
            trained_inputs: 8,
        }
    }

    /// A fully-extracted vector whose `a@1` value is `x`.
    fn vector(x: f64) -> FeatureVector {
        let defs = [FeatureDef::new("a", 2), FeatureDef::new("b", 1)];
        let mut fv = FeatureVector::empty(&defs);
        fv.insert(
            FeatureId {
                property: 0,
                level: 0,
            },
            FeatureSample::new(x / 2.0, 0.5),
        )
        .unwrap();
        fv.insert(
            FeatureId {
                property: 0,
                level: 1,
            },
            FeatureSample::new(x, 1.0),
        )
        .unwrap();
        fv.insert(
            FeatureId {
                property: 1,
                level: 0,
            },
            FeatureSample::new(1.0, 0.25),
        )
        .unwrap();
        fv
    }

    fn start(opts: DaemonOptions) -> (DaemonHandle, DaemonClient) {
        let daemon = Daemon::bind(artifact(1), opts, &ListenConfig::default()).unwrap();
        let addr = daemon.tcp_addr().to_string();
        let handle = daemon.spawn();
        let client = DaemonClient::connect(&addr).unwrap();
        (handle, client)
    }

    /// The test artifact under a different benchmark name — a second
    /// tenant for the same daemon.
    fn named_artifact(benchmark: &str, revision: u64) -> ModelArtifact {
        let mut a = artifact(revision);
        a.benchmark = benchmark.to_string();
        a
    }

    /// A two-tenant daemon (`alpha` + `beta`, same model shape).
    fn start_tenants(opts: DaemonOptions) -> (DaemonHandle, String) {
        let specs = vec![
            TenantSpec {
                artifact: named_artifact("alpha", 1),
                trace: None,
                recorder: None,
                trace_sample: None,
            },
            TenantSpec {
                artifact: named_artifact("beta", 1),
                trace: None,
                recorder: None,
                trace_sample: None,
            },
        ];
        let daemon = Daemon::bind_tenants(specs, opts, &ListenConfig::default()).unwrap();
        let addr = daemon.tcp_addr().to_string();
        (daemon.spawn(), addr)
    }

    #[test]
    fn unknown_benchmark_hello_is_refused_and_the_connection_survives() {
        let (handle, addr) = start_tenants(DaemonOptions::default());
        let mut raw = std::net::TcpStream::connect(&addr).unwrap();
        let mut reader = protocol::FrameReader::new();

        // A benchmark nobody serves: typed error naming the tenants.
        protocol::send(
            &mut raw,
            &Request::Hello {
                client: "test".to_string(),
                benchmark: "gamma".to_string(),
            },
        )
        .unwrap();
        let reply = reader.recv::<_, Response>(&mut raw).unwrap().unwrap();
        let Response::Error { detail } = reply else {
            panic!("expected a typed refusal, got {reply:?}");
        };
        assert!(detail.contains("unknown benchmark `gamma`"), "{detail}");
        assert!(
            detail.contains("alpha") && detail.contains("beta"),
            "{detail}"
        );

        // The wire/2 single-tenant shorthand (empty name) is ambiguous
        // here — also a typed error, also survivable.
        protocol::send(
            &mut raw,
            &Request::Hello {
                client: "test".to_string(),
                benchmark: String::new(),
            },
        )
        .unwrap();
        let reply = reader.recv::<_, Response>(&mut raw).unwrap().unwrap();
        let Response::Error { detail } = reply else {
            panic!("expected a typed refusal, got {reply:?}");
        };
        assert!(detail.contains("several"), "{detail}");

        // Third Hello on the *same connection* binds and serves.
        protocol::send(
            &mut raw,
            &Request::Hello {
                client: "test".to_string(),
                benchmark: "beta".to_string(),
            },
        )
        .unwrap();
        let reply = reader.recv::<_, Response>(&mut raw).unwrap().unwrap();
        assert!(
            matches!(reply, Response::HelloAck { ref benchmark, .. } if benchmark == "beta"),
            "{reply:?}"
        );
        protocol::send(
            &mut raw,
            &Request::SelectBatch {
                features: vec![vector(7.0)],
                trace: None,
            },
        )
        .unwrap();
        let reply = reader.recv::<_, Response>(&mut raw).unwrap().unwrap();
        assert!(
            matches!(reply, Response::Selections { ref selections } if selections.len() == 1),
            "{reply:?}"
        );

        // The typed client surfaces the same refusal as an `Err`.
        match DaemonClient::connect_to(&addr, "gamma") {
            Err(err) => assert!(err.to_string().contains("unknown benchmark"), "{err}"),
            Ok(_) => panic!("connecting to an unknown tenant must fail"),
        }

        DaemonClient::connect_to(&addr, "alpha")
            .unwrap()
            .shutdown()
            .unwrap();
        handle.join().unwrap();
    }

    #[test]
    fn tenants_stage_and_promote_independently() {
        let opts = DaemonOptions {
            shadow: ShadowPolicy {
                min_mirrored: 4,
                min_agreement: 0.99,
            },
            ..DaemonOptions::default()
        };
        let (handle, addr) = start_tenants(opts);
        let alpha = DaemonClient::connect_to(&addr, "alpha").unwrap();
        let beta = DaemonClient::connect_to(&addr, "beta").unwrap();
        assert_eq!(alpha.info().benchmark, "alpha");
        assert_eq!(beta.info().benchmark, "beta");

        // Stage + mirror + promote on alpha; beta serves plain traffic.
        alpha.load_artifact(&named_artifact("alpha", 2)).unwrap();
        let batch: Vec<FeatureVector> = (0..4).map(|i| vector(i as f64)).collect();
        alpha.select_batch(&batch).unwrap();
        beta.select_batch(&batch).unwrap();
        assert_eq!(alpha.promote().unwrap(), 2);

        let a = alpha.stats().unwrap();
        assert_eq!(a.benchmark, "alpha");
        assert_eq!(a.revision, 2);
        assert_eq!(a.promotions, 1);
        assert_eq!(a.tenants, 2);

        // Beta never saw any of it: revision 1, no shadow, its own
        // serving counters.
        let b = beta.stats().unwrap();
        assert_eq!(b.benchmark, "beta");
        assert_eq!(b.revision, 1);
        assert_eq!(b.promotions, 0);
        assert!(b.shadow.is_none());
        assert_eq!(b.primary.requests, 4);
        let err = beta.promote().unwrap_err();
        assert!(err.to_string().contains("no shadow"), "{err}");

        // Cross-tenant staging is refused: an artifact trained for beta
        // cannot shadow alpha.
        let err = alpha.load_artifact(&named_artifact("beta", 3)).unwrap_err();
        assert!(err.to_string().contains("beta"), "{err}");

        alpha.shutdown().unwrap();
        handle.join().unwrap();
    }

    #[test]
    fn slow_reader_hitting_the_outbound_cap_gets_a_typed_error_then_fin() {
        let opts = DaemonOptions {
            max_outbound_bytes: 4096,
            ..DaemonOptions::default()
        };
        let (handle, client) = start(opts);

        // A reader that stops draining: pipeline requests whose replies
        // must overflow the 4 KiB outbound cap, and read nothing.
        let mut slow = std::net::TcpStream::connect(handle.addr.to_string()).unwrap();
        let big: Vec<FeatureVector> = (0..256).map(|i| vector(i as f64)).collect();
        let body = protocol::encode_select_batch(&big);
        for _ in 0..4 {
            protocol::write_frame(&mut slow, &body).unwrap();
        }

        // The daemon must not buffer past the cap: the slow reader gets
        // any replies that fit, then the typed overflow notice, then an
        // orderly end of stream — never a reset.
        let mut reader = protocol::FrameReader::new();
        let mut saw_overflow = false;
        loop {
            match reader.recv::<_, Response>(&mut slow) {
                Ok(Some(Response::Selections { .. })) => {
                    assert!(!saw_overflow, "no replies after the disconnect notice");
                }
                Ok(Some(Response::Error { detail })) => {
                    assert!(detail.contains("overflow"), "{detail}");
                    saw_overflow = true;
                }
                Ok(Some(other)) => panic!("unexpected reply: {other:?}"),
                Ok(None) => break,
                Err(e) => panic!("slow reader saw a reset, not a FIN: {e}"),
            }
        }
        assert!(saw_overflow, "overflow must be announced before the close");
        drop(slow);

        // The disconnect cost the slow reader and nobody else.
        let ok = client.select_batch(&[vector(1.0)]).unwrap();
        assert_eq!(ok.len(), 1);
        client.shutdown().unwrap();
        handle.join().unwrap();
    }

    #[test]
    fn shutdown_sends_fin_not_rst_to_bystander_connections() {
        let (handle, client) = start(DaemonOptions::default());

        // A bound, idle bystander with nothing in flight.
        let mut bystander = std::net::TcpStream::connect(handle.addr.to_string()).unwrap();
        let mut reader = protocol::FrameReader::new();
        protocol::send(
            &mut bystander,
            &Request::Hello {
                client: "bystander".to_string(),
                benchmark: String::new(),
            },
        )
        .unwrap();
        let reply = reader.recv::<_, Response>(&mut bystander).unwrap().unwrap();
        assert!(matches!(reply, Response::HelloAck { .. }), "{reply:?}");

        client.shutdown().unwrap();
        handle.join().unwrap();

        // After the daemon exits, the bystander reads an orderly end of
        // stream — a FIN, not a connection reset.
        match reader.recv::<_, Response>(&mut bystander) {
            Ok(None) => {}
            other => panic!("expected a clean FIN, got {other:?}"),
        }
    }

    #[test]
    fn hello_select_stats_shutdown_over_tcp() {
        let (handle, client) = start(DaemonOptions::default());
        assert_eq!(client.info().benchmark, "daemon-test");
        assert_eq!(client.info().revision, 1);
        assert_eq!(client.info().landmarks, 2);

        let batch: Vec<FeatureVector> = (0..8).map(|i| vector(i as f64)).collect();
        let selections = client.select_batch(&batch).unwrap();
        for (i, s) in selections.iter().enumerate() {
            assert_eq!(s.landmark, usize::from(i >= 4), "input {i}");
            assert!(!s.fell_back);
        }
        let stats = client.stats().unwrap();
        assert_eq!(stats.primary.requests, 8);
        assert!(stats.shadow.is_none());
        assert_eq!(stats.connections, 1);

        client.shutdown().unwrap();
        handle.join().unwrap();
    }

    #[test]
    fn shutdown_completes_while_an_idle_connection_stays_open() {
        let daemon = Daemon::bind(
            artifact(1),
            DaemonOptions::default(),
            &ListenConfig::default(),
        )
        .unwrap();
        let addr = daemon.tcp_addr().to_string();
        let handle = daemon.spawn();
        // A monitoring-style client that connects and then just sits
        // there: its handler thread is parked in a blocking read and
        // must not keep the daemon alive past Shutdown.
        let idle = DaemonClient::connect(&addr).unwrap();
        let active = DaemonClient::connect(&addr).unwrap();
        active.shutdown().unwrap();
        handle.join().unwrap();
        drop(idle);
    }

    #[test]
    fn identical_shadow_agrees_fully_and_promotes() {
        let opts = DaemonOptions {
            shadow: ShadowPolicy {
                min_mirrored: 8,
                min_agreement: 0.99,
            },
            ..DaemonOptions::default()
        };
        let (handle, client) = start(opts);
        let (benchmark, revision) = client.load_artifact(&artifact(2)).unwrap();
        assert_eq!(benchmark, "daemon-test");
        assert_eq!(revision, 2);

        // Premature promote: gate refuses, shadow stays staged.
        let err = client.promote().unwrap_err();
        assert!(err.to_string().contains("mirrored"), "{err}");

        let batch: Vec<FeatureVector> = (0..8).map(|i| vector(i as f64)).collect();
        client.select_batch(&batch).unwrap();
        let stats = client.stats().unwrap();
        let shadow = stats.shadow.expect("shadow staged");
        assert_eq!(shadow.mirrored, 8);
        assert_eq!(shadow.agreed, 8, "identical artifact agrees everywhere");
        assert_eq!(shadow.agreement_rate, 1.0);
        let by_landmark: u64 = shadow.per_landmark.iter().map(|l| l.agreed).sum();
        assert_eq!(by_landmark, 8);

        assert_eq!(client.promote().unwrap(), 2);
        let stats = client.stats().unwrap();
        assert_eq!(stats.revision, 2);
        assert_eq!(stats.promotions, 1);
        assert!(stats.shadow.is_none());
        assert_eq!(stats.primary.requests, 0, "promotion starts fresh counters");

        client.shutdown().unwrap();
        handle.join().unwrap();
    }

    #[test]
    fn drifting_shadow_is_auto_rejected_and_never_answers() {
        // The shadow artifact's centroids sit far away from every
        // request, so its drift monitor sees 100% OOD traffic; with the
        // daemon's thresholds it trips on the first mirrored batch.
        let opts = DaemonOptions {
            shadow_serve: ServeOptions {
                drift_threshold: 0.5,
                min_observations: 4,
                ..ServeOptions::default()
            },
            shadow: ShadowPolicy {
                min_mirrored: 1,
                min_agreement: 0.0,
            },
            ..DaemonOptions::default()
        };
        let (handle, client) = start(opts);
        let mut drifter = artifact(3);
        drifter.centroids = vec![vec![1e9; 3], vec![-1e9; 3]];
        drifter.dispersion = vec![1e-6, 1e-6];
        client.load_artifact(&drifter).unwrap();

        let batch: Vec<FeatureVector> = (0..8).map(|i| vector(i as f64)).collect();
        let first = client.select_batch(&batch).unwrap();
        // Clients always get primary answers — tree routing, no fallback.
        for (i, s) in first.iter().enumerate() {
            assert_eq!(s.landmark, usize::from(i >= 4), "input {i}");
        }
        let stats = client.stats().unwrap();
        assert!(
            stats.shadow.is_none(),
            "drift-tripped shadow was auto-rejected"
        );
        assert_eq!(stats.shadow_rejections, 1);
        assert_eq!(stats.revision, 1, "primary revision unchanged");
        let err = client.promote().unwrap_err();
        assert!(err.to_string().contains("no shadow"), "{err}");

        // Traffic after the rejection is still served by the primary.
        let second = client.select_batch(&batch).unwrap();
        assert_eq!(first, second);

        client.shutdown().unwrap();
        handle.join().unwrap();
    }

    #[test]
    fn foreign_and_malformed_artifacts_are_refused_at_load() {
        let (handle, client) = start(DaemonOptions::default());
        let mut foreign = artifact(9);
        foreign.benchmark = "someone-else".to_string();
        let err = client.load_artifact(&foreign).unwrap_err();
        assert!(err.to_string().contains("someone-else"), "{err}");

        let err = client
            .load_artifact_document("{ not a document")
            .unwrap_err();
        assert!(err.to_string().contains("refused"), "{err}");

        let mut reshaped = artifact(9);
        reshaped.feature_defs = vec![FeatureDef::new("other", 1)];
        let err = client.load_artifact(&reshaped).unwrap_err();
        assert!(err.to_string().contains("feature"), "{err}");

        client.shutdown().unwrap();
        handle.join().unwrap();
    }

    #[test]
    fn version_1_documents_hot_load_through_migration() {
        let (handle, client) = start(DaemonOptions::default());
        // Hand-build a v1 document: strip the v2 fields, stamp version 1.
        let a = artifact(5);
        let serde_json::Value::Object(fields) = serde_json::to_value(&a) else {
            panic!("artifact serializes to an object");
        };
        let v1_payload = serde_json::Value::Object(
            fields
                .into_iter()
                .filter(|(k, _)| k != "revision" && k != "trained_inputs")
                .collect(),
        );
        let v1_doc = intune_core::codec::encode_document(
            intune_serve::ARTIFACT_SCHEMA,
            intune_serve::ARTIFACT_VERSION - 1,
            v1_payload,
        );
        let (benchmark, revision) = client.load_artifact_document(&v1_doc).unwrap();
        assert_eq!(benchmark, "daemon-test");
        assert_eq!(revision, 0, "v1 artifacts migrate to revision 0");

        client.shutdown().unwrap();
        handle.join().unwrap();
    }

    #[test]
    fn ill_shaped_batches_get_typed_refusals_not_dropped_connections() {
        let (handle, client) = start(DaemonOptions::default());
        let defs = [FeatureDef::new("a", 2), FeatureDef::new("b", 1)];
        let incomplete = FeatureVector::empty(&defs);
        let err = client.select_batch(&[incomplete]).unwrap_err();
        assert!(err.to_string().contains("refused"), "{err}");
        // The connection survives a refusal.
        let ok = client.select_batch(&[vector(1.0)]).unwrap();
        assert_eq!(ok.len(), 1);

        client.shutdown().unwrap();
        handle.join().unwrap();
    }

    #[test]
    fn daemon_journals_served_selections_and_keeps_journaling_after_promote() {
        use intune_serve::journal::{list_segments, read_segment};
        use intune_serve::{JournalOptions, JournalSink, TraceSink};
        use std::sync::Arc;

        let dir = std::env::temp_dir().join(format!(
            "intune-daemon-journal-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        let sink = Arc::new(JournalSink::open(&dir, JournalOptions::default()).unwrap());
        let opts = DaemonOptions {
            shadow: ShadowPolicy {
                min_mirrored: 4,
                min_agreement: 0.99,
            },
            trace: Some(sink.clone() as Arc<dyn TraceSink>),
            ..DaemonOptions::default()
        };
        let (handle, client) = {
            let daemon = Daemon::bind(artifact(1), opts, &ListenConfig::default()).unwrap();
            let addr = daemon.tcp_addr().to_string();
            let handle = daemon.spawn();
            (handle, DaemonClient::connect(&addr).unwrap())
        };

        // Traced batch: payloads land in the journal alongside vectors.
        let batch: Vec<FeatureVector> = (0..4).map(|i| vector(i as f64)).collect();
        let payloads: Vec<serde_json::Value> = (0..4)
            .map(|i| {
                if i == 2 {
                    serde_json::Value::Null
                } else {
                    serde_json::Value::Array(vec![serde_json::Value::Int(i)])
                }
            })
            .collect();
        let traced = client.select_batch_traced(&batch, &payloads).unwrap();
        let plain = client.select_batch(&batch).unwrap();
        assert_eq!(traced, plain, "payloads never steer selection");
        assert_eq!(client.stats().unwrap().journaled, 8);

        // Promote a staged revision; the new primary keeps journaling.
        client.load_artifact(&artifact(2)).unwrap();
        client.select_batch(&batch).unwrap();
        assert_eq!(client.promote().unwrap(), 2);
        client.select_batch(&batch).unwrap();
        let stats = client.stats().unwrap();
        assert_eq!(stats.journaled, 16);

        client.shutdown().unwrap();
        handle.join().unwrap();

        // Read the journal back: revisions, landmarks and payloads match
        // what the daemon served.
        let segments = list_segments(&dir).unwrap();
        let mut records = Vec::new();
        for s in &segments {
            let scan = read_segment(s).unwrap();
            assert!(scan.torn.is_none());
            records.extend(scan.records);
        }
        assert_eq!(records.len(), 16);
        assert!(records[..12].iter().all(|r| r.revision == 1));
        assert!(records[12..].iter().all(|r| r.revision == 2));
        assert!(records[0].payload.is_some());
        assert!(records[2].payload.is_none(), "null payload elided");
        assert!(records[4].payload.is_none(), "untraced batch has none");
        for (r, s) in records[..4].iter().zip(&traced) {
            assert_eq!(r.landmark as usize, s.landmark);
        }
        // Mirror traffic (the staged shadow scored 4 vectors) was NOT
        // journaled: 16 primary answers, not 20 records.
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn daemon_records_wire_traffic_that_replays_with_zero_divergence() {
        use intune_datalog::{
            divergence, load_recording, replay, FrameBody, RecorderSink, RecordingOptions,
            ReplayOptions,
        };
        use intune_serve::VectorService;
        use std::sync::Arc;

        let dir = std::env::temp_dir().join(format!(
            "intune-daemon-record-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        let sink = Arc::new(RecorderSink::open(&dir, RecordingOptions::default()).unwrap());
        let opts = DaemonOptions {
            record: Some(Arc::clone(&sink)),
            ..DaemonOptions::default()
        };
        let (handle, client) = start(opts);

        let batch: Vec<FeatureVector> = (0..6).map(|i| vector(i as f64)).collect();
        let expected = client.select_batch(&batch).unwrap();
        let payloads = vec![serde_json::Value::Int(7)];
        client.select_batch_traced(&batch[..1], &payloads).unwrap();
        // Pipelined batches land as ordinary frames, one per batch, in
        // request order.
        let piped = client
            .select_batch_pipelined(&[(&batch[..2], &[][..]), (&batch[2..], &[][..])], 4)
            .unwrap();
        assert_eq!(piped.concat(), expected);
        let stats = client.stats().unwrap();
        // Hello + 4 selection frames + the Stats request itself.
        assert_eq!(stats.recorded, 6);
        assert_eq!(sink.dropped(), 0);
        client.shutdown().unwrap();
        handle.join().unwrap();

        let recording = load_recording(&dir).unwrap();
        assert_eq!(recording.torn_segments, 0);
        assert_eq!(recording.frames.len(), 6);
        assert!(
            matches!(&recording.frames[0].body, FrameBody::Control { kind } if kind == "Hello")
        );
        assert!(recording.frames.iter().all(|f| f.tenant == "daemon-test"));
        assert!(
            recording.frames.iter().all(|f| f.conn == 0),
            "one connection, id 0"
        );
        match &recording.frames[2].body {
            FrameBody::Select {
                features, payloads, ..
            } => {
                assert_eq!(features.len(), 1);
                assert_eq!(payloads, &vec![serde_json::Value::Int(7)]);
            }
            other => panic!("traced batch recorded as {other:?}"),
        }

        // Replay the capture in-process at two worker counts: transcripts
        // byte-identical, zero divergence, and the answers are exactly
        // what the daemon originally served.
        let replay_service = |threads: usize| {
            VectorService::new(
                artifact(1),
                ServeOptions {
                    threads,
                    ..ServeOptions::default()
                },
            )
            .unwrap()
        };
        let a = replay(
            &recording.frames,
            &replay_service(1),
            &ReplayOptions::default(),
        )
        .unwrap();
        let b = replay(
            &recording.frames,
            &replay_service(4),
            &ReplayOptions::default(),
        )
        .unwrap();
        assert_eq!(a.control_skipped, 2, "Hello + Stats");
        assert_eq!(a.selections(), 13);
        assert_eq!(a.transcript(), b.transcript());
        let report = divergence(&a, &b);
        assert!(report.clean(), "{report:?}");
        assert_eq!(a.results[0].selections, expected);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn handler_panic_costs_one_connection_never_the_daemon() {
        let opts = DaemonOptions {
            inject_faults: true,
            ..DaemonOptions::default()
        };
        let (handle, client) = start(opts);

        // A raw second connection whose handler we crash mid-request.
        let mut victim = std::net::TcpStream::connect(handle.addr).unwrap();
        protocol::send(&mut victim, &Request::InjectPanic).unwrap();
        // The handler panicked before replying: the connection dies with
        // no response frame (clean close or reset), never a reply.
        match protocol::recv::<_, Response>(&mut victim) {
            Ok(None) | Err(_) => {}
            Ok(Some(r)) => panic!("crashed handler still replied: {r:?}"),
        }

        // The daemon itself is unharmed: the original client still gets
        // selections and a stats snapshot over its own connection.
        let batch: Vec<FeatureVector> = (0..8).map(|i| vector(i as f64)).collect();
        let selections = client.select_batch(&batch).unwrap();
        for (i, s) in selections.iter().enumerate() {
            assert_eq!(s.landmark, usize::from(i >= 4), "input {i}");
        }
        let stats = client.stats().unwrap();
        assert_eq!(stats.primary.requests, 8);
        assert_eq!(stats.connections, 2);

        // A fresh connection is also accepted after the crash.
        let late = DaemonClient::connect(&handle.addr.to_string()).unwrap();
        assert_eq!(late.info().benchmark, "daemon-test");

        client.shutdown().unwrap();
        handle.join().unwrap();
    }

    #[test]
    fn fault_injection_is_refused_unless_enabled() {
        let (handle, client) = start(DaemonOptions::default());
        let mut raw = std::net::TcpStream::connect(handle.addr).unwrap();
        protocol::send(&mut raw, &Request::InjectPanic).unwrap();
        let mut reader = protocol::FrameReader::new();
        let reply = reader.recv::<_, Response>(&mut raw).unwrap().unwrap();
        let Response::Error { detail } = reply else {
            panic!("expected a typed refusal, got {reply:?}");
        };
        assert!(detail.contains("disabled"), "{detail}");
        // The refusal is an answer, not a crash: the same connection
        // keeps serving.
        protocol::send(&mut raw, &Request::Stats).unwrap();
        let reply = reader.recv::<_, Response>(&mut raw).unwrap().unwrap();
        assert!(matches!(reply, Response::StatsReply { .. }), "{reply:?}");

        client.shutdown().unwrap();
        handle.join().unwrap();
    }

    #[cfg(unix)]
    #[test]
    fn unix_domain_socket_serves_the_same_protocol() {
        let path = std::env::temp_dir().join(format!("intune-daemon-{}.sock", std::process::id()));
        let daemon = Daemon::bind(
            artifact(1),
            DaemonOptions::default(),
            &ListenConfig {
                tcp: "127.0.0.1:0".to_string(),
                uds: Some(path.clone()),
                ..ListenConfig::default()
            },
        )
        .unwrap();
        let handle = daemon.spawn();
        let client = DaemonClient::connect(&format!("unix:{}", path.display())).unwrap();
        assert_eq!(client.info().benchmark, "daemon-test");
        let got = client.select_batch(&[vector(7.0)]).unwrap();
        assert_eq!(got[0].landmark, 1);
        client.shutdown().unwrap();
        handle.join().unwrap();
        assert!(!path.exists(), "socket file cleaned up on exit");
    }

    #[test]
    fn metrics_wire_request_reports_tenant_counters_and_stage_timings() {
        let (handle, client) = start(DaemonOptions::default());
        let batch: Vec<FeatureVector> = (0..8).map(|i| vector(i as f64)).collect();
        client.select_batch(&batch).unwrap();
        client.select_batch(&batch).unwrap();

        let metrics = client.metrics().unwrap();
        assert_eq!(metrics.tenants.len(), 1);
        let tenant = &metrics.tenants[0];
        assert_eq!(tenant.benchmark, "daemon-test");
        assert_eq!(tenant.revision, 1);
        assert_eq!(tenant.requests, 2);
        assert_eq!(tenant.selections, 16);
        assert_eq!(tenant.latency.count, 2);
        assert!(tenant.latency.p50_ns > 0);
        assert!(tenant.latency.max_ns >= tenant.latency.p999_ns);

        // Stage histograms: two select frames were decoded, selected,
        // encoded, and flushed (plus the handshake/metrics control
        // frames on decode/encode).
        assert_eq!(metrics.stages.select.count, 2);
        assert!(metrics.stages.decode.count >= 2);
        assert!(metrics.stages.encode.count >= 2);
        assert!(metrics.stages.queued_write.count >= 2);
        assert!(metrics.connections >= 1);

        client.shutdown().unwrap();
        handle.join().unwrap();
    }

    #[test]
    fn http_scrape_exposes_per_tenant_series() {
        use std::io::{Read as _, Write as _};
        let specs = vec![
            TenantSpec {
                artifact: named_artifact("alpha", 1),
                trace: None,
                recorder: None,
                trace_sample: None,
            },
            TenantSpec {
                artifact: named_artifact("beta", 1),
                trace: None,
                recorder: None,
                trace_sample: None,
            },
        ];
        let listen = ListenConfig {
            metrics: Some("127.0.0.1:0".to_string()),
            ..ListenConfig::default()
        };
        let daemon = Daemon::bind_tenants(specs, DaemonOptions::default(), &listen).unwrap();
        let addr = daemon.tcp_addr().to_string();
        let scrape_addr = daemon.metrics_addr().expect("metrics listener bound");
        let handle = daemon.spawn();

        let alpha = DaemonClient::connect_to(&addr, "alpha").unwrap();
        let beta = DaemonClient::connect_to(&addr, "beta").unwrap();
        let batch: Vec<FeatureVector> = (0..4).map(|i| vector(i as f64)).collect();
        alpha.select_batch(&batch).unwrap();
        alpha.select_batch(&batch).unwrap();
        beta.select_batch(&batch).unwrap();

        // A plain HTTP/1.0 scrape on the separate metrics listener,
        // served by the same poll loop that is serving wire traffic.
        let mut sock = std::net::TcpStream::connect(scrape_addr).unwrap();
        sock.write_all(b"GET /metrics HTTP/1.0\r\n\r\n").unwrap();
        let mut body = String::new();
        sock.read_to_string(&mut body).unwrap();

        assert!(body.starts_with("HTTP/1.0 200 OK\r\n"), "{body}");
        assert!(
            body.contains("Content-Type: text/plain; version=0.0.4"),
            "{body}"
        );
        assert!(
            body.contains("intune_requests_total{tenant=\"alpha\"} 2"),
            "{body}"
        );
        assert!(
            body.contains("intune_requests_total{tenant=\"beta\"} 1"),
            "{body}"
        );
        assert!(
            body.contains("intune_selections_total{tenant=\"alpha\"} 8"),
            "{body}"
        );
        assert!(
            body.contains("intune_request_seconds{tenant=\"alpha\",quantile=\"0.99\"}"),
            "{body}"
        );
        assert!(
            body.contains("intune_stage_seconds{stage=\"select\",quantile=\"0.5\"}"),
            "{body}"
        );
        assert!(body.contains("intune_tenants 2"), "{body}");

        alpha.shutdown().unwrap();
        handle.join().unwrap();
    }

    #[test]
    fn lifecycle_events_are_journaled_through_promote() {
        use intune_obs::{read_events, EventKind, EventLog};
        let path =
            std::env::temp_dir().join(format!("intune-daemon-events-{}.log", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let opts = DaemonOptions {
            shadow: ShadowPolicy {
                min_mirrored: 8,
                min_agreement: 0.99,
            },
            events: Some(std::sync::Arc::new(EventLog::open(&path).unwrap())),
            ..DaemonOptions::default()
        };
        let (handle, client) = start(opts);
        client.load_artifact(&artifact(2)).unwrap();
        let batch: Vec<FeatureVector> = (0..8).map(|i| vector(i as f64)).collect();
        client.select_batch(&batch).unwrap();
        assert_eq!(client.promote().unwrap(), 2);
        // A Metrics wire request heartbeats each tenant's latency
        // summary into the log.
        client.metrics().unwrap();
        client.shutdown().unwrap();
        handle.join().unwrap();

        let scan = read_events(&path).unwrap();
        assert!(scan.torn.is_none(), "clean shutdown leaves no torn tail");
        let events = scan.events;
        assert!(
            events
                .iter()
                .any(|e| matches!(e.kind, EventKind::TenantBound { .. })
                    && e.tenant == "daemon-test"
                    && e.revision == 1),
            "{events:?}"
        );
        assert!(
            events.iter().any(
                |e| matches!(e.kind, EventKind::ShadowStaged { trained_inputs: 8 })
                    && e.revision == 2
            ),
            "{events:?}"
        );
        let promoted = events
            .iter()
            .find(|e| matches!(e.kind, EventKind::Promoted { .. }))
            .expect("promote journaled");
        assert_eq!(promoted.tenant, "daemon-test");
        assert_eq!(promoted.revision, 2);
        let EventKind::Promoted {
            mirrored,
            agreed,
            agreement_rate,
        } = &promoted.kind
        else {
            unreachable!()
        };
        assert_eq!(*mirrored, 8);
        assert_eq!(*agreed, 8);
        assert_eq!(*agreement_rate, 1.0);
        let heartbeat = events
            .iter()
            .find(|e| matches!(e.kind, EventKind::LatencySnapshot { .. }))
            .expect("metrics request heartbeats latency");
        let EventKind::LatencySnapshot { latency } = &heartbeat.kind else {
            unreachable!()
        };
        assert_eq!(latency.count, 1, "one select frame before the snapshot");
        let _ = std::fs::remove_file(&path);
    }

    /// One sampled request leaves a connected span tree across layers —
    /// client root span, server span parented on it, stage spans and the
    /// service's selection span under the server span — plus a latency
    /// exemplar carrying the same trace id into `Metrics` and the scrape.
    #[test]
    fn traced_request_spans_cross_every_layer() {
        use intune_obs::{read_span_dir, SpanLog};
        let dir = std::env::temp_dir().join(format!("intune-daemon-spans-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let daemon_log = std::sync::Arc::new(SpanLog::open(&dir.join("daemon.spans.log")).unwrap());
        let client_log = std::sync::Arc::new(SpanLog::open(&dir.join("client.spans.log")).unwrap());

        let opts = DaemonOptions {
            trace_sample: 1,
            spans: Some(std::sync::Arc::clone(&daemon_log)),
            ..DaemonOptions::default()
        };
        let daemon = Daemon::bind(artifact(1), opts, &ListenConfig::default()).unwrap();
        let addr = daemon.tcp_addr().to_string();
        let handle = daemon.spawn();
        let mut client = DaemonClient::connect(&addr).unwrap();
        client.enable_tracing(1, std::sync::Arc::clone(&client_log));

        client.select_batch(&[vector(3.0)]).unwrap();
        let metrics = client.metrics().unwrap();
        client.shutdown().unwrap();
        handle.join().unwrap();

        let scan = read_span_dir(&dir).unwrap();
        assert!(scan.torn.is_none(), "clean shutdown leaves no torn tails");
        let spans = scan.spans;
        let client_span = spans
            .iter()
            .find(|s| s.name == "client.select_batch")
            .expect("client root span recorded");
        let trace = client_span.trace_id;
        assert_ne!(trace, 0);
        assert_eq!(
            client_span.parent_span, 0,
            "the client span roots the trace"
        );
        let server_span = spans
            .iter()
            .find(|s| s.name == "server.request")
            .expect("server span recorded");
        assert_eq!(server_span.trace_id, trace, "one id crosses the wire");
        assert_eq!(
            server_span.parent_span, client_span.span_id,
            "the server span nests under the client's"
        );
        for stage in ["stage.decode", "stage.select", "stage.encode"] {
            let span = spans
                .iter()
                .find(|s| s.name == stage)
                .unwrap_or_else(|| panic!("{stage} span recorded"));
            assert_eq!(span.trace_id, trace);
            assert_eq!(span.parent_span, server_span.span_id);
        }
        let service = spans
            .iter()
            .find(|s| s.name == "service.select")
            .expect("service selection span recorded");
        assert_eq!(service.trace_id, trace);
        assert_eq!(service.parent_span, server_span.span_id);
        assert!(
            service
                .annotations
                .iter()
                .any(|(k, v)| k == "revision" && v == "1"),
            "{:?}",
            service.annotations
        );

        // The same trace id surfaces as the tenant's latency exemplar.
        let exemplar = metrics.tenants[0]
            .exemplar
            .as_ref()
            .expect("sampled request leaves an exemplar");
        assert_eq!(exemplar.trace_id, trace);
        assert!(exemplar.value_ns > 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The metrics endpoint is a GET-only scrape surface: non-GET
    /// methods are refused with 405 (+ Allow), unknown paths with 404,
    /// and a head that is not HTTP at all with 400 — each over a raw
    /// socket, each on the same listener that serves real scrapes.
    #[test]
    fn http_metrics_endpoint_rejects_non_get_and_unknown_paths() {
        use std::io::{Read as _, Write as _};
        let listen = ListenConfig {
            metrics: Some("127.0.0.1:0".to_string()),
            ..ListenConfig::default()
        };
        let daemon = Daemon::bind(artifact(1), DaemonOptions::default(), &listen).unwrap();
        let addr = daemon.tcp_addr().to_string();
        let scrape_addr = daemon.metrics_addr().expect("metrics listener bound");
        let handle = daemon.spawn();

        let roundtrip = |request: &[u8]| {
            let mut sock = std::net::TcpStream::connect(scrape_addr).unwrap();
            sock.write_all(request).unwrap();
            let mut reply = String::new();
            sock.read_to_string(&mut reply).unwrap();
            reply
        };

        let post = roundtrip(b"POST /metrics HTTP/1.0\r\n\r\n");
        assert!(
            post.starts_with("HTTP/1.0 405 Method Not Allowed\r\n"),
            "{post}"
        );
        assert!(post.contains("Allow: GET\r\n"), "{post}");

        let missing = roundtrip(b"GET /nope HTTP/1.0\r\n\r\n");
        assert!(
            missing.starts_with("HTTP/1.0 404 Not Found\r\n"),
            "{missing}"
        );

        let garbage = roundtrip(b"definitely not http\r\n\r\n");
        assert!(
            garbage.starts_with("HTTP/1.0 400 Bad Request\r\n"),
            "{garbage}"
        );

        // `/` and `/metrics` still scrape after the refusals.
        let root = roundtrip(b"GET / HTTP/1.0\r\n\r\n");
        assert!(root.starts_with("HTTP/1.0 200 OK\r\n"), "{root}");
        assert!(root.contains("intune_tenants 1"), "{root}");

        let client = DaemonClient::connect(&addr).unwrap();
        client.shutdown().unwrap();
        handle.join().unwrap();
    }
}
