//! The long-running selection server.
//!
//! A [`Daemon`] owns a **primary** [`VectorService`] (answering every
//! client) and at most one staged **shadow** (mirrored, never answering),
//! and speaks `intune-wire/2` over TCP — plus a Unix-domain socket on
//! unix — with one thread per connection and batch fan-out on the
//! work-stealing executor inside the service. The primary sits behind a
//! lock-free [`ArcSwap`] pointer: `SelectBatch` readers take a wait-free
//! load, so a promotion in flight — or a handler that panicked mid-swap —
//! can never stall or poison the serving hot path. Model lifecycle over
//! the wire: `LoadArtifact` stages a candidate (hot reload, any readable
//! artifact schema version), `SelectBatch` traffic builds its agreement
//! record, `Promote` publishes it with a single pointer store behind the
//! [`ShadowPolicy`] gate, and a drift-tripped shadow is auto-rejected
//! without ever answering a client.

use crate::protocol::{self, DaemonStats, Request, Response};
use crate::shadow::{ShadowPolicy, ShadowState};
use arc_swap::ArcSwap;
use intune_core::{Error, FeatureVector, Result};
use intune_serve::{ModelArtifact, ServeOptions, TraceSink, VectorService, ARTIFACT_VERSION};
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

/// Locks a mutex, recovering from poisoning. Every daemon mutex guards
/// state that stays structurally valid across a panic (registries,
/// staged-shadow slots), so a handler that died mid-request must cost
/// exactly its own connection — never wedge every later request behind
/// a `PoisonError`.
fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Forcibly closes one connection's socket (both directions), unblocking
/// any thread parked in a read on it. Shared between the handler thread
/// (which fires it on every exit path) and the shutdown drain.
type CloseHook = Arc<dyn Fn() + Send + Sync>;

/// Fires a [`CloseHook`] when dropped. A handler thread holds one so its
/// connection is shut down however the handler exits — **including a
/// panic**: merely dropping the stream would leave the registry's
/// duplicated fd holding the TCP connection open, and the peer would
/// block on a reply that can never come instead of seeing the
/// connection die.
struct ShutdownOnExit(Option<CloseHook>);

impl Drop for ShutdownOnExit {
    fn drop(&mut self) {
        if let Some(hook) = &self.0 {
            hook();
        }
    }
}

/// A connection stream the daemon can serve and force-close at shutdown.
trait WireStream: Read + Write + Send + 'static {
    /// A hook that shuts the underlying socket down so a handler thread
    /// blocked reading it observes end-of-stream and exits. `None` when
    /// the fd cannot be duplicated (the handler then lingers until its
    /// peer disconnects — never the common case).
    fn close_hook(&self) -> Option<CloseHook>;

    /// Per-connection transport tuning before the first frame.
    fn prepare(&self) {}
}

impl WireStream for TcpStream {
    fn close_hook(&self) -> Option<CloseHook> {
        let dup = self.try_clone().ok()?;
        Some(Arc::new(move || {
            let _ = dup.shutdown(Shutdown::Both);
        }))
    }

    fn prepare(&self) {
        // One whole frame per write and the peer blocks on it: Nagle
        // buys nothing here and its delayed-ACK interaction costs ~40 ms
        // per request/response round trip on loopback.
        self.set_nodelay(true).ok();
    }
}

#[cfg(unix)]
impl WireStream for UnixStream {
    fn close_hook(&self) -> Option<CloseHook> {
        let dup = self.try_clone().ok()?;
        Some(Arc::new(move || {
            let _ = dup.shutdown(Shutdown::Both);
        }))
    }
}

/// Server identification string sent in `HelloAck`.
pub const SERVER_NAME: &str = "intune-daemon/0.1";

/// Tunables of the daemon.
///
/// Primary and shadow carry *separate* serve options on purpose: a
/// deployment may pin the primary's fallback policy off for byte
/// determinism (`drift_threshold: 1.0`) while staged shadows keep a live
/// drift monitor — it is the shadow's tripped monitor that triggers
/// auto-rejection.
#[derive(Clone, Default)]
pub struct DaemonOptions {
    /// Serving options of the primary (worker threads, probe cadence,
    /// drift thresholds). Promoted shadows are re-wrapped under these.
    pub serve: ServeOptions,
    /// Serving options applied to staged shadows while they mirror.
    pub shadow_serve: ServeOptions,
    /// The shadow promotion gate.
    pub shadow: ShadowPolicy,
    /// Optional trace sink (the request journal) attached to every
    /// primary this daemon serves — the initial artifact and each
    /// promoted successor. Staged shadows are never traced: mirror
    /// traffic is an echo of the primary's, and journaling it twice
    /// would poison the retraining corpus with duplicates.
    pub trace: Option<Arc<dyn TraceSink>>,
    /// Honor `InjectPanic` requests by panicking inside the connection
    /// handler. Off by default; only the crash-containment tests turn it
    /// on. A production daemon answers the request with a typed refusal.
    pub inject_faults: bool,
}

impl std::fmt::Debug for DaemonOptions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DaemonOptions")
            .field("serve", &self.serve)
            .field("shadow_serve", &self.shadow_serve)
            .field("shadow", &self.shadow)
            .field("trace", &self.trace.as_ref().map(|_| "<sink>"))
            .field("inject_faults", &self.inject_faults)
            .finish()
    }
}

/// What the daemon listens on.
#[derive(Debug, Clone)]
pub struct ListenConfig {
    /// TCP bind address (e.g. `127.0.0.1:0` for an ephemeral port).
    pub tcp: String,
    /// Optional Unix-domain socket path (unix only; a stale socket file
    /// at this path is removed before binding).
    pub uds: Option<PathBuf>,
}

impl Default for ListenConfig {
    fn default() -> Self {
        ListenConfig {
            tcp: "127.0.0.1:0".to_string(),
            uds: None,
        }
    }
}

/// The staged shadow, guarded by a (briefly held) mutex. `staged_seq`
/// identifies the current shadow so a concurrent auto-reject never drops
/// a *newer* shadow staged in between: mirroring happens outside the
/// lock, and the rejection only lands if the slot still holds the same
/// generation the tripped mirror scored.
struct ShadowSlot {
    shadow: Option<Arc<ShadowState>>,
    staged_seq: u64,
}

/// Everything connection handlers share.
struct Shared {
    /// The serving primary. Readers (`SelectBatch`, `Hello`, `Stats`)
    /// take a wait-free load; `Promote` publishes a replacement with one
    /// pointer store. No lock, so no lock to poison and no writer that
    /// can stall the hot path.
    primary: ArcSwap<VectorService>,
    shadow: Mutex<ShadowSlot>,
    opts: DaemonOptions,
    stop: AtomicBool,
    connections: AtomicU64,
    shadow_rejections: AtomicU64,
    promotions: AtomicU64,
    tcp_addr: SocketAddr,
    uds_path: Option<PathBuf>,
    /// Live connection handlers: join handle + a hook that force-closes
    /// the connection's socket. Reaped as connections finish; drained
    /// (hooks fired, threads joined) at shutdown so handlers parked on
    /// idle persistent connections cannot keep the daemon alive.
    handlers: Mutex<Vec<(JoinHandle<()>, Option<CloseHook>)>>,
}

impl Shared {
    /// Sets the stop flag, force-closes every live connection, and
    /// unblocks the accept loops by connecting to them once.
    fn request_stop(&self) {
        self.stop.store(true, Ordering::Release);
        for (_, hook) in lock_unpoisoned(&self.handlers).iter() {
            if let Some(hook) = hook {
                hook();
            }
        }
        // Self-connect to unblock accept(). An unspecified bind address
        // (0.0.0.0 / ::) is not connectable on every platform — dial
        // loopback at the bound port instead.
        let mut kick = self.tcp_addr;
        if kick.ip().is_unspecified() {
            kick.set_ip(match kick {
                SocketAddr::V4(_) => std::net::IpAddr::V4(std::net::Ipv4Addr::LOCALHOST),
                SocketAddr::V6(_) => std::net::IpAddr::V6(std::net::Ipv6Addr::LOCALHOST),
            });
        }
        let _ = TcpStream::connect(kick);
        #[cfg(unix)]
        if let Some(path) = &self.uds_path {
            let _ = UnixStream::connect(path);
        }
    }
}

/// A bound (but not yet serving) selection daemon.
pub struct Daemon {
    shared: Arc<Shared>,
    tcp: TcpListener,
    #[cfg(unix)]
    uds: Option<UnixListener>,
}

/// Handle of a daemon serving on a background thread.
pub struct DaemonHandle {
    /// The TCP address actually bound (resolves `:0` ports).
    pub addr: SocketAddr,
    /// The Unix-domain socket path, if one is listening.
    pub uds: Option<PathBuf>,
    thread: JoinHandle<Result<()>>,
}

impl DaemonHandle {
    /// Waits for the daemon to exit (a client must send `Shutdown`).
    ///
    /// # Errors
    /// Propagates the serve loop's error.
    ///
    /// # Panics
    /// Panics if the daemon thread itself panicked.
    pub fn join(self) -> Result<()> {
        self.thread.join().expect("daemon thread panicked")
    }
}

impl Daemon {
    /// Binds the listeners and validates the initial artifact.
    ///
    /// # Errors
    /// Returns [`Error::Artifact`] for an inconsistent artifact and
    /// [`Error::Wire`] for bind failures.
    pub fn bind(
        artifact: ModelArtifact,
        opts: DaemonOptions,
        listen: &ListenConfig,
    ) -> Result<Self> {
        let mut primary = VectorService::new(artifact, opts.serve.clone())?;
        primary.set_trace(opts.trace.clone());
        let tcp = TcpListener::bind(&listen.tcp)
            .map_err(|e| Error::wire(format!("cannot bind tcp {}: {e}", listen.tcp)))?;
        let tcp_addr = tcp
            .local_addr()
            .map_err(|e| Error::wire(format!("cannot resolve bound address: {e}")))?;
        #[cfg(unix)]
        let uds = match &listen.uds {
            Some(path) => {
                if path.exists() {
                    std::fs::remove_file(path).map_err(|e| {
                        Error::wire(format!("stale socket {}: {e}", path.display()))
                    })?;
                }
                Some(UnixListener::bind(path).map_err(|e| {
                    Error::wire(format!("cannot bind unix socket {}: {e}", path.display()))
                })?)
            }
            None => None,
        };
        #[cfg(not(unix))]
        if listen.uds.is_some() {
            return Err(Error::wire("unix-domain sockets are unix-only"));
        }
        Ok(Daemon {
            shared: Arc::new(Shared {
                primary: ArcSwap::from_pointee(primary),
                shadow: Mutex::new(ShadowSlot {
                    shadow: None,
                    staged_seq: 0,
                }),
                opts,
                stop: AtomicBool::new(false),
                connections: AtomicU64::new(0),
                shadow_rejections: AtomicU64::new(0),
                promotions: AtomicU64::new(0),
                tcp_addr,
                uds_path: listen.uds.clone(),
                handlers: Mutex::new(Vec::new()),
            }),
            tcp,
            #[cfg(unix)]
            uds,
        })
    }

    /// The TCP address actually bound (resolves `:0` ports).
    pub fn tcp_addr(&self) -> SocketAddr {
        self.shared.tcp_addr
    }

    /// Serves until a client sends `Shutdown`. Connection handlers run on
    /// their own threads and are joined before this returns.
    ///
    /// # Errors
    /// Returns [`Error::Wire`] if the accept loop fails fatally.
    pub fn run(self) -> Result<()> {
        #[cfg(unix)]
        let uds_accept = self.uds.map(|listener| {
            let shared = Arc::clone(&self.shared);
            std::thread::spawn(move || accept_loop(listener.incoming(), &shared))
        });

        accept_loop(self.tcp.incoming(), &self.shared);

        #[cfg(unix)]
        if let Some(h) = uds_accept {
            h.join().expect("uds accept loop panicked");
        }
        // Handlers were force-closed by `request_stop`; joining is quick.
        let drained: Vec<(JoinHandle<()>, Option<CloseHook>)> =
            std::mem::take(&mut *lock_unpoisoned(&self.shared.handlers));
        for (h, _) in drained {
            reap(h);
        }
        #[cfg(unix)]
        if let Some(path) = &self.shared.uds_path {
            let _ = std::fs::remove_file(path);
        }
        Ok(())
    }

    /// Runs the daemon on a background thread, returning its handle.
    pub fn spawn(self) -> DaemonHandle {
        let addr = self.tcp_addr();
        let uds = self.shared.uds_path.clone();
        DaemonHandle {
            addr,
            uds,
            thread: std::thread::spawn(move || self.run()),
        }
    }
}

/// Accepts connections until the stop flag is raised, spawning one
/// handler thread per connection.
fn accept_loop<S, I>(incoming: I, shared: &Arc<Shared>)
where
    S: WireStream,
    I: Iterator<Item = std::io::Result<S>>,
{
    for stream in incoming {
        if shared.stop.load(Ordering::Acquire) {
            break;
        }
        let stream = match stream {
            Ok(stream) => stream,
            Err(_) => {
                // A persistent accept failure (e.g. fd exhaustion) must
                // not busy-spin a core; backing off also gives running
                // handlers a chance to release their descriptors.
                std::thread::sleep(Duration::from_millis(20));
                continue;
            }
        };
        shared.connections.fetch_add(1, Ordering::AcqRel);
        stream.prepare();
        let hook = stream.close_hook();
        let worker = Arc::clone(shared);
        let thread_hook = hook.clone();
        let handle = std::thread::spawn(move || {
            let _shutdown_on_exit = ShutdownOnExit(thread_hook);
            handle_connection(stream, &worker);
        });
        let mut registry = lock_unpoisoned(&shared.handlers);
        // `request_stop` fires close hooks under this same lock, so
        // re-check the flag now that we hold it: a shutdown that raced
        // in between the loop-top check and here has already fired the
        // registered hooks and will never see this one — close the late
        // connection ourselves or its handler would park forever and
        // hang the shutdown drain.
        if shared.stop.load(Ordering::Acquire) {
            if let Some(hook) = &hook {
                hook();
            }
        }
        // Reap finished handlers on every accept so a long-running daemon
        // serving many short-lived connections does not accumulate
        // exited-but-unjoined threads; joining a finished thread is
        // instant.
        let mut live = Vec::with_capacity(registry.len() + 1);
        for (h, hk) in registry.drain(..) {
            if h.is_finished() {
                reap(h);
            } else {
                live.push((h, hk));
            }
        }
        *registry = live;
        registry.push((handle, hook));
    }
}

/// Joins a connection handler, containing (not propagating) its panic: a
/// poisoned request must cost one connection, never the whole daemon.
fn reap(handle: JoinHandle<()>) {
    if handle.join().is_err() {
        eprintln!("intune-daemon: a connection handler panicked; connection dropped");
    }
}

/// One connection: request frames in, response frames out, until the
/// peer closes, a protocol violation occurs, or `Shutdown` arrives. The
/// connection owns one [`protocol::FrameReader`], so request payloads
/// land in a single reused buffer for the connection's whole life.
fn handle_connection<S: Read + Write>(mut stream: S, shared: &Shared) {
    let mut reader = protocol::FrameReader::new();
    loop {
        match reader.recv::<_, Request>(&mut stream) {
            Ok(None) => break,
            Ok(Some(request)) => {
                let shutdown = matches!(request, Request::Shutdown);
                let response = handle_request(shared, request);
                if protocol::send(&mut stream, &response).is_err() {
                    break;
                }
                if shutdown {
                    shared.request_stop();
                    break;
                }
            }
            Err(e) => {
                // A malformed frame gets a typed reply, then the
                // connection is dropped (framing state is untrusted).
                let _ = protocol::send(
                    &mut stream,
                    &Response::Error {
                        detail: e.to_string(),
                    },
                );
                break;
            }
        }
    }
}

/// Dispatches one request against the shared state.
fn handle_request(shared: &Shared, request: Request) -> Response {
    match request {
        Request::Hello { client: _ } => {
            let primary = shared.primary.load();
            let artifact = primary.artifact();
            Response::HelloAck {
                server: SERVER_NAME.to_string(),
                benchmark: artifact.benchmark.clone(),
                revision: artifact.revision,
                artifact_version: ARTIFACT_VERSION,
                landmarks: artifact.landmarks.len() as u64,
            }
        }
        Request::SelectBatch { features } => handle_select(shared, &features, &[]),
        Request::SelectBatchTraced { features, payloads } => {
            handle_select(shared, &features, &payloads)
        }
        Request::Stats => Response::StatsReply {
            stats: snapshot(shared),
        },
        Request::LoadArtifact { document } => handle_load(shared, &document),
        Request::Promote => handle_promote(shared),
        Request::InjectPanic => {
            if shared.opts.inject_faults {
                panic!("injected fault: client requested a handler panic");
            }
            Response::Error {
                detail: "fault injection is disabled on this daemon".to_string(),
            }
        }
        Request::Shutdown => Response::ShuttingDown,
    }
}

/// Primary answers off a wait-free pointer load; the shadow (if staged)
/// mirrors *outside* any lock. A shadow whose drift monitor trips — or
/// that cannot score the traffic at all — is auto-rejected afterwards,
/// guarded by `staged_seq` so a newer shadow staged concurrently is
/// never the one dropped. Mirroring a shadow that was replaced while we
/// scored it is harmless: its agreement record dies with its `Arc`.
fn handle_select(
    shared: &Shared,
    features: &[FeatureVector],
    payloads: &[serde_json::Value],
) -> Response {
    let primary = shared.primary.load();
    let selections = match primary.select_vector_batch_traced(features, payloads) {
        Ok(s) => s,
        Err(e) => {
            return Response::Error {
                detail: e.to_string(),
            }
        }
    };
    let staged = {
        let slot = lock_unpoisoned(&shared.shadow);
        slot.shadow
            .as_ref()
            .map(|s| (Arc::clone(s), slot.staged_seq))
    };
    if let Some((shadow, seq)) = staged {
        let tripped = shadow.mirror(features, &selections).unwrap_or(true);
        if tripped {
            let mut slot = lock_unpoisoned(&shared.shadow);
            if slot.staged_seq == seq && slot.shadow.is_some() {
                slot.shadow = None;
                shared.shadow_rejections.fetch_add(1, Ordering::AcqRel);
            }
        }
    }
    Response::Selections { selections }
}

/// Stages a candidate artifact as the shadow (replacing any previous
/// stage). The candidate must parse (any readable schema version), fit
/// the primary's benchmark and feature declaration, and pass shape
/// validation. Validation and service construction happen before the
/// slot lock is taken — staging never blocks the select path for longer
/// than a pointer assignment.
fn handle_load(shared: &Shared, document: &str) -> Response {
    let artifact = match ModelArtifact::from_document(document) {
        Ok(a) => a,
        Err(e) => {
            return Response::Error {
                detail: e.to_string(),
            }
        }
    };
    let primary = shared.primary.load();
    let primary_artifact = primary.artifact();
    if artifact.benchmark != primary_artifact.benchmark {
        return Response::Error {
            detail: format!(
                "staged artifact serves `{}`, daemon serves `{}`",
                artifact.benchmark, primary_artifact.benchmark
            ),
        };
    }
    if artifact.feature_defs != primary_artifact.feature_defs {
        return Response::Error {
            detail: "staged artifact declares a different feature space; \
                     it cannot score this daemon's traffic"
                .to_string(),
        };
    }
    let benchmark = artifact.benchmark.clone();
    let revision = artifact.revision;
    let landmarks = primary.landmarks().len();
    match VectorService::new(artifact, shared.opts.shadow_serve.clone()) {
        Ok(service) => {
            let mut slot = lock_unpoisoned(&shared.shadow);
            slot.shadow = Some(Arc::new(ShadowState::new(service, landmarks)));
            slot.staged_seq += 1;
            Response::Loaded {
                benchmark,
                revision,
            }
        }
        Err(e) => Response::Error {
            detail: e.to_string(),
        },
    }
}

/// Promotes the staged shadow behind the policy gate. The promoted
/// artifact becomes a fresh primary (counters zeroed), published with a
/// single pointer store — in-flight selects finish on the old primary
/// they already loaded; every later select sees the new one. Refusal
/// leaves the shadow staged; a revalidation failure drops it (it could
/// not be promoted and can no longer be trusted staged).
fn handle_promote(shared: &Shared) -> Response {
    let mut slot = lock_unpoisoned(&shared.shadow);
    let Some(shadow) = slot.shadow.take() else {
        return Response::Error {
            detail: "no shadow artifact is staged".to_string(),
        };
    };
    if let Err(reason) = shadow.promotable(&shared.opts.shadow) {
        slot.shadow = Some(shadow);
        return Response::Error { detail: reason };
    }
    let artifact = shadow.service.artifact().clone();
    let revision = artifact.revision;
    match VectorService::new(artifact, shared.opts.serve.clone()) {
        Ok(mut primary) => {
            // The journal follows the primary role, not the artifact: a
            // promoted revision keeps feeding the same trace sink.
            primary.set_trace(shared.opts.trace.clone());
            shared.primary.store(Arc::new(primary));
            shared.promotions.fetch_add(1, Ordering::AcqRel);
            Response::Promoted { revision }
        }
        Err(e) => Response::Error {
            detail: format!("promoted artifact failed revalidation: {e}"),
        },
    }
}

/// Assembles a `Stats` reply.
fn snapshot(shared: &Shared) -> DaemonStats {
    let primary = shared.primary.load();
    let shadow_stats = lock_unpoisoned(&shared.shadow)
        .shadow
        .as_ref()
        .map(|s| ShadowState::stats(s));
    DaemonStats {
        benchmark: primary.artifact().benchmark.clone(),
        revision: primary.artifact().revision,
        primary: primary.stats(),
        shadow: shadow_stats,
        shadow_rejections: shared.shadow_rejections.load(Ordering::Acquire),
        promotions: shared.promotions.load(Ordering::Acquire),
        connections: shared.connections.load(Ordering::Acquire),
        journaled: shared
            .opts
            .trace
            .as_ref()
            .map(|sink| sink.appended())
            .unwrap_or(0),
    }
}
