//! The long-running selection server.
//!
//! A [`Daemon`] owns a **primary** [`VectorService`] (answering every
//! client) and at most one staged **shadow** (mirrored, never answering),
//! and speaks `intune-wire/1` over TCP — plus a Unix-domain socket on
//! unix — with one thread per connection and batch fan-out on the
//! work-stealing executor inside the service. Model lifecycle over the
//! wire: `LoadArtifact` stages a candidate (hot reload, any readable
//! artifact schema version), `SelectBatch` traffic builds its agreement
//! record, `Promote` swaps it in behind the [`ShadowPolicy`] gate, and a
//! drift-tripped shadow is auto-rejected without ever answering a client.

use crate::protocol::{self, DaemonStats, Request, Response};
use crate::shadow::{ShadowPolicy, ShadowState};
use intune_core::{Error, FeatureVector, Result};
use intune_serve::{ModelArtifact, ServeOptions, TraceSink, VectorService, ARTIFACT_VERSION};
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::Duration;

/// Forcibly closes one connection's socket (both directions), unblocking
/// any thread parked in a read on it.
type CloseHook = Box<dyn Fn() + Send + Sync>;

/// A connection stream the daemon can serve and force-close at shutdown.
trait WireStream: Read + Write + Send + 'static {
    /// A hook that shuts the underlying socket down so a handler thread
    /// blocked reading it observes end-of-stream and exits. `None` when
    /// the fd cannot be duplicated (the handler then lingers until its
    /// peer disconnects — never the common case).
    fn close_hook(&self) -> Option<CloseHook>;

    /// Per-connection transport tuning before the first frame.
    fn prepare(&self) {}
}

impl WireStream for TcpStream {
    fn close_hook(&self) -> Option<CloseHook> {
        let dup = self.try_clone().ok()?;
        Some(Box::new(move || {
            let _ = dup.shutdown(Shutdown::Both);
        }))
    }

    fn prepare(&self) {
        // One whole frame per write and the peer blocks on it: Nagle
        // buys nothing here and its delayed-ACK interaction costs ~40 ms
        // per request/response round trip on loopback.
        self.set_nodelay(true).ok();
    }
}

#[cfg(unix)]
impl WireStream for UnixStream {
    fn close_hook(&self) -> Option<CloseHook> {
        let dup = self.try_clone().ok()?;
        Some(Box::new(move || {
            let _ = dup.shutdown(Shutdown::Both);
        }))
    }
}

/// Server identification string sent in `HelloAck`.
pub const SERVER_NAME: &str = "intune-daemon/0.1";

/// Tunables of the daemon.
///
/// Primary and shadow carry *separate* serve options on purpose: a
/// deployment may pin the primary's fallback policy off for byte
/// determinism (`drift_threshold: 1.0`) while staged shadows keep a live
/// drift monitor — it is the shadow's tripped monitor that triggers
/// auto-rejection.
#[derive(Clone, Default)]
pub struct DaemonOptions {
    /// Serving options of the primary (worker threads, probe cadence,
    /// drift thresholds). Promoted shadows are re-wrapped under these.
    pub serve: ServeOptions,
    /// Serving options applied to staged shadows while they mirror.
    pub shadow_serve: ServeOptions,
    /// The shadow promotion gate.
    pub shadow: ShadowPolicy,
    /// Optional trace sink (the request journal) attached to every
    /// primary this daemon serves — the initial artifact and each
    /// promoted successor. Staged shadows are never traced: mirror
    /// traffic is an echo of the primary's, and journaling it twice
    /// would poison the retraining corpus with duplicates.
    pub trace: Option<Arc<dyn TraceSink>>,
}

impl std::fmt::Debug for DaemonOptions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DaemonOptions")
            .field("serve", &self.serve)
            .field("shadow_serve", &self.shadow_serve)
            .field("shadow", &self.shadow)
            .field("trace", &self.trace.as_ref().map(|_| "<sink>"))
            .finish()
    }
}

/// What the daemon listens on.
#[derive(Debug, Clone)]
pub struct ListenConfig {
    /// TCP bind address (e.g. `127.0.0.1:0` for an ephemeral port).
    pub tcp: String,
    /// Optional Unix-domain socket path (unix only; a stale socket file
    /// at this path is removed before binding).
    pub uds: Option<PathBuf>,
}

impl Default for ListenConfig {
    fn default() -> Self {
        ListenConfig {
            tcp: "127.0.0.1:0".to_string(),
            uds: None,
        }
    }
}

/// Serving state swapped under the lock: the primary and the staged
/// shadow. `staged_seq` identifies the current shadow so a concurrent
/// auto-reject never drops a *newer* shadow staged in between.
struct State {
    primary: VectorService,
    shadow: Option<ShadowState>,
    staged_seq: u64,
}

/// Everything connection handlers share.
struct Shared {
    state: RwLock<State>,
    opts: DaemonOptions,
    stop: AtomicBool,
    connections: AtomicU64,
    shadow_rejections: AtomicU64,
    promotions: AtomicU64,
    tcp_addr: SocketAddr,
    uds_path: Option<PathBuf>,
    /// Live connection handlers: join handle + a hook that force-closes
    /// the connection's socket. Reaped as connections finish; drained
    /// (hooks fired, threads joined) at shutdown so handlers parked on
    /// idle persistent connections cannot keep the daemon alive.
    handlers: Mutex<Vec<(JoinHandle<()>, Option<CloseHook>)>>,
}

impl Shared {
    /// Sets the stop flag, force-closes every live connection, and
    /// unblocks the accept loops by connecting to them once.
    fn request_stop(&self) {
        self.stop.store(true, Ordering::Release);
        for (_, hook) in self
            .handlers
            .lock()
            .expect("handler registry poisoned")
            .iter()
        {
            if let Some(hook) = hook {
                hook();
            }
        }
        // Self-connect to unblock accept(). An unspecified bind address
        // (0.0.0.0 / ::) is not connectable on every platform — dial
        // loopback at the bound port instead.
        let mut kick = self.tcp_addr;
        if kick.ip().is_unspecified() {
            kick.set_ip(match kick {
                SocketAddr::V4(_) => std::net::IpAddr::V4(std::net::Ipv4Addr::LOCALHOST),
                SocketAddr::V6(_) => std::net::IpAddr::V6(std::net::Ipv6Addr::LOCALHOST),
            });
        }
        let _ = TcpStream::connect(kick);
        #[cfg(unix)]
        if let Some(path) = &self.uds_path {
            let _ = UnixStream::connect(path);
        }
    }
}

/// A bound (but not yet serving) selection daemon.
pub struct Daemon {
    shared: Arc<Shared>,
    tcp: TcpListener,
    #[cfg(unix)]
    uds: Option<UnixListener>,
}

/// Handle of a daemon serving on a background thread.
pub struct DaemonHandle {
    /// The TCP address actually bound (resolves `:0` ports).
    pub addr: SocketAddr,
    /// The Unix-domain socket path, if one is listening.
    pub uds: Option<PathBuf>,
    thread: JoinHandle<Result<()>>,
}

impl DaemonHandle {
    /// Waits for the daemon to exit (a client must send `Shutdown`).
    ///
    /// # Errors
    /// Propagates the serve loop's error.
    ///
    /// # Panics
    /// Panics if the daemon thread itself panicked.
    pub fn join(self) -> Result<()> {
        self.thread.join().expect("daemon thread panicked")
    }
}

impl Daemon {
    /// Binds the listeners and validates the initial artifact.
    ///
    /// # Errors
    /// Returns [`Error::Artifact`] for an inconsistent artifact and
    /// [`Error::Wire`] for bind failures.
    pub fn bind(
        artifact: ModelArtifact,
        opts: DaemonOptions,
        listen: &ListenConfig,
    ) -> Result<Self> {
        let mut primary = VectorService::new(artifact, opts.serve.clone())?;
        primary.set_trace(opts.trace.clone());
        let tcp = TcpListener::bind(&listen.tcp)
            .map_err(|e| Error::wire(format!("cannot bind tcp {}: {e}", listen.tcp)))?;
        let tcp_addr = tcp
            .local_addr()
            .map_err(|e| Error::wire(format!("cannot resolve bound address: {e}")))?;
        #[cfg(unix)]
        let uds = match &listen.uds {
            Some(path) => {
                if path.exists() {
                    std::fs::remove_file(path).map_err(|e| {
                        Error::wire(format!("stale socket {}: {e}", path.display()))
                    })?;
                }
                Some(UnixListener::bind(path).map_err(|e| {
                    Error::wire(format!("cannot bind unix socket {}: {e}", path.display()))
                })?)
            }
            None => None,
        };
        #[cfg(not(unix))]
        if listen.uds.is_some() {
            return Err(Error::wire("unix-domain sockets are unix-only"));
        }
        Ok(Daemon {
            shared: Arc::new(Shared {
                state: RwLock::new(State {
                    primary,
                    shadow: None,
                    staged_seq: 0,
                }),
                opts,
                stop: AtomicBool::new(false),
                connections: AtomicU64::new(0),
                shadow_rejections: AtomicU64::new(0),
                promotions: AtomicU64::new(0),
                tcp_addr,
                uds_path: listen.uds.clone(),
                handlers: Mutex::new(Vec::new()),
            }),
            tcp,
            #[cfg(unix)]
            uds,
        })
    }

    /// The TCP address actually bound (resolves `:0` ports).
    pub fn tcp_addr(&self) -> SocketAddr {
        self.shared.tcp_addr
    }

    /// Serves until a client sends `Shutdown`. Connection handlers run on
    /// their own threads and are joined before this returns.
    ///
    /// # Errors
    /// Returns [`Error::Wire`] if the accept loop fails fatally.
    pub fn run(self) -> Result<()> {
        #[cfg(unix)]
        let uds_accept = self.uds.map(|listener| {
            let shared = Arc::clone(&self.shared);
            std::thread::spawn(move || accept_loop(listener.incoming(), &shared))
        });

        accept_loop(self.tcp.incoming(), &self.shared);

        #[cfg(unix)]
        if let Some(h) = uds_accept {
            h.join().expect("uds accept loop panicked");
        }
        // Handlers were force-closed by `request_stop`; joining is quick.
        let drained: Vec<(JoinHandle<()>, Option<CloseHook>)> = std::mem::take(
            &mut *self
                .shared
                .handlers
                .lock()
                .expect("handler registry poisoned"),
        );
        for (h, _) in drained {
            reap(h);
        }
        #[cfg(unix)]
        if let Some(path) = &self.shared.uds_path {
            let _ = std::fs::remove_file(path);
        }
        Ok(())
    }

    /// Runs the daemon on a background thread, returning its handle.
    pub fn spawn(self) -> DaemonHandle {
        let addr = self.tcp_addr();
        let uds = self.shared.uds_path.clone();
        DaemonHandle {
            addr,
            uds,
            thread: std::thread::spawn(move || self.run()),
        }
    }
}

/// Accepts connections until the stop flag is raised, spawning one
/// handler thread per connection.
fn accept_loop<S, I>(incoming: I, shared: &Arc<Shared>)
where
    S: WireStream,
    I: Iterator<Item = std::io::Result<S>>,
{
    for stream in incoming {
        if shared.stop.load(Ordering::Acquire) {
            break;
        }
        let stream = match stream {
            Ok(stream) => stream,
            Err(_) => {
                // A persistent accept failure (e.g. fd exhaustion) must
                // not busy-spin a core; backing off also gives running
                // handlers a chance to release their descriptors.
                std::thread::sleep(Duration::from_millis(20));
                continue;
            }
        };
        shared.connections.fetch_add(1, Ordering::AcqRel);
        stream.prepare();
        let hook = stream.close_hook();
        let worker = Arc::clone(shared);
        let handle = std::thread::spawn(move || handle_connection(stream, &worker));
        let mut registry = shared.handlers.lock().expect("handler registry poisoned");
        // `request_stop` fires close hooks under this same lock, so
        // re-check the flag now that we hold it: a shutdown that raced
        // in between the loop-top check and here has already fired the
        // registered hooks and will never see this one — close the late
        // connection ourselves or its handler would park forever and
        // hang the shutdown drain.
        if shared.stop.load(Ordering::Acquire) {
            if let Some(hook) = &hook {
                hook();
            }
        }
        // Reap finished handlers on every accept so a long-running daemon
        // serving many short-lived connections does not accumulate
        // exited-but-unjoined threads; joining a finished thread is
        // instant.
        let mut live = Vec::with_capacity(registry.len() + 1);
        for (h, hk) in registry.drain(..) {
            if h.is_finished() {
                reap(h);
            } else {
                live.push((h, hk));
            }
        }
        *registry = live;
        registry.push((handle, hook));
    }
}

/// Joins a connection handler, containing (not propagating) its panic: a
/// poisoned request must cost one connection, never the whole daemon.
fn reap(handle: JoinHandle<()>) {
    if handle.join().is_err() {
        eprintln!("intune-daemon: a connection handler panicked; connection dropped");
    }
}

/// One connection: request frames in, response frames out, until the
/// peer closes, a protocol violation occurs, or `Shutdown` arrives.
fn handle_connection<S: Read + Write>(mut stream: S, shared: &Shared) {
    loop {
        match protocol::recv::<_, Request>(&mut stream) {
            Ok(None) => break,
            Ok(Some(request)) => {
                let shutdown = matches!(request, Request::Shutdown);
                let response = handle_request(shared, request);
                if protocol::send(&mut stream, &response).is_err() {
                    break;
                }
                if shutdown {
                    shared.request_stop();
                    break;
                }
            }
            Err(e) => {
                // A malformed frame gets a typed reply, then the
                // connection is dropped (framing state is untrusted).
                let _ = protocol::send(
                    &mut stream,
                    &Response::Error {
                        detail: e.to_string(),
                    },
                );
                break;
            }
        }
    }
}

/// Dispatches one request against the shared state.
fn handle_request(shared: &Shared, request: Request) -> Response {
    match request {
        Request::Hello { client: _ } => {
            let state = shared.state.read().expect("state lock poisoned");
            let artifact = state.primary.artifact();
            Response::HelloAck {
                server: SERVER_NAME.to_string(),
                benchmark: artifact.benchmark.clone(),
                revision: artifact.revision,
                artifact_version: ARTIFACT_VERSION,
                landmarks: artifact.landmarks.len() as u64,
            }
        }
        Request::SelectBatch { features } => handle_select(shared, &features, &[]),
        Request::SelectBatchTraced { features, payloads } => {
            handle_select(shared, &features, &payloads)
        }
        Request::Stats => Response::StatsReply {
            stats: snapshot(shared),
        },
        Request::LoadArtifact { document } => handle_load(shared, &document),
        Request::Promote => handle_promote(shared),
        Request::Shutdown => Response::ShuttingDown,
    }
}

/// Primary answers; the shadow (if staged) mirrors. A shadow whose drift
/// monitor trips — or that cannot score the traffic at all — is
/// auto-rejected under the write lock, guarded by `staged_seq` so a
/// newer shadow staged concurrently is never the one dropped.
fn handle_select(
    shared: &Shared,
    features: &[FeatureVector],
    payloads: &[serde_json::Value],
) -> Response {
    let (selections, reject_seq) = {
        let state = shared.state.read().expect("state lock poisoned");
        let selections = match state.primary.select_vector_batch_traced(features, payloads) {
            Ok(s) => s,
            Err(e) => {
                return Response::Error {
                    detail: e.to_string(),
                }
            }
        };
        let reject_seq = state.shadow.as_ref().and_then(|shadow| {
            let tripped = shadow.mirror(features, &selections).unwrap_or(true);
            tripped.then_some(state.staged_seq)
        });
        (selections, reject_seq)
    };
    if let Some(seq) = reject_seq {
        let mut state = shared.state.write().expect("state lock poisoned");
        if state.staged_seq == seq && state.shadow.is_some() {
            state.shadow = None;
            shared.shadow_rejections.fetch_add(1, Ordering::AcqRel);
        }
    }
    Response::Selections { selections }
}

/// Stages a candidate artifact as the shadow (replacing any previous
/// stage). The candidate must parse (any readable schema version), fit
/// the primary's benchmark and feature declaration, and pass shape
/// validation.
fn handle_load(shared: &Shared, document: &str) -> Response {
    let artifact = match ModelArtifact::from_document(document) {
        Ok(a) => a,
        Err(e) => {
            return Response::Error {
                detail: e.to_string(),
            }
        }
    };
    let mut state = shared.state.write().expect("state lock poisoned");
    let primary = state.primary.artifact();
    if artifact.benchmark != primary.benchmark {
        return Response::Error {
            detail: format!(
                "staged artifact serves `{}`, daemon serves `{}`",
                artifact.benchmark, primary.benchmark
            ),
        };
    }
    if artifact.feature_defs != primary.feature_defs {
        return Response::Error {
            detail: "staged artifact declares a different feature space; \
                     it cannot score this daemon's traffic"
                .to_string(),
        };
    }
    let benchmark = artifact.benchmark.clone();
    let revision = artifact.revision;
    let landmarks = state.primary.landmarks().len();
    match VectorService::new(artifact, shared.opts.shadow_serve.clone()) {
        Ok(service) => {
            state.shadow = Some(ShadowState::new(service, landmarks));
            state.staged_seq += 1;
            Response::Loaded {
                benchmark,
                revision,
            }
        }
        Err(e) => Response::Error {
            detail: e.to_string(),
        },
    }
}

/// Promotes the staged shadow behind the policy gate. The promoted
/// artifact becomes a fresh primary (counters zeroed); refusal leaves the
/// shadow staged.
fn handle_promote(shared: &Shared) -> Response {
    let mut state = shared.state.write().expect("state lock poisoned");
    let Some(shadow) = state.shadow.take() else {
        return Response::Error {
            detail: "no shadow artifact is staged".to_string(),
        };
    };
    if let Err(reason) = shadow.promotable(&shared.opts.shadow) {
        state.shadow = Some(shadow);
        return Response::Error { detail: reason };
    }
    let artifact = shadow.service.artifact().clone();
    let revision = artifact.revision;
    match VectorService::new(artifact, shared.opts.serve.clone()) {
        Ok(mut primary) => {
            // The journal follows the primary role, not the artifact: a
            // promoted revision keeps feeding the same trace sink.
            primary.set_trace(shared.opts.trace.clone());
            state.primary = primary;
            shared.promotions.fetch_add(1, Ordering::AcqRel);
            Response::Promoted { revision }
        }
        Err(e) => Response::Error {
            detail: format!("promoted artifact failed revalidation: {e}"),
        },
    }
}

/// Assembles a `Stats` reply.
fn snapshot(shared: &Shared) -> DaemonStats {
    let state = shared.state.read().expect("state lock poisoned");
    DaemonStats {
        benchmark: state.primary.artifact().benchmark.clone(),
        revision: state.primary.artifact().revision,
        primary: state.primary.stats(),
        shadow: state.shadow.as_ref().map(ShadowState::stats),
        shadow_rejections: shared.shadow_rejections.load(Ordering::Acquire),
        promotions: shared.promotions.load(Ordering::Acquire),
        connections: shared.connections.load(Ordering::Acquire),
        journaled: shared
            .opts
            .trace
            .as_ref()
            .map(|sink| sink.appended())
            .unwrap_or(0),
    }
}
