//! The long-running selection server.
//!
//! One **readiness-driven event loop** serves every connection and every
//! tenant: a [`mio::Poll`] watches the listeners plus all connected
//! sockets, and each connection is a small state machine — a persistent
//! [`protocol::FrameReader`] reassembling request frames on the read
//! side, a bounded outbound byte queue absorbing partial writes on the
//! write side. Nothing on the loop ever blocks: accepts, reads, and
//! writes all run nonblocking, so one slow client costs itself latency,
//! never anyone else's. A client that stops reading while replies pile
//! up hits the queue cap and is disconnected with a typed error — the
//! backpressure answer that keeps the loop's memory bounded.
//!
//! The daemon is **multi-tenant**: an [`crate::registry::ArtifactRegistry`]
//! maps benchmark name → tenant, each tenant owning a primary
//! [`VectorService`], at most one staged shadow, and its own request
//! journal. `Hello { benchmark }` binds a connection to a tenant;
//! `SelectBatch`, `LoadArtifact`, `Promote`, and `Stats` are routed
//! through that binding. Each tenant's primary sits behind a lock-free
//! [`arc_swap::ArcSwap`] pointer: `SelectBatch` readers take a wait-free
//! load, so a promotion in flight — or a handler that panicked
//! mid-request (contained by `catch_unwind`; one panic costs one
//! connection) — can never stall or poison the serving hot path. Model
//! lifecycle over the wire: `LoadArtifact` stages a candidate (hot
//! reload, any readable artifact schema version), `SelectBatch` traffic
//! builds its agreement record, `Promote` publishes it with a single
//! pointer store behind the [`ShadowPolicy`] gate, and a drift-tripped
//! shadow is auto-rejected without ever answering a client.
//!
//! Shutdown is deterministic: when a client's `Shutdown` lands, the loop
//! delivers that client's `ShuttingDown` reply (briefly blocking, with a
//! bounded timeout), then drains, half-closes, and closes **every**
//! registered connection before exiting — no peer is left holding a
//! half-open socket waiting for a FIN that never comes.

use crate::protocol::{
    self, DaemonStats, Fill, LatencyExemplar, MetricsSnapshot, Request, Response, StageTimings,
    TenantMetrics,
};
use crate::registry::{ArtifactRegistry, Tenant, TenantSpec};
use crate::shadow::{ShadowPolicy, ShadowState};
use intune_core::{Error, FeatureVector, Result, TraceContext};
use intune_datalog::FrameBody;
use intune_obs::{
    EventKind, EventLog, Histogram, IdMinter, LatencySummary, Sampler, Span, SpanLog,
    TextExposition,
};
use intune_serve::{ModelArtifact, ServeOptions, TraceSink, VectorService, ARTIFACT_VERSION};
use mio::unix::SourceFd;
use mio::{Events, Interest, Poll, Token};
use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::os::unix::io::{AsRawFd, RawFd};
use std::os::unix::net::{UnixListener, UnixStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Locks a mutex, recovering from poisoning. Every daemon mutex guards
/// state that stays structurally valid across a panic (staged-shadow
/// slots), so a handler that died mid-request must cost exactly its own
/// connection — never wedge every later request behind a `PoisonError`.
fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Server identification string sent in `HelloAck`.
pub const SERVER_NAME: &str = "intune-daemon/0.1";

/// Default [`DaemonOptions::max_outbound_bytes`]: enough to absorb a
/// large reply burst toward a briefly-stalled client, small enough that
/// a reader that stopped entirely cannot pin unbounded daemon memory.
pub const DEFAULT_MAX_OUTBOUND_BYTES: usize = 8 << 20;

const TCP_LISTENER: Token = Token(0);
const UDS_LISTENER: Token = Token(1);
/// The optional `--metrics` plain-HTTP scrape listener.
const METRICS_LISTENER: Token = Token(2);
/// Connection tokens interleave the two connection kinds on an even/odd
/// split: wire connection `idx` is `CONN_BASE + 2*idx`, metrics (HTTP)
/// connection `idx` is `CONN_BASE + 2*idx + 1`. The two slabs stay
/// independent — neither renumbers when the other grows.
const CONN_BASE: usize = 3;
/// Events delivered per poll call; level triggering makes the cap a
/// latency knob, never a lost wakeup.
const EVENTS_PER_POLL: usize = 256;
/// Poll heartbeat: an idle loop wakes this often, bounding how stale any
/// non-event state (none today) could get. Cheap — one `poll(2)` return.
const POLL_HEARTBEAT: Duration = Duration::from_millis(500);
/// Budget for pushing the `ShuttingDown` reply to the requesting client
/// at exit (the one place the loop deliberately blocks).
const SHUTDOWN_FLUSH_TIMEOUT: Duration = Duration::from_secs(1);

/// Tunables of the daemon.
///
/// Primary and shadow carry *separate* serve options on purpose: a
/// deployment may pin the primary's fallback policy off for byte
/// determinism (`drift_threshold: 1.0`) while staged shadows keep a live
/// drift monitor — it is the shadow's tripped monitor that triggers
/// auto-rejection.
#[derive(Clone)]
pub struct DaemonOptions {
    /// Serving options of every tenant's primary (worker threads, probe
    /// cadence, drift thresholds). Promoted shadows are re-wrapped under
    /// these.
    pub serve: ServeOptions,
    /// Serving options applied to staged shadows while they mirror.
    pub shadow_serve: ServeOptions,
    /// The shadow promotion gate (shared by all tenants; each tenant's
    /// shadow is scored against its own traffic).
    pub shadow: ShadowPolicy,
    /// Optional trace sink (the request journal) for [`Daemon::bind`]'s
    /// sole tenant — attached to the initial artifact and each promoted
    /// successor. Staged shadows are never traced: mirror traffic is an
    /// echo of the primary's, and journaling it twice would poison the
    /// retraining corpus with duplicates. Multi-tenant daemons pass one
    /// sink per tenant via [`TenantSpec`] instead; [`Daemon::bind_tenants`]
    /// ignores this field.
    pub trace: Option<Arc<dyn TraceSink>>,
    /// Optional wire-traffic recorder (the `--record` tap) for
    /// [`Daemon::bind`]'s sole tenant: every inbound request frame is
    /// appended to an `intune-datalog/1` recording for later replay and
    /// divergence checking. Multi-tenant daemons pass one recorder per
    /// tenant via [`TenantSpec`] instead; [`Daemon::bind_tenants`]
    /// ignores this field.
    pub record: Option<Arc<intune_datalog::RecorderSink>>,
    /// Honor `InjectPanic` requests by panicking inside the request
    /// handler. Off by default; only the crash-containment tests turn it
    /// on. A production daemon answers the request with a typed refusal.
    pub inject_faults: bool,
    /// Cap on bytes queued toward one connection's peer. A reply that
    /// would push the queue past this gets replaced by a typed error and
    /// the slow reader is disconnected — backpressure instead of
    /// unbounded buffering.
    pub max_outbound_bytes: usize,
    /// Optional structured event log (the `--events` journal): tenant
    /// binds, shadow stages, promotions and rejections with their gating
    /// counters, drift trips, and fallback recoveries are appended as
    /// crash-tolerant records. Shared by every tenant (each event is
    /// keyed by tenant and revision).
    pub events: Option<Arc<EventLog>>,
    /// Head-based trace sampling for requests that arrive *without* a
    /// trace context (`--trace-sample N` = 1-in-N, 0 = never — the
    /// default). Requests that arrive inside a sampled context are
    /// always traced: the client made the head decision. Per-tenant
    /// overrides ride on [`TenantSpec::trace_sample`]. Only effective
    /// when [`DaemonOptions::spans`] is attached.
    pub trace_sample: u64,
    /// Optional span log (the `--spans DIR` sink): sampled requests
    /// append `server.request` plus per-stage child spans. `None`
    /// disables server-side span capture entirely — the daemon still
    /// propagates incoming contexts to journal and exemplars.
    pub spans: Option<Arc<SpanLog>>,
}

impl Default for DaemonOptions {
    fn default() -> Self {
        DaemonOptions {
            serve: ServeOptions::default(),
            shadow_serve: ServeOptions::default(),
            shadow: ShadowPolicy::default(),
            trace: None,
            record: None,
            inject_faults: false,
            max_outbound_bytes: DEFAULT_MAX_OUTBOUND_BYTES,
            events: None,
            trace_sample: 0,
            spans: None,
        }
    }
}

impl std::fmt::Debug for DaemonOptions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DaemonOptions")
            .field("serve", &self.serve)
            .field("shadow_serve", &self.shadow_serve)
            .field("shadow", &self.shadow)
            .field("trace", &self.trace.as_ref().map(|_| "<sink>"))
            .field("record", &self.record.as_ref().map(|_| "<sink>"))
            .field("inject_faults", &self.inject_faults)
            .field("max_outbound_bytes", &self.max_outbound_bytes)
            .field("events", &self.events.as_ref().map(|_| "<log>"))
            .field("trace_sample", &self.trace_sample)
            .field("spans", &self.spans.as_ref().map(|_| "<log>"))
            .finish()
    }
}

/// What the daemon listens on.
#[derive(Debug, Clone)]
pub struct ListenConfig {
    /// TCP bind address (e.g. `127.0.0.1:0` for an ephemeral port).
    pub tcp: String,
    /// Optional Unix-domain socket path (a stale socket file at this
    /// path is removed before binding).
    pub uds: Option<PathBuf>,
    /// Optional metrics bind address: a plain HTTP/1.0 responder on a
    /// separate listener in the same poll loop, answering every request
    /// with the Prometheus text exposition of the daemon's metrics
    /// snapshot (what `Request::Metrics` returns over the wire).
    pub metrics: Option<String>,
}

impl Default for ListenConfig {
    fn default() -> Self {
        ListenConfig {
            tcp: "127.0.0.1:0".to_string(),
            uds: None,
            metrics: None,
        }
    }
}

/// The daemon's own observability state: stage-timing histograms for the
/// event loop (shared across tenants — the loop is shared) and the
/// optional lifecycle event log. All recording is wait-free; rendering
/// snapshots walks the buckets without stopping writers.
struct DaemonObs {
    /// Frame decode: checksum + payload parse into a `Request`.
    decode: Histogram,
    /// Request handling (selection or lifecycle work).
    select: Histogram,
    /// Reply encode: serialization + frame assembly.
    encode: Histogram,
    /// Draining a connection's outbox to its socket.
    queued_write: Histogram,
    /// The lifecycle event log, if one is attached.
    events: Option<Arc<EventLog>>,
    /// The span log, if `--spans` is attached.
    spans: Option<Arc<SpanLog>>,
    /// Daemon-wide head sampler for requests arriving without a trace
    /// context (tenants may override with their own).
    sampler: Sampler,
    /// Mints trace and span ids — deterministic counter scrambles keyed
    /// off a per-process nonce, never the wall clock.
    minter: IdMinter,
}

impl DaemonObs {
    fn new(events: Option<Arc<EventLog>>, spans: Option<Arc<SpanLog>>, trace_sample: u64) -> Self {
        DaemonObs {
            decode: Histogram::new(),
            select: Histogram::new(),
            encode: Histogram::new(),
            queued_write: Histogram::new(),
            events,
            spans,
            sampler: Sampler::new(trace_sample),
            minter: IdMinter::new(&format!("intune-daemon/{}", std::process::id())),
        }
    }
}

/// Nanoseconds since `t0`, saturating (a histogram value, so u64).
fn elapsed_ns(t0: Instant) -> u64 {
    u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Everything request handlers read: the tenant registry, the options,
/// the daemon-wide counters, and the observability state.
struct Shared {
    registry: ArtifactRegistry,
    opts: DaemonOptions,
    connections: AtomicU64,
    obs: DaemonObs,
}

/// A bound (but not yet serving) selection daemon.
pub struct Daemon {
    shared: Shared,
    tcp: TcpListener,
    uds: Option<UnixListener>,
    metrics: Option<TcpListener>,
    tcp_addr: SocketAddr,
    uds_path: Option<PathBuf>,
    metrics_addr: Option<SocketAddr>,
}

/// Handle of a daemon serving on a background thread.
pub struct DaemonHandle {
    /// The TCP address actually bound (resolves `:0` ports).
    pub addr: SocketAddr,
    /// The Unix-domain socket path, if one is listening.
    pub uds: Option<PathBuf>,
    /// The metrics HTTP address actually bound, if one is listening.
    pub metrics: Option<SocketAddr>,
    thread: JoinHandle<Result<()>>,
}

impl DaemonHandle {
    /// Waits for the daemon to exit (a client must send `Shutdown`).
    ///
    /// # Errors
    /// Propagates the serve loop's error.
    ///
    /// # Panics
    /// Panics if the daemon thread itself panicked.
    pub fn join(self) -> Result<()> {
        self.thread.join().expect("daemon thread panicked")
    }
}

impl Daemon {
    /// Binds the listeners and validates the initial artifact — the
    /// single-tenant convenience over [`Daemon::bind_tenants`], carrying
    /// [`DaemonOptions::trace`] as the sole tenant's journal.
    ///
    /// # Errors
    /// Returns [`Error::Artifact`] for an inconsistent artifact and
    /// [`Error::Wire`] for bind failures.
    pub fn bind(
        artifact: ModelArtifact,
        opts: DaemonOptions,
        listen: &ListenConfig,
    ) -> Result<Self> {
        let spec = TenantSpec {
            artifact,
            trace: opts.trace.clone(),
            recorder: opts.record.clone(),
            trace_sample: None,
        };
        Daemon::bind_tenants(vec![spec], opts, listen)
    }

    /// Binds the listeners and builds one serving tenant per spec. Each
    /// spec's artifact names its benchmark; clients route with
    /// `Hello { benchmark }`.
    ///
    /// # Errors
    /// Returns [`Error::Artifact`] for an inconsistent artifact and
    /// [`Error::Wire`] for an empty or duplicate-benchmark registry and
    /// for bind failures.
    pub fn bind_tenants(
        specs: Vec<TenantSpec>,
        opts: DaemonOptions,
        listen: &ListenConfig,
    ) -> Result<Self> {
        let registry = ArtifactRegistry::build(
            specs,
            &opts.serve,
            opts.events.as_ref(),
            opts.spans.as_ref(),
        )?;
        let tcp = TcpListener::bind(&listen.tcp)
            .map_err(|e| Error::wire(format!("cannot bind tcp {}: {e}", listen.tcp)))?;
        let tcp_addr = tcp
            .local_addr()
            .map_err(|e| Error::wire(format!("cannot resolve bound address: {e}")))?;
        let uds = match &listen.uds {
            Some(path) => {
                if path.exists() {
                    std::fs::remove_file(path).map_err(|e| {
                        Error::wire(format!("stale socket {}: {e}", path.display()))
                    })?;
                }
                Some(UnixListener::bind(path).map_err(|e| {
                    Error::wire(format!("cannot bind unix socket {}: {e}", path.display()))
                })?)
            }
            None => None,
        };
        let metrics = match &listen.metrics {
            Some(addr) => Some(
                TcpListener::bind(addr)
                    .map_err(|e| Error::wire(format!("cannot bind metrics {addr}: {e}")))?,
            ),
            None => None,
        };
        let metrics_addr =
            match &metrics {
                Some(listener) => Some(listener.local_addr().map_err(|e| {
                    Error::wire(format!("cannot resolve bound metrics address: {e}"))
                })?),
                None => None,
            };
        let events = opts.events.clone();
        let spans = opts.spans.clone();
        let trace_sample = opts.trace_sample;
        Ok(Daemon {
            shared: Shared {
                registry,
                opts,
                connections: AtomicU64::new(0),
                obs: DaemonObs::new(events, spans, trace_sample),
            },
            tcp,
            uds,
            metrics,
            tcp_addr,
            uds_path: listen.uds.clone(),
            metrics_addr,
        })
    }

    /// The TCP address actually bound (resolves `:0` ports).
    pub fn tcp_addr(&self) -> SocketAddr {
        self.tcp_addr
    }

    /// The metrics HTTP address actually bound, if `--metrics` is on.
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.metrics_addr
    }

    /// Serves until a client sends `Shutdown`: one readiness-driven loop
    /// over the listeners and every connection.
    ///
    /// # Errors
    /// Returns [`Error::Wire`] if the poller fails fatally.
    pub fn run(self) -> Result<()> {
        let Daemon {
            shared,
            tcp,
            uds,
            metrics,
            tcp_addr: _,
            uds_path,
            metrics_addr: _,
        } = self;
        let mut poll =
            Poll::new().map_err(|e| Error::wire(format!("cannot create poller: {e}")))?;
        tcp.set_nonblocking(true)
            .map_err(|e| Error::wire(format!("cannot unblock tcp listener: {e}")))?;
        let tcp_fd = tcp.as_raw_fd();
        poll.registry()
            .register(&mut SourceFd(&tcp_fd), TCP_LISTENER, Interest::READABLE)
            .map_err(|e| Error::wire(format!("cannot register tcp listener: {e}")))?;
        let uds_fd = match &uds {
            Some(listener) => {
                listener
                    .set_nonblocking(true)
                    .map_err(|e| Error::wire(format!("cannot unblock unix listener: {e}")))?;
                let fd = listener.as_raw_fd();
                poll.registry()
                    .register(&mut SourceFd(&fd), UDS_LISTENER, Interest::READABLE)
                    .map_err(|e| Error::wire(format!("cannot register unix listener: {e}")))?;
                Some(fd)
            }
            None => None,
        };
        let metrics_fd = match &metrics {
            Some(listener) => {
                listener
                    .set_nonblocking(true)
                    .map_err(|e| Error::wire(format!("cannot unblock metrics listener: {e}")))?;
                let fd = listener.as_raw_fd();
                poll.registry()
                    .register(&mut SourceFd(&fd), METRICS_LISTENER, Interest::READABLE)
                    .map_err(|e| Error::wire(format!("cannot register metrics listener: {e}")))?;
                Some(fd)
            }
            None => None,
        };

        let mut events = Events::with_capacity(EVENTS_PER_POLL);
        let mut conns = Slab::default();
        let mut http = HttpSlab::default();
        let mut stop = false;
        let mut requester: Option<usize> = None;
        while !stop {
            poll.poll(&mut events, Some(POLL_HEARTBEAT))
                .map_err(|e| Error::wire(format!("poll failed: {e}")))?;
            for event in &events {
                match event.token() {
                    TCP_LISTENER => {
                        accept_tcp(&tcp, &poll, &mut conns, &shared);
                    }
                    UDS_LISTENER => {
                        if let Some(listener) = &uds {
                            accept_uds(listener, &poll, &mut conns, &shared);
                        }
                    }
                    METRICS_LISTENER => {
                        if let Some(listener) = &metrics {
                            accept_metrics(listener, &poll, &mut http);
                        }
                    }
                    Token(t) if (t - CONN_BASE) % 2 == 1 => {
                        // Odd offset: a metrics (HTTP) connection.
                        let idx = (t - CONN_BASE) / 2;
                        let Some(conn) = http.get_mut(idx) else {
                            continue;
                        };
                        match service_http(conn, &shared) {
                            Verdict::Keep => {
                                let want = conn.desired_interest();
                                if want != conn.registered {
                                    let fd = conn.stream.as_raw_fd();
                                    if poll
                                        .registry()
                                        .reregister(&mut SourceFd(&fd), Token(t), want)
                                        .is_ok()
                                    {
                                        conn.registered = want;
                                    }
                                }
                            }
                            Verdict::Drop => http.close(&poll, idx),
                        }
                    }
                    Token(t) => {
                        let idx = (t - CONN_BASE) / 2;
                        let Some(conn) = conns.get_mut(idx) else {
                            // A stale event for a slot freed earlier in
                            // this batch; level triggering makes spurious
                            // wakeups harmless.
                            continue;
                        };
                        let shutdown_seen = stop;
                        match service(conn, *event, &shared, &mut stop) {
                            Verdict::Keep => {
                                let want = conn.desired_interest();
                                if want != conn.registered {
                                    let fd = conn.transport.raw_fd();
                                    if poll
                                        .registry()
                                        .reregister(&mut SourceFd(&fd), Token(t), want)
                                        .is_ok()
                                    {
                                        conn.registered = want;
                                    }
                                }
                            }
                            Verdict::Drop => conns.close(&poll, idx),
                        }
                        if stop && !shutdown_seen {
                            requester = Some(idx);
                        }
                    }
                }
            }
        }

        // Deterministic teardown. The `Shutdown` requester's reply is
        // flushed with a brief blocking write so `shutdown()` round
        // trips reliably; every other connection gets a best-effort
        // nonblocking flush. Then each socket's unread input is drained
        // (so closing sends an orderly FIN, not a data-discarding RST)
        // and closed — no registered connection survives the loop.
        if let Some(idx) = requester {
            if let Some(conn) = conns.get_mut(idx) {
                conn.transport
                    .set_blocking_for_flush(SHUTDOWN_FLUSH_TIMEOUT);
                let _ = conn.flush();
                let _ = conn.transport.set_nonblocking();
            }
        }
        for idx in 0..conns.slots.len() {
            if let Some(conn) = conns.get_mut(idx) {
                let _ = conn.flush();
                conn.discard_pending_input();
                conn.transport.shutdown_write();
            }
            conns.close(&poll, idx);
        }
        for idx in 0..http.slots.len() {
            http.close(&poll, idx);
        }
        let _ = poll.registry().deregister(&mut SourceFd(&tcp_fd));
        if let Some(fd) = uds_fd {
            let _ = poll.registry().deregister(&mut SourceFd(&fd));
        }
        if let Some(fd) = metrics_fd {
            let _ = poll.registry().deregister(&mut SourceFd(&fd));
        }
        if let Some(path) = &uds_path {
            let _ = std::fs::remove_file(path);
        }
        Ok(())
    }

    /// Runs the daemon on a background thread, returning its handle.
    pub fn spawn(self) -> DaemonHandle {
        let addr = self.tcp_addr();
        let uds = self.uds_path.clone();
        let metrics = self.metrics_addr;
        DaemonHandle {
            addr,
            uds,
            metrics,
            thread: std::thread::spawn(move || self.run()),
        }
    }
}

/// Accepts every pending TCP connection (the listener is level
/// triggered: drain until `WouldBlock`).
fn accept_tcp(listener: &TcpListener, poll: &Poll, conns: &mut Slab, shared: &Shared) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                // One whole frame per write and the peer blocks on it:
                // Nagle buys nothing here and its delayed-ACK interaction
                // costs ~40 ms per request/response round trip on
                // loopback.
                stream.set_nodelay(true).ok();
                conns.admit(Transport::Tcp(stream), poll, shared);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            // A transient accept failure (e.g. fd exhaustion): give up
            // this readiness round; the next poll retries without
            // busy-spinning a core.
            Err(_) => break,
        }
    }
}

/// Accepts every pending Unix-domain connection.
fn accept_uds(listener: &UnixListener, poll: &Poll, conns: &mut Slab, shared: &Shared) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => conns.admit(Transport::Unix(stream), poll, shared),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(_) => break,
        }
    }
}

/// Accepts every pending metrics (HTTP) connection.
fn accept_metrics(listener: &TcpListener, poll: &Poll, http: &mut HttpSlab) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => http.admit(stream, poll),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(_) => break,
        }
    }
}

/// Bound on a metrics request head: scrapers send a one-line GET plus a
/// few headers; anything bigger is answered (and closed) early rather
/// than buffered.
const HTTP_REQUEST_CAP: usize = 8 << 10;

/// The metrics-connection table, mirroring [`Slab`] on the odd half of
/// the token space: `Token(CONN_BASE + 2*index + 1)` ↔ slot.
#[derive(Default)]
struct HttpSlab {
    slots: Vec<Option<HttpConn>>,
    free: Vec<usize>,
}

impl HttpSlab {
    fn get_mut(&mut self, idx: usize) -> Option<&mut HttpConn> {
        self.slots.get_mut(idx).and_then(Option::as_mut)
    }

    fn admit(&mut self, stream: TcpStream, poll: &Poll) {
        if stream.set_nonblocking(true).is_err() {
            return;
        }
        let idx = match self.free.pop() {
            Some(idx) => idx,
            None => {
                self.slots.push(None);
                self.slots.len() - 1
            }
        };
        let fd = stream.as_raw_fd();
        if poll
            .registry()
            .register(
                &mut SourceFd(&fd),
                Token(CONN_BASE + 2 * idx + 1),
                Interest::READABLE,
            )
            .is_err()
        {
            self.free.push(idx);
            return;
        }
        self.slots[idx] = Some(HttpConn {
            stream,
            inbuf: Vec::new(),
            outbox: Vec::new(),
            written: 0,
            registered: Interest::READABLE,
        });
    }

    fn close(&mut self, poll: &Poll, idx: usize) {
        if let Some(conn) = self.slots.get_mut(idx).and_then(Option::take) {
            let fd = conn.stream.as_raw_fd();
            let _ = poll.registry().deregister(&mut SourceFd(&fd));
            self.free.push(idx);
        }
    }
}

/// One metrics scrape connection: read the request head, answer with one
/// `HTTP/1.0 200` carrying the Prometheus text body, close. The metrics
/// path shares the poll loop but nothing else with the wire protocol —
/// a stalled scraper is subject to the same nonblocking discipline as
/// any client, and never touches tenant state.
struct HttpConn {
    stream: TcpStream,
    inbuf: Vec<u8>,
    outbox: Vec<u8>,
    written: usize,
    registered: Interest,
}

impl HttpConn {
    /// Readers want readable until the response is built, then only the
    /// write side matters.
    fn desired_interest(&self) -> Interest {
        if self.outbox.is_empty() {
            Interest::READABLE
        } else {
            Interest::WRITABLE
        }
    }
}

/// Services one readiness event on a metrics connection.
fn service_http(conn: &mut HttpConn, shared: &Shared) -> Verdict {
    if conn.outbox.is_empty() {
        // Read until the head is complete (blank line), the peer is done
        // sending, or the cap is hit — any of these triggers the reply.
        let mut scratch = [0u8; 1024];
        let mut respond = false;
        loop {
            match conn.stream.read(&mut scratch) {
                Ok(0) => {
                    respond = true;
                    break;
                }
                Ok(n) => {
                    conn.inbuf.extend_from_slice(&scratch[..n]);
                    if conn.inbuf.windows(4).any(|w| w == b"\r\n\r\n")
                        || conn.inbuf.len() > HTTP_REQUEST_CAP
                    {
                        respond = true;
                        break;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => return Verdict::Drop,
            }
        }
        if !respond {
            return Verdict::Keep;
        }
        conn.outbox = route_http(&conn.inbuf, shared);
    }
    loop {
        match conn.stream.write(&conn.outbox[conn.written..]) {
            Ok(0) => return Verdict::Drop,
            Ok(n) => {
                conn.written += n;
                if conn.written == conn.outbox.len() {
                    // HTTP/1.0 semantics: the response ends the exchange.
                    return Verdict::Drop;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return Verdict::Keep,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return Verdict::Drop,
        }
    }
}

/// Routes one buffered request head: `GET /` and `GET /metrics` answer
/// the scrape, any other method is refused with `405` (scrapes are
/// reads — a `POST` here is a misconfigured client, not a scraper), any
/// other path with `404`, and a head that is not even an HTTP request
/// line with `400`. Error responses carry a one-line plain-text body so
/// `curl` users see why.
fn route_http(inbuf: &[u8], shared: &Shared) -> Vec<u8> {
    let Some((method, path)) = parse_request_line(inbuf) else {
        return render_http_error("400 Bad Request", "not an HTTP request\n");
    };
    if method != "GET" {
        return render_http_error("405 Method Not Allowed", "only GET is served here\n");
    }
    if path != "/" && path != "/metrics" {
        return render_http_error("404 Not Found", "try /metrics\n");
    }
    render_scrape_response(shared)
}

/// The `(method, path)` of the request line, or `None` when the head is
/// not parseable as one. The path is taken up to any `?` — a scrape
/// endpoint has no query parameters to honor.
fn parse_request_line(inbuf: &[u8]) -> Option<(&str, &str)> {
    let head = std::str::from_utf8(inbuf).ok()?;
    let line = head.split("\r\n").next()?;
    let mut parts = line.split(' ').filter(|p| !p.is_empty());
    let method = parts.next()?;
    let target = parts.next()?;
    let version = parts.next()?;
    if !version.starts_with("HTTP/") {
        return None;
    }
    let path = target.split('?').next().unwrap_or(target);
    Some((method, path))
}

/// One complete `HTTP/1.0` error response.
fn render_http_error(status: &str, body: &str) -> Vec<u8> {
    let mut response = Vec::with_capacity(body.len() + 160);
    response.extend_from_slice(format!("HTTP/1.0 {status}\r\n").as_bytes());
    response.extend_from_slice(b"Content-Type: text/plain; charset=utf-8\r\n");
    response.extend_from_slice(format!("Content-Length: {}\r\n", body.len()).as_bytes());
    if status.starts_with("405") {
        response.extend_from_slice(b"Allow: GET\r\n");
    }
    response.extend_from_slice(b"Connection: close\r\n\r\n");
    response.extend_from_slice(body.as_bytes());
    response
}

/// One complete `HTTP/1.0 200` response carrying the Prometheus text
/// exposition of the current metrics snapshot.
fn render_scrape_response(shared: &Shared) -> Vec<u8> {
    let body = render_metrics_text(shared);
    let mut response = Vec::with_capacity(body.len() + 128);
    response.extend_from_slice(b"HTTP/1.0 200 OK\r\n");
    response.extend_from_slice(b"Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n");
    response.extend_from_slice(format!("Content-Length: {}\r\n", body.len()).as_bytes());
    response.extend_from_slice(b"Connection: close\r\n\r\n");
    response.extend_from_slice(body.as_bytes());
    response
}

/// The wire-connection table: `Token(CONN_BASE + 2*index)` ↔ slot (the
/// even half of the token space; metrics connections take the odd half).
/// Freed slots are reused, keeping tokens dense and the table at
/// peak-connections size.
#[derive(Default)]
struct Slab {
    slots: Vec<Option<Conn>>,
    free: Vec<usize>,
}

impl Slab {
    fn get_mut(&mut self, idx: usize) -> Option<&mut Conn> {
        self.slots.get_mut(idx).and_then(Option::as_mut)
    }

    /// Registers a fresh connection with the poller and stores it.
    fn admit(&mut self, transport: Transport, poll: &Poll, shared: &Shared) {
        // The accept counter doubles as the connection id: slab slots are
        // reused, the counter never is, so recordings can tell two
        // consecutive occupants of one slot apart.
        let id = shared.connections.fetch_add(1, Ordering::AcqRel);
        if transport.set_nonblocking().is_err() {
            return; // dropping the transport closes the socket
        }
        let idx = match self.free.pop() {
            Some(idx) => idx,
            None => {
                self.slots.push(None);
                self.slots.len() - 1
            }
        };
        let fd = transport.raw_fd();
        if poll
            .registry()
            .register(
                &mut SourceFd(&fd),
                Token(CONN_BASE + 2 * idx),
                Interest::READABLE,
            )
            .is_err()
        {
            self.free.push(idx);
            return;
        }
        self.slots[idx] = Some(Conn::new(transport, id));
    }

    /// Deregisters and drops one connection (closing its socket).
    fn close(&mut self, poll: &Poll, idx: usize) {
        if let Some(conn) = self.slots.get_mut(idx).and_then(Option::take) {
            let fd = conn.transport.raw_fd();
            let _ = poll.registry().deregister(&mut SourceFd(&fd));
            self.free.push(idx);
        }
    }
}

/// A connected transport. Stays in the blocking-API std types (the shim's
/// [`SourceFd`] registers raw fds); nonblocking mode is set at admit.
enum Transport {
    Tcp(TcpStream),
    Unix(UnixStream),
}

impl Transport {
    fn raw_fd(&self) -> RawFd {
        match self {
            Transport::Tcp(s) => s.as_raw_fd(),
            Transport::Unix(s) => s.as_raw_fd(),
        }
    }

    fn set_nonblocking(&self) -> std::io::Result<()> {
        match self {
            Transport::Tcp(s) => s.set_nonblocking(true),
            Transport::Unix(s) => s.set_nonblocking(true),
        }
    }

    /// Switches to blocking writes with a bounded timeout — only used to
    /// push the `ShuttingDown` reply at exit.
    fn set_blocking_for_flush(&self, timeout: Duration) {
        match self {
            Transport::Tcp(s) => {
                s.set_nonblocking(false).ok();
                s.set_write_timeout(Some(timeout)).ok();
            }
            Transport::Unix(s) => {
                s.set_nonblocking(false).ok();
                s.set_write_timeout(Some(timeout)).ok();
            }
        }
    }

    /// Half-closes the write side: the peer sees EOF after draining our
    /// queued bytes, while we can keep reading (the lingering close that
    /// lets an error frame outrun the disconnect).
    fn shutdown_write(&self) {
        match self {
            Transport::Tcp(s) => {
                s.shutdown(Shutdown::Write).ok();
            }
            Transport::Unix(s) => {
                s.shutdown(Shutdown::Write).ok();
            }
        }
    }
}

impl Read for Transport {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Transport::Tcp(s) => s.read(buf),
            Transport::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Transport {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Transport::Tcp(s) => s.write(buf),
            Transport::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Transport::Tcp(s) => Write::flush(s),
            Transport::Unix(s) => Write::flush(s),
        }
    }
}

/// One connection's state machine.
struct Conn {
    transport: Transport,
    /// Persistent frame reassembly buffer — request payloads land in one
    /// reused allocation for the connection's whole life.
    reader: protocol::FrameReader,
    /// Encoded reply frames not yet accepted by the socket; a partial
    /// write leaves `outbox_head` bytes of the front frame consumed.
    outbox: VecDeque<Vec<u8>>,
    outbox_head: usize,
    /// Unsent bytes across the whole outbox (the backpressure measure).
    outbox_bytes: usize,
    /// The tenant this connection is bound to (`Hello`, or lazily the
    /// sole tenant for wire/2 clients that skip `Hello`).
    tenant: Option<Arc<Tenant>>,
    /// Stable connection id (the accept counter at admit time) stamped
    /// onto recorded frames; unlike the slab slot it is never reused.
    id: u64,
    /// Interest currently registered with the poller.
    registered: Interest,
    /// A fatal error reply is queued: stop reading, flush, half-close.
    closing: bool,
    /// Write side is shut; draining peer bytes until EOF completes the
    /// lingering close.
    lingering: bool,
    /// Peer sent EOF; serve out the outbox, then drop.
    peer_eof: bool,
    /// `(trace_id, server_span)` of the most recent sampled request
    /// whose reply is still in the outbox: the next flush is attributed
    /// to it as a `stage.queued_write` span, then the slot clears.
    pending_write_trace: Option<(u64, u64)>,
}

/// What the event loop should do with a connection after servicing it.
enum Verdict {
    Keep,
    Drop,
}

/// Outcome of pumping buffered frames through the request handler.
enum Pump {
    Continue,
    /// A handler panicked: drop the connection immediately, no reply —
    /// the frame that poisoned it must not be re-served.
    DropNow,
}

impl Conn {
    fn new(transport: Transport, id: u64) -> Self {
        Conn {
            transport,
            reader: protocol::FrameReader::new(),
            outbox: VecDeque::new(),
            outbox_head: 0,
            outbox_bytes: 0,
            tenant: None,
            id,
            registered: Interest::READABLE,
            closing: false,
            lingering: false,
            peer_eof: false,
            pending_write_trace: None,
        }
    }

    /// The interest matching this connection's state: readers want
    /// readable, a non-empty outbox wants writable, a closing connection
    /// only flushes, a lingering one only drains.
    fn desired_interest(&self) -> Interest {
        if self.lingering {
            return Interest::READABLE;
        }
        if self.closing || self.peer_eof {
            return Interest::WRITABLE;
        }
        if self.outbox.is_empty() {
            Interest::READABLE
        } else {
            Interest::READABLE | Interest::WRITABLE
        }
    }

    fn push(&mut self, frame: Vec<u8>) {
        self.outbox_bytes += frame.len();
        self.outbox.push_back(frame);
    }

    /// Queues a reply, enforcing the outbound cap: a reply that would
    /// overflow it is replaced by a typed error and the connection
    /// enters its closing sequence — the slow reader gets told why.
    /// Encode time (serialization + frame assembly) lands in the
    /// `encode` stage histogram and is returned so a traced request can
    /// also attribute it to its `stage.encode` span.
    fn queue(&mut self, response: &Response, shared: &Shared) -> u64 {
        let cap = shared.opts.max_outbound_bytes;
        if self.closing {
            return 0;
        }
        let encode_start = Instant::now();
        let frame = match protocol::encode_frame(&protocol::encode_message(response)) {
            Ok(frame) => frame,
            Err(e) => {
                self.fail(e.to_string());
                return 0;
            }
        };
        let encode_ns = elapsed_ns(encode_start);
        shared.obs.encode.record(encode_ns);
        if self.outbox_bytes + frame.len() > cap {
            self.fail(format!(
                "outbound queue overflow: {} bytes already queued toward a reader \
                 that is not draining them (cap {cap}); disconnecting",
                self.outbox_bytes
            ));
            return encode_ns;
        }
        self.push(frame);
        encode_ns
    }

    /// Queues a typed error and starts the closing sequence: no more
    /// reads, flush the outbox, half-close, linger until the peer is
    /// gone. The error frame itself bypasses the cap — it *is* the
    /// disconnect notice.
    fn fail(&mut self, detail: String) {
        if self.closing {
            return;
        }
        if let Ok(frame) =
            protocol::encode_frame(&protocol::encode_message(&Response::Error { detail }))
        {
            self.push(frame);
        }
        self.closing = true;
    }

    /// Writes queued frames until the socket stops accepting bytes.
    ///
    /// # Errors
    /// A transport failure; the connection is unusable.
    fn flush(&mut self) -> std::io::Result<()> {
        loop {
            let front_len = match self.outbox.front() {
                None => return Ok(()),
                Some(front) => front.len(),
            };
            let wrote = {
                let front = self.outbox.front().expect("front checked above");
                self.transport.write(&front[self.outbox_head..])
            };
            match wrote {
                Ok(0) => return Err(std::io::ErrorKind::WriteZero.into()),
                Ok(n) => {
                    self.outbox_head += n;
                    self.outbox_bytes -= n;
                    if self.outbox_head == front_len {
                        self.outbox.pop_front();
                        self.outbox_head = 0;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return Ok(()),
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }

    /// Reads and discards whatever the peer has sent, without blocking —
    /// the lingering-close drain, and the pre-close drain that lets
    /// `close(2)` send FIN instead of RST. Returns `true` once the peer
    /// reached EOF (or errored): nothing more will arrive.
    fn discard_pending_input(&mut self) -> bool {
        let mut scratch = [0u8; 4096];
        loop {
            match self.transport.read(&mut scratch) {
                Ok(0) => return true,
                Ok(_) => {}
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return false,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => return true,
            }
        }
    }
}

/// Services one readiness event on one connection.
fn service(conn: &mut Conn, event: mio::Event, shared: &Shared, stop: &mut bool) -> Verdict {
    // Writes first: draining the outbox both frees backpressure budget
    // and makes room for replies to the requests read below.
    if event.is_writable() && !conn.outbox.is_empty() && timed_flush(conn, shared).is_err() {
        return Verdict::Drop;
    }
    if conn.lingering {
        if event.is_readable() && conn.discard_pending_input() {
            return Verdict::Drop;
        }
        return Verdict::Keep;
    }
    if event.is_readable() && !conn.closing && !conn.peer_eof {
        if let Pump::DropNow = pump(conn, shared, stop) {
            return Verdict::Drop;
        }
    }
    // Opportunistic flush: most replies leave in the same loop iteration
    // that produced them, without waiting for a writability event.
    if !conn.outbox.is_empty() && timed_flush(conn, shared).is_err() {
        return Verdict::Drop;
    }
    if conn.outbox.is_empty() {
        if conn.peer_eof {
            return Verdict::Drop;
        }
        if conn.closing {
            conn.transport.shutdown_write();
            conn.lingering = true;
        }
    }
    Verdict::Keep
}

/// Drains a connection's outbox, recording the time in the
/// `queued_write` stage histogram — and, when a sampled request's reply
/// is among the queued frames, as that trace's `stage.queued_write`
/// span.
fn timed_flush(conn: &mut Conn, shared: &Shared) -> std::io::Result<()> {
    let flush_start = Instant::now();
    let result = conn.flush();
    let flush_ns = elapsed_ns(flush_start);
    shared.obs.queued_write.record(flush_ns);
    if let Some((trace_id, server_span)) = conn.pending_write_trace.take() {
        if let Some(spans) = &shared.obs.spans {
            let tenant = conn.tenant.as_ref().map(|t| t.name.as_str()).unwrap_or("");
            spans.record(
                &Span::new(
                    trace_id,
                    shared.obs.minter.next(),
                    server_span,
                    "stage.queued_write",
                    tenant,
                )
                .lasting(flush_ns),
            );
        }
    }
    result
}

/// Reads everything the socket has, serving each complete frame as it
/// appears. Frame-level violations (bad version, checksum, shape) queue
/// a typed error and start the closing sequence; request-level failures
/// are ordinary typed replies and the connection lives on.
fn pump(conn: &mut Conn, shared: &Shared, stop: &mut bool) -> Pump {
    loop {
        // Serve every frame already buffered (one fill can deliver many
        // pipelined requests).
        loop {
            if conn.closing {
                return Pump::Continue;
            }
            // `SelectBatch` dominates the frame mix under load; scan it
            // without the generic Value tree, falling back to the full
            // parser for every other (or non-canonical) payload.
            let frame_start = Instant::now();
            let decoded = match conn.reader.pop_frame() {
                Ok(Some(payload)) => match protocol::decode_select_batch(payload) {
                    Some(features) => Ok(Request::SelectBatch {
                        features,
                        trace: None,
                    }),
                    None => protocol::decode_message::<Request>(payload),
                },
                Ok(None) => break,
                Err(e) => {
                    conn.fail(e.to_string());
                    return Pump::Continue;
                }
            };
            let mut request = match decoded {
                Ok(request) => request,
                Err(e) => {
                    conn.fail(e.to_string());
                    return Pump::Continue;
                }
            };
            let decode_ns = elapsed_ns(frame_start);
            shared.obs.decode.record(decode_ns);
            let is_shutdown = matches!(request, Request::Shutdown);
            let batch_len = match &request {
                Request::SelectBatch { features, .. } => Some(features.len()),
                Request::SelectBatchTraced { features, .. } => Some(features.len()),
                _ => None,
            };
            // Sampling decision before dispatch: a traced request has its
            // context re-parented onto the server span so every span the
            // handler records hangs off this request's node in the tree.
            let traced = trace_decision(shared, &mut request, &conn.tenant);
            // Contain handler panics (including injected ones): the
            // poisoned request costs this connection, never the loop.
            let conn_id = conn.id;
            let tenant = &mut conn.tenant;
            let select_start = Instant::now();
            match catch_unwind(AssertUnwindSafe(|| {
                handle_request(shared, tenant, conn_id, request)
            })) {
                Ok(response) => {
                    let select_ns = elapsed_ns(select_start);
                    if batch_len.is_some() {
                        shared.obs.select.record(select_ns);
                    }
                    let encode_ns = conn.queue(&response, shared);
                    // Per-tenant request accounting: one request frame,
                    // its batch size, and the end-to-end latency (decode
                    // through reply queueing) into the tenant's own
                    // wait-free histogram. A sampled request also leaves
                    // its trace id as the histogram's exemplar.
                    if let (Some(n), Some(tenant)) = (batch_len, &conn.tenant) {
                        tenant.obs.requests.incr();
                        tenant.obs.selections.add(n as u64);
                        let total_ns = elapsed_ns(frame_start);
                        match traced {
                            Some((ctx, _)) => {
                                tenant.obs.latency.record_exemplar(total_ns, ctx.trace_id)
                            }
                            None => tenant.obs.latency.record(total_ns),
                        }
                    }
                    if let (Some((ctx, server_span)), Some(spans)) = (traced, &shared.obs.spans) {
                        let tenant_name =
                            conn.tenant.as_ref().map(|t| t.name.as_str()).unwrap_or("");
                        for (name, lasted) in [
                            ("stage.decode", decode_ns),
                            ("stage.select", select_ns),
                            ("stage.encode", encode_ns),
                        ] {
                            spans.record(
                                &Span::new(
                                    ctx.trace_id,
                                    shared.obs.minter.next(),
                                    server_span,
                                    name,
                                    tenant_name,
                                )
                                .lasting(lasted),
                            );
                        }
                        spans.record(
                            &Span::new(
                                ctx.trace_id,
                                server_span,
                                ctx.parent_span,
                                "server.request",
                                tenant_name,
                            )
                            .annotate("conn", conn_id)
                            .annotate("batch", batch_len.unwrap_or(0))
                            .lasting(elapsed_ns(frame_start)),
                        );
                        conn.pending_write_trace = Some((ctx.trace_id, server_span));
                    }
                }
                Err(_) => {
                    eprintln!("intune-daemon: a request handler panicked; connection dropped");
                    return Pump::DropNow;
                }
            }
            if is_shutdown {
                *stop = true;
                return Pump::Continue;
            }
        }
        match conn.reader.fill(&mut conn.transport) {
            Ok(Fill::Bytes(_)) => {}
            Ok(Fill::WouldBlock) => return Pump::Continue,
            Ok(Fill::Closed) => {
                match conn.reader.pending_bytes() {
                    0 => conn.peer_eof = true,
                    n if n < protocol::HEADER_BYTES => {
                        conn.fail("connection closed mid-header".to_string());
                    }
                    _ => conn.fail("connection closed mid-frame".to_string()),
                }
                return Pump::Continue;
            }
            Err(e) => {
                conn.fail(e.to_string());
                return Pump::Continue;
            }
        }
    }
}

/// Decides whether this request is traced, and under which identity.
///
/// A client that shipped a sampled context always wins (head-based
/// sampling: the client already paid the decision); a context with
/// `sampled: false` is an explicit opt-out the daemon honors without
/// re-sampling. A bare batch request consults the tenant's sampler when
/// one is configured, else the daemon-wide one, and on a hit the daemon
/// mints the root itself. Either way the request's embedded context is
/// re-parented onto a freshly minted server span so downstream spans
/// (service, stages) nest under this request. Returns the *incoming*
/// context (original parent) plus the server span id, or `None` for an
/// untraced request. Without a span log, nothing is ever traced.
fn trace_decision(
    shared: &Shared,
    request: &mut Request,
    tenant: &Option<Arc<Tenant>>,
) -> Option<(TraceContext, u64)> {
    shared.obs.spans.as_ref()?;
    let slot = match request {
        Request::SelectBatch { trace, .. } => trace,
        Request::SelectBatchTraced { trace, .. } => trace,
        _ => return None,
    };
    let ctx = match *slot {
        Some(ctx) if ctx.sampled && ctx.trace_id != 0 => ctx,
        Some(_) => return None,
        None => {
            let sampler = tenant
                .as_ref()
                .and_then(|t| t.sampler.as_ref())
                .unwrap_or(&shared.obs.sampler);
            if !sampler.decide() {
                return None;
            }
            TraceContext::root(shared.obs.minter.next())
        }
    };
    let server_span = shared.obs.minter.next();
    *slot = Some(ctx.child_of(server_span));
    Some((ctx, server_span))
}

/// Resolves the tenant a request should be served by: the connection's
/// binding, or — for wire/2 clients that skip `Hello` — the sole tenant,
/// bound lazily.
fn bound(
    shared: &Shared,
    slot: &mut Option<Arc<Tenant>>,
) -> std::result::Result<Arc<Tenant>, String> {
    if let Some(tenant) = slot {
        return Ok(Arc::clone(tenant));
    }
    let tenant = shared.registry.resolve("")?;
    *slot = Some(Arc::clone(&tenant));
    Ok(tenant)
}

/// Records a non-selection request into the tenant's wire recording (a
/// no-op for tenants without one). A full recorder never fails the
/// request — capture is best-effort by design; the sink itself counts
/// and types its drops.
fn tap_control(tenant: &Tenant, conn: u64, kind: &str) {
    if let Some(recorder) = &tenant.recorder {
        recorder.record(
            &tenant.name,
            conn,
            FrameBody::Control {
                kind: kind.to_string(),
            },
        );
    }
}

/// Dispatches one request against the shared state, routing stateful
/// requests through the connection's tenant binding. `conn` is the
/// connection's stable id, stamped onto recorded frames so replay can
/// preserve per-connection ordering.
fn handle_request(
    shared: &Shared,
    tenant: &mut Option<Arc<Tenant>>,
    conn: u64,
    request: Request,
) -> Response {
    match request {
        Request::Hello {
            client: _,
            benchmark,
        } => match shared.registry.resolve(&benchmark) {
            Ok(resolved) => {
                tap_control(&resolved, conn, "Hello");
                let primary = resolved.primary.load();
                let artifact = primary.artifact();
                if let Some(events) = &shared.obs.events {
                    events.record(
                        &resolved.name,
                        artifact.revision,
                        EventKind::TenantBound { conn },
                    );
                }
                let ack = Response::HelloAck {
                    server: SERVER_NAME.to_string(),
                    benchmark: artifact.benchmark.clone(),
                    revision: artifact.revision,
                    artifact_version: ARTIFACT_VERSION,
                    landmarks: artifact.landmarks.len() as u64,
                };
                *tenant = Some(resolved);
                ack
            }
            // An unknown benchmark refuses the *binding*, not the
            // connection: the client may Hello again.
            Err(detail) => Response::Error { detail },
        },
        Request::SelectBatch { features, trace } => match bound(shared, tenant) {
            Ok(tenant) => handle_select(shared, &tenant, conn, &features, &[], trace.as_ref()),
            Err(detail) => Response::Error { detail },
        },
        Request::SelectBatchTraced {
            features,
            payloads,
            trace,
        } => match bound(shared, tenant) {
            Ok(tenant) => {
                handle_select(shared, &tenant, conn, &features, &payloads, trace.as_ref())
            }
            Err(detail) => Response::Error { detail },
        },
        Request::Stats => match bound(shared, tenant) {
            Ok(tenant) => {
                tap_control(&tenant, conn, "Stats");
                Response::StatsReply {
                    stats: snapshot(shared, &tenant),
                }
            }
            Err(detail) => Response::Error { detail },
        },
        // Daemon-wide by design: a monitoring connection need not bind
        // to (or even know) a tenant to read the snapshot.
        Request::Metrics => {
            // A wire snapshot is an operator looking: heartbeat each
            // tenant's latency summary into the event log so recorded
            // timelines carry latency context next to their lifecycle
            // events. (HTTP scrapes don't — a 15-second Prometheus poll
            // would drown the log.)
            if let Some(log) = &shared.obs.events {
                for tenant in shared.registry.tenants() {
                    log.record(
                        &tenant.name,
                        tenant.primary.load().artifact().revision,
                        EventKind::LatencySnapshot {
                            latency: LatencySummary::of(&tenant.obs.latency.snapshot()),
                        },
                    );
                }
            }
            Response::MetricsReply {
                metrics: metrics_snapshot(shared),
            }
        }
        Request::LoadArtifact { document } => match bound(shared, tenant) {
            Ok(tenant) => {
                tap_control(&tenant, conn, "LoadArtifact");
                handle_load(shared, &tenant, &document)
            }
            Err(detail) => Response::Error { detail },
        },
        Request::Promote => match bound(shared, tenant) {
            Ok(tenant) => {
                tap_control(&tenant, conn, "Promote");
                handle_promote(shared, &tenant)
            }
            Err(detail) => Response::Error { detail },
        },
        Request::InjectPanic => {
            if shared.opts.inject_faults {
                panic!("injected fault: client requested a handler panic");
            }
            Response::Error {
                detail: "fault injection is disabled on this daemon".to_string(),
            }
        }
        Request::Shutdown => Response::ShuttingDown,
    }
}

/// Primary answers off a wait-free pointer load; the tenant's shadow (if
/// staged) mirrors *outside* any lock. A shadow whose drift monitor
/// trips — or that cannot score the traffic at all — is auto-rejected
/// afterwards, guarded by `staged_seq` so a newer shadow staged
/// concurrently is never the one dropped. Mirroring a shadow that was
/// replaced while we scored it is harmless: its agreement record dies
/// with its `Arc`.
fn handle_select(
    shared: &Shared,
    tenant: &Tenant,
    conn: u64,
    features: &[FeatureVector],
    payloads: &[serde_json::Value],
    trace: Option<&TraceContext>,
) -> Response {
    // The recorder tap sees the request *before* it is served: a replay
    // must re-pose exactly what arrived, including batches the primary
    // goes on to refuse. Clones happen only on recording tenants. The
    // trace context rides along so a replayed recording reproduces the
    // same trace ids.
    if let Some(recorder) = &tenant.recorder {
        recorder.record(
            &tenant.name,
            conn,
            FrameBody::Select {
                features: features.to_vec(),
                payloads: payloads.to_vec(),
                trace: trace.copied(),
            },
        );
    }
    let primary = tenant.primary.load();
    let selections = match primary.select_vector_batch_observed(features, payloads, trace) {
        Ok(s) => s,
        Err(e) => {
            return Response::Error {
                detail: e.to_string(),
            }
        }
    };
    let staged = {
        let slot = lock_unpoisoned(&tenant.shadow);
        slot.shadow
            .as_ref()
            .map(|s| (Arc::clone(s), slot.staged_seq))
    };
    if let Some((shadow, seq)) = staged {
        let mirror_start = Instant::now();
        let tripped = shadow.mirror(features, &selections).unwrap_or(true);
        if let (Some(ctx), Some(spans)) = (
            trace.filter(|c| c.sampled && c.trace_id != 0),
            &shared.obs.spans,
        ) {
            spans.record(
                &Span::new(
                    ctx.trace_id,
                    shared.obs.minter.next(),
                    ctx.parent_span,
                    "stage.shadow_mirror",
                    &tenant.name,
                )
                .annotate("tripped", tripped)
                .lasting(elapsed_ns(mirror_start)),
            );
        }
        if tripped {
            let mut slot = lock_unpoisoned(&tenant.shadow);
            if slot.staged_seq == seq && slot.shadow.is_some() {
                slot.shadow = None;
                tenant.shadow_rejections.fetch_add(1, Ordering::AcqRel);
                if let Some(events) = &shared.obs.events {
                    events.record(
                        &tenant.name,
                        shadow.service.artifact().revision,
                        EventKind::ShadowAutoRejected {
                            trip_rate: shadow.service.trip_rate(),
                        },
                    );
                }
            }
        }
    }
    Response::Selections { selections }
}

/// Stages a candidate artifact as the tenant's shadow (replacing any
/// previous stage). The candidate must parse (any readable schema
/// version), fit the tenant's benchmark and feature declaration, and
/// pass shape validation. Validation and service construction happen
/// before the slot lock is taken — staging never blocks the select path
/// for longer than a pointer assignment.
fn handle_load(shared: &Shared, tenant: &Tenant, document: &str) -> Response {
    let artifact = match ModelArtifact::from_document(document) {
        Ok(a) => a,
        Err(e) => {
            return Response::Error {
                detail: e.to_string(),
            }
        }
    };
    let primary = tenant.primary.load();
    let primary_artifact = primary.artifact();
    if artifact.benchmark != primary_artifact.benchmark {
        return Response::Error {
            detail: format!(
                "staged artifact serves `{}`, this tenant serves `{}`",
                artifact.benchmark, primary_artifact.benchmark
            ),
        };
    }
    if artifact.feature_defs != primary_artifact.feature_defs {
        return Response::Error {
            detail: "staged artifact declares a different feature space; \
                     it cannot score this tenant's traffic"
                .to_string(),
        };
    }
    let benchmark = artifact.benchmark.clone();
    let revision = artifact.revision;
    let trained_inputs = artifact.trained_inputs;
    let landmarks = primary.landmarks().len();
    match VectorService::new(artifact, shared.opts.shadow_serve.clone()) {
        Ok(service) => {
            let mut slot = lock_unpoisoned(&tenant.shadow);
            slot.shadow = Some(Arc::new(ShadowState::new(service, landmarks)));
            slot.staged_seq += 1;
            drop(slot);
            if let Some(events) = &shared.obs.events {
                events.record(
                    &tenant.name,
                    revision,
                    EventKind::ShadowStaged { trained_inputs },
                );
            }
            Response::Loaded {
                benchmark,
                revision,
            }
        }
        Err(e) => Response::Error {
            detail: e.to_string(),
        },
    }
}

/// Promotes the tenant's staged shadow behind the policy gate. The
/// promoted artifact becomes a fresh primary (counters zeroed),
/// published with a single pointer store — in-flight selects finish on
/// the old primary they already loaded; every later select sees the new
/// one. Refusal leaves the shadow staged; a revalidation failure drops
/// it (it could not be promoted and can no longer be trusted staged).
fn handle_promote(shared: &Shared, tenant: &Tenant) -> Response {
    let mut slot = lock_unpoisoned(&tenant.shadow);
    let Some(shadow) = slot.shadow.take() else {
        return Response::Error {
            detail: "no shadow artifact is staged".to_string(),
        };
    };
    if let Err(reason) = shadow.promotable(&shared.opts.shadow) {
        if let Some(events) = &shared.obs.events {
            events.record(
                &tenant.name,
                shadow.service.artifact().revision,
                EventKind::PromoteRejected {
                    reason: reason.clone(),
                },
            );
        }
        slot.shadow = Some(shadow);
        return Response::Error { detail: reason };
    }
    // The gating counters that justified this promotion, captured before
    // the shadow's record dies with its `Arc` — they ride on the event.
    let gate = shadow.stats();
    let artifact = shadow.service.artifact().clone();
    let revision = artifact.revision;
    match VectorService::new(artifact, shared.opts.serve.clone()) {
        Ok(mut primary) => {
            // The journal follows the primary role, not the artifact: a
            // promoted revision keeps feeding the tenant's trace sink.
            // So does the event log (drift trips, fallback recoveries).
            primary.set_trace(tenant.trace.clone());
            primary.set_events(shared.obs.events.clone());
            primary.set_spans(shared.opts.spans.clone());
            tenant.primary.store(Arc::new(primary));
            tenant.promotions.fetch_add(1, Ordering::AcqRel);
            if let Some(events) = &shared.obs.events {
                events.record(
                    &tenant.name,
                    revision,
                    EventKind::Promoted {
                        mirrored: gate.mirrored,
                        agreed: gate.agreed,
                        agreement_rate: gate.agreement_rate,
                    },
                );
            }
            Response::Promoted { revision }
        }
        Err(e) => {
            let detail = format!("promoted artifact failed revalidation: {e}");
            if let Some(events) = &shared.obs.events {
                events.record(
                    &tenant.name,
                    revision,
                    EventKind::PromoteRejected {
                        reason: detail.clone(),
                    },
                );
            }
            Response::Error { detail }
        }
    }
}

/// Assembles a `Stats` reply for one tenant.
fn snapshot(shared: &Shared, tenant: &Tenant) -> DaemonStats {
    let primary = tenant.primary.load();
    let shadow_stats = lock_unpoisoned(&tenant.shadow)
        .shadow
        .as_ref()
        .map(|s| ShadowState::stats(s));
    DaemonStats {
        benchmark: primary.artifact().benchmark.clone(),
        revision: primary.artifact().revision,
        primary: primary.stats(),
        shadow: shadow_stats,
        shadow_rejections: tenant.shadow_rejections.load(Ordering::Acquire),
        promotions: tenant.promotions.load(Ordering::Acquire),
        connections: shared.connections.load(Ordering::Acquire),
        journaled: tenant
            .trace
            .as_ref()
            .map(|sink| sink.appended())
            .unwrap_or(0),
        recorded: tenant
            .recorder
            .as_ref()
            .map(|sink| sink.appended())
            .unwrap_or(0),
        recorded_dropped: tenant
            .recorder
            .as_ref()
            .map(|sink| sink.dropped())
            .unwrap_or(0),
        tenants: shared.registry.len() as u64,
        latency: LatencySummary::of(&tenant.obs.latency.snapshot()),
    }
}

/// Assembles the daemon-wide `Metrics` reply: stage timings plus every
/// tenant's counters, all read from wait-free snapshots.
fn metrics_snapshot(shared: &Shared) -> MetricsSnapshot {
    let summarize = |h: &Histogram| LatencySummary::of(&h.snapshot());
    MetricsSnapshot {
        stages: StageTimings {
            decode: summarize(&shared.obs.decode),
            select: summarize(&shared.obs.select),
            encode: summarize(&shared.obs.encode),
            queued_write: summarize(&shared.obs.queued_write),
        },
        tenants: shared
            .registry
            .tenants()
            .iter()
            .map(|tenant| {
                let primary = tenant.primary.load();
                let latency = tenant.obs.latency.snapshot();
                TenantMetrics {
                    benchmark: tenant.name.clone(),
                    revision: primary.artifact().revision,
                    requests: tenant.obs.requests.get(),
                    selections: tenant.obs.selections.get(),
                    exemplar: latency
                        .slowest_exemplar()
                        .map(|(value_ns, trace_id)| LatencyExemplar { trace_id, value_ns }),
                    latency: LatencySummary::of(&latency),
                    promotions: tenant.promotions.load(Ordering::Acquire),
                    shadow_rejections: tenant.shadow_rejections.load(Ordering::Acquire),
                }
            })
            .collect(),
        connections: shared.connections.load(Ordering::Acquire),
        events_appended: shared
            .obs
            .events
            .as_ref()
            .map(|log| log.appended())
            .unwrap_or(0),
        events_dropped: shared
            .obs
            .events
            .as_ref()
            .map(|log| log.dropped())
            .unwrap_or(0),
    }
}

/// Renders the metrics snapshot as the Prometheus 0.0.4 text body the
/// `--metrics` scrape endpoint serves.
fn render_metrics_text(shared: &Shared) -> String {
    let mut expo = TextExposition::new();
    for tenant in shared.registry.tenants() {
        let name = tenant.name.as_str();
        expo.counter(
            "intune_requests_total",
            &[("tenant", name)],
            tenant.obs.requests.get(),
        );
        expo.counter(
            "intune_selections_total",
            &[("tenant", name)],
            tenant.obs.selections.get(),
        );
        expo.summary_seconds_with_exemplar(
            "intune_request_seconds",
            &[("tenant", name)],
            &tenant.obs.latency.snapshot(),
        );
        expo.counter(
            "intune_promotions_total",
            &[("tenant", name)],
            tenant.promotions.load(Ordering::Acquire),
        );
        expo.counter(
            "intune_shadow_rejections_total",
            &[("tenant", name)],
            tenant.shadow_rejections.load(Ordering::Acquire),
        );
    }
    for (stage, histogram) in [
        ("decode", &shared.obs.decode),
        ("select", &shared.obs.select),
        ("encode", &shared.obs.encode),
        ("queued_write", &shared.obs.queued_write),
    ] {
        expo.summary_seconds(
            "intune_stage_seconds",
            &[("stage", stage)],
            &histogram.snapshot(),
        );
    }
    expo.counter(
        "intune_connections_total",
        &[],
        shared.connections.load(Ordering::Acquire),
    );
    if let Some(log) = &shared.obs.events {
        expo.counter("intune_events_appended_total", &[], log.appended());
        expo.counter("intune_events_dropped_total", &[], log.dropped());
    }
    expo.gauge("intune_tenants", &[], shared.registry.len() as f64);
    expo.finish()
}
