//! The `intune_daemon` binary: load a model artifact, listen, serve.
//!
//! ```text
//! cargo run --release -p intune_daemon --bin intune_daemon -- \
//!     --artifact artifacts/sort2.model.json [--listen 127.0.0.1:0] \
//!     [--uds /tmp/intune.sock] [--journal DIR] [--journal-segment N] \
//!     [--threads N] [--probe-every N] \
//!     [--radius-factor X] [--drift-threshold X] [--min-observations N] \
//!     [--shadow-drift-threshold X] [--shadow-min-observations N] \
//!     [--min-agreement X] [--min-mirrored N]
//! ```
//!
//! `--journal DIR` appends every served selection (features, chosen
//! landmark, drift outcome, optional client-shipped raw-input payload) to
//! a segmented crash-tolerant log in DIR — the observation half of the
//! continuous-learning loop that `intune_retrain` closes.
//!
//! Prints exactly one `listening on ADDR` line to stdout once bound (so
//! scripts can grab the resolved ephemeral port), then serves until a
//! client sends `Shutdown`. `--drift-threshold 1` disables the fallback
//! policy (the out-of-distribution fraction can never strictly exceed 1),
//! which CI uses to pin byte-determinism of remote evaluation. Worker
//! threads default to `INTUNE_THREADS` (hardened parse) or 1.

use intune_daemon::{Daemon, DaemonOptions, ListenConfig, ShadowPolicy};
use intune_serve::{JournalOptions, JournalSink, ModelArtifact, ServeOptions};
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::Arc;

fn main() {
    let mut artifact_path: Option<PathBuf> = None;
    let mut journal_dir: Option<PathBuf> = None;
    let mut journal_segment = JournalOptions::default().segment_max_records;
    let mut listen = ListenConfig::default();
    let mut serve = ServeOptions {
        threads: intune_exec::threads_from_env_or_exit(1),
        ..ServeOptions::default()
    };
    // Staged shadows keep their own (default: armed) drift monitor even
    // when the primary's fallback is pinned off.
    let mut shadow_serve = ServeOptions::default();
    let mut shadow = ShadowPolicy::default();

    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let flag = argv[i].as_str();
        match flag {
            "--help" | "-h" => usage(),
            _ => {
                i += 1;
                let value = argv
                    .get(i)
                    .unwrap_or_else(|| die(&format!("{flag} needs a value")));
                match flag {
                    "--artifact" => artifact_path = Some(PathBuf::from(value)),
                    "--journal" => journal_dir = Some(PathBuf::from(value)),
                    "--journal-segment" => journal_segment = parse(flag, value),
                    "--listen" => listen.tcp = value.clone(),
                    "--uds" => listen.uds = Some(PathBuf::from(value)),
                    "--threads" => serve.threads = parse(flag, value),
                    "--probe-every" => serve.probe_every = parse(flag, value),
                    "--radius-factor" => serve.radius_factor = parse(flag, value),
                    "--drift-threshold" => serve.drift_threshold = parse(flag, value),
                    "--min-observations" => serve.min_observations = parse(flag, value),
                    "--shadow-drift-threshold" => shadow_serve.drift_threshold = parse(flag, value),
                    "--shadow-min-observations" => {
                        shadow_serve.min_observations = parse(flag, value)
                    }
                    "--min-agreement" => shadow.min_agreement = parse(flag, value),
                    "--min-mirrored" => shadow.min_mirrored = parse(flag, value),
                    other => die(&format!("unknown flag {other}")),
                }
            }
        }
        i += 1;
    }
    let artifact_path = artifact_path.unwrap_or_else(|| die("--artifact PATH is required"));

    let artifact = ModelArtifact::load(&artifact_path).unwrap_or_else(|e| die(&e.to_string()));
    eprintln!(
        "loaded {} (benchmark `{}`, revision {}, {} landmarks, {} worker threads)",
        artifact_path.display(),
        artifact.benchmark,
        artifact.revision,
        artifact.landmarks.len(),
        serve.threads
    );
    shadow_serve.threads = serve.threads;
    let trace = journal_dir.map(|dir| {
        let sink = JournalSink::open(
            &dir,
            JournalOptions {
                segment_max_records: journal_segment,
                ..JournalOptions::default()
            },
        )
        .unwrap_or_else(|e| die(&e.to_string()));
        eprintln!("journaling served selections to {}", dir.display());
        Arc::new(sink) as Arc<dyn intune_serve::TraceSink>
    });
    let daemon = Daemon::bind(
        artifact,
        DaemonOptions {
            serve,
            shadow_serve,
            shadow,
            trace,
            inject_faults: false,
        },
        &listen,
    )
    .unwrap_or_else(|e| die(&e.to_string()));
    println!("listening on {}", daemon.tcp_addr());
    if let Some(path) = &listen.uds {
        eprintln!("also listening on unix:{}", path.display());
    }
    std::io::stdout().flush().ok();
    daemon.run().unwrap_or_else(|e| die(&e.to_string()));
    eprintln!("daemon exited cleanly");
}

fn parse<T: std::str::FromStr>(flag: &str, value: &str) -> T {
    value
        .parse()
        .unwrap_or_else(|_| die(&format!("{flag}: cannot parse `{value}`")))
}

fn usage() -> ! {
    eprintln!(
        "usage: intune_daemon --artifact PATH [--listen ADDR] [--uds PATH] \
         [--journal DIR] [--journal-segment N] \
         [--threads N] [--probe-every N] [--radius-factor X] \
         [--drift-threshold X] [--min-observations N] \
         [--shadow-drift-threshold X] [--shadow-min-observations N] \
         [--min-agreement X] [--min-mirrored N]"
    );
    std::process::exit(0)
}

fn die(message: &str) -> ! {
    eprintln!("error: {message}");
    std::process::exit(2)
}
