//! The `intune_daemon` binary: load model artifacts, listen, serve.
//!
//! ```text
//! cargo run --release -p intune_daemon --bin intune_daemon -- \
//!     --artifact artifacts/sort2.model.json [--artifact MORE.json ...] \
//!     [--listen 127.0.0.1:0] \
//!     [--uds /tmp/intune.sock] [--journal DIR] [--journal-segment N] \
//!     [--record DIR] [--record-segment N] \
//!     [--metrics 127.0.0.1:0] [--events events.log] \
//!     [--spans DIR] [--trace-sample N] \
//!     [--threads N] [--probe-every N] \
//!     [--radius-factor X] [--drift-threshold X] [--min-observations N] \
//!     [--shadow-drift-threshold X] [--shadow-min-observations N] \
//!     [--min-agreement X] [--min-mirrored N] [--max-outbound-bytes N]
//! ```
//!
//! `--artifact` is repeatable: each artifact becomes one serving tenant,
//! keyed by its benchmark name, all served out of one readiness-driven
//! event loop. Clients route with `Hello { benchmark }`
//! (`DaemonClient::connect_to`); single-tenant daemons keep accepting
//! the anonymous handshake.
//!
//! `--journal DIR` appends every served selection (features, chosen
//! landmark, drift outcome, optional client-shipped raw-input payload) to
//! a segmented crash-tolerant log — the observation half of the
//! continuous-learning loop that `intune_retrain` closes. With one
//! tenant the journal lives in DIR itself (compatible with existing
//! tooling); with several, each tenant journals to `DIR/<benchmark>/`
//! so the retrainer consumes one corpus per benchmark.
//!
//! `--record DIR` taps every inbound request frame (selections *and*
//! control traffic) into a segmented `intune-datalog/1` wire recording
//! that `intune_replay` can stream back for divergence checking. The
//! directory layout mirrors `--journal`: the sole tenant records into
//! DIR itself, several tenants into `DIR/<benchmark>/`.
//!
//! `--spans DIR` appends sampled request spans to
//! `DIR/intune-daemon.spans.log` (`intune-obs-span/1`); `--trace-sample N`
//! self-samples 1-in-N un-traced batch requests (0, the default, traces
//! only requests whose clients shipped a sampled context). `intune_trace`
//! reassembles the per-process logs in DIR into trace trees.
//!
//! Prints exactly one `listening on ADDR` line to stdout once bound (so
//! scripts can grab the resolved ephemeral port), then serves until a
//! client sends `Shutdown`. `--drift-threshold 1` disables the fallback
//! policy (the out-of-distribution fraction can never strictly exceed 1),
//! which CI uses to pin byte-determinism of remote evaluation. Worker
//! threads default to `INTUNE_THREADS` (hardened parse) or 1.

use intune_daemon::{Daemon, DaemonOptions, ListenConfig, TenantSpec};
use intune_datalog::{RecorderSink, RecordingOptions};
use intune_obs::{EventLog, SpanLog};
use intune_serve::{JournalOptions, JournalSink, ModelArtifact, ServeOptions, TraceSink};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Arc;

fn main() {
    let mut artifact_paths: Vec<PathBuf> = Vec::new();
    let mut journal_dir: Option<PathBuf> = None;
    let mut journal_segment = JournalOptions::default().segment_max_records;
    let mut record_dir: Option<PathBuf> = None;
    let mut record_segment = RecordingOptions::default().segment_max_frames;
    let mut listen = ListenConfig::default();
    let mut opts = DaemonOptions {
        serve: ServeOptions {
            threads: intune_exec::threads_from_env_or_exit(1),
            ..ServeOptions::default()
        },
        ..DaemonOptions::default()
    };
    // Staged shadows keep their own (default: armed) drift monitor even
    // when the primary's fallback is pinned off.

    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let flag = argv[i].as_str();
        match flag {
            "--help" | "-h" => usage(),
            _ => {
                i += 1;
                let value = argv
                    .get(i)
                    .unwrap_or_else(|| die(&format!("{flag} needs a value")));
                match flag {
                    "--artifact" => artifact_paths.push(PathBuf::from(value)),
                    "--journal" => journal_dir = Some(PathBuf::from(value)),
                    "--journal-segment" => journal_segment = parse(flag, value),
                    "--record" => record_dir = Some(PathBuf::from(value)),
                    "--record-segment" => record_segment = parse(flag, value),
                    "--listen" => listen.tcp = value.clone(),
                    "--uds" => listen.uds = Some(PathBuf::from(value)),
                    "--metrics" => listen.metrics = Some(value.clone()),
                    "--events" => {
                        let log = EventLog::open(Path::new(value))
                            .unwrap_or_else(|e| die(&e.to_string()));
                        eprintln!("journaling lifecycle events to {value}");
                        opts.events = Some(Arc::new(log));
                    }
                    "--spans" => {
                        let dir = PathBuf::from(value);
                        std::fs::create_dir_all(&dir).unwrap_or_else(|e| {
                            die(&format!("cannot create span dir {value}: {e}"))
                        });
                        let path = dir.join("intune-daemon.spans.log");
                        let log = SpanLog::open(&path).unwrap_or_else(|e| die(&e.to_string()));
                        eprintln!("recording sampled spans to {}", path.display());
                        opts.spans = Some(Arc::new(log));
                    }
                    "--trace-sample" => opts.trace_sample = parse(flag, value),
                    "--threads" => opts.serve.threads = parse(flag, value),
                    "--probe-every" => opts.serve.probe_every = parse(flag, value),
                    "--radius-factor" => opts.serve.radius_factor = parse(flag, value),
                    "--drift-threshold" => opts.serve.drift_threshold = parse(flag, value),
                    "--min-observations" => opts.serve.min_observations = parse(flag, value),
                    "--shadow-drift-threshold" => {
                        opts.shadow_serve.drift_threshold = parse(flag, value)
                    }
                    "--shadow-min-observations" => {
                        opts.shadow_serve.min_observations = parse(flag, value)
                    }
                    "--min-agreement" => opts.shadow.min_agreement = parse(flag, value),
                    "--min-mirrored" => opts.shadow.min_mirrored = parse(flag, value),
                    "--max-outbound-bytes" => opts.max_outbound_bytes = parse(flag, value),
                    other => die(&format!("unknown flag {other}")),
                }
            }
        }
        i += 1;
    }
    if artifact_paths.is_empty() {
        die("--artifact PATH is required (repeat for multiple tenants)");
    }

    let multi_tenant = artifact_paths.len() > 1;
    let specs: Vec<TenantSpec> = artifact_paths
        .iter()
        .map(|path| {
            let artifact = ModelArtifact::load(path).unwrap_or_else(|e| die(&e.to_string()));
            eprintln!(
                "loaded {} (benchmark `{}`, revision {}, {} landmarks, {} worker threads)",
                path.display(),
                artifact.benchmark,
                artifact.revision,
                artifact.landmarks.len(),
                opts.serve.threads
            );
            let trace = journal_dir.as_ref().map(|dir| {
                // Sole tenant journals to DIR itself (the pre-multi-tenant
                // layout existing tooling reads); several tenants get one
                // journal per benchmark under it.
                let tenant_dir = if multi_tenant {
                    dir.join(&artifact.benchmark)
                } else {
                    dir.clone()
                };
                open_journal(&tenant_dir, journal_segment)
            });
            let recorder = record_dir.as_ref().map(|dir| {
                // Same layout rule as the journal: sole tenant records
                // into DIR itself, several tenants one dir per benchmark.
                let tenant_dir = if multi_tenant {
                    dir.join(&artifact.benchmark)
                } else {
                    dir.clone()
                };
                open_recorder(&tenant_dir, record_segment)
            });
            TenantSpec {
                artifact,
                trace,
                recorder,
                trace_sample: None,
            }
        })
        .collect();
    opts.shadow_serve.threads = opts.serve.threads;
    let daemon = Daemon::bind_tenants(specs, opts, &listen).unwrap_or_else(|e| die(&e.to_string()));
    println!("listening on {}", daemon.tcp_addr());
    if let Some(addr) = daemon.metrics_addr() {
        // On stdout like the wire line: scripts scrape the resolved port.
        println!("metrics on {addr}");
    }
    if let Some(path) = &listen.uds {
        eprintln!("also listening on unix:{}", path.display());
    }
    std::io::stdout().flush().ok();
    daemon.run().unwrap_or_else(|e| die(&e.to_string()));
    eprintln!("daemon exited cleanly");
}

fn open_journal(dir: &Path, segment_max_records: usize) -> Arc<dyn TraceSink> {
    let sink = JournalSink::open(
        dir,
        JournalOptions {
            segment_max_records,
            ..JournalOptions::default()
        },
    )
    .unwrap_or_else(|e| die(&e.to_string()));
    eprintln!("journaling served selections to {}", dir.display());
    Arc::new(sink)
}

fn open_recorder(dir: &Path, segment_max_frames: usize) -> Arc<RecorderSink> {
    let sink = RecorderSink::open(
        dir,
        RecordingOptions {
            segment_max_frames,
            ..RecordingOptions::default()
        },
    )
    .unwrap_or_else(|e| die(&e.to_string()));
    eprintln!("recording wire traffic to {}", dir.display());
    Arc::new(sink)
}

fn parse<T: std::str::FromStr>(flag: &str, value: &str) -> T {
    value
        .parse()
        .unwrap_or_else(|_| die(&format!("{flag}: cannot parse `{value}`")))
}

fn usage() -> ! {
    eprintln!(
        "usage: intune_daemon --artifact PATH [--artifact PATH ...] \
         [--listen ADDR] [--uds PATH] \
         [--metrics ADDR] [--events PATH] \
         [--spans DIR] [--trace-sample N] \
         [--journal DIR] [--journal-segment N] \
         [--record DIR] [--record-segment N] \
         [--threads N] [--probe-every N] [--radius-factor X] \
         [--drift-threshold X] [--min-observations N] \
         [--shadow-drift-threshold X] [--shadow-min-observations N] \
         [--min-agreement X] [--min-mirrored N] [--max-outbound-bytes N]"
    );
    std::process::exit(0)
}

fn die(message: &str) -> ! {
    eprintln!("error: {message}");
    std::process::exit(2)
}
