//! The `intune_replay` binary: stream a wire recording back at a
//! selection target and check for divergence.
//!
//! ```text
//! cargo run --release -p intune_daemon --bin intune_replay -- \
//!     --recording DIR \
//!     (--daemon ADDR | --artifact PATH) \
//!     [--artifact-b PATH] [--b-pin-fallback] [--check] \
//!     [--speed X] [--transcript PATH] [--window N] \
//!     [--threads N] [--probe-every N] [--radius-factor X] \
//!     [--drift-threshold X] [--min-observations N]
//! ```
//!
//! Side A replays the recording against a live daemon (`--daemon`) or an
//! in-process service built from an artifact file (`--artifact`).
//! `--speed 0` (the default) replays as fast as possible, pipelining
//! runs of selection frames; `--speed 1.0` reproduces the recorded
//! inter-frame timing, `2.0` plays it twice as fast.
//!
//! A side B (`--artifact-b`, or `--b-pin-fallback` to replay side A's
//! artifact with every answer pinned to its fallback landmark — a
//! guaranteed-divergent control) turns the run into a divergence check:
//! both sides answer the same captured traffic and the selections are
//! byte-compared. With `--check` a divergence exits 4 (0 when clean,
//! 2 on any operational error), so CI can gate on "the new revision
//! answers yesterday's traffic identically".
//!
//! Divergence checks run **in-process** on purpose: replaying one live
//! daemon twice would thread the first pass's drift-monitor state into
//! the second, reporting phantom divergence that no revision caused.
//! `--daemon` is therefore side A only.

use intune_core::{Error, FeatureVector, Result};
use intune_daemon::DaemonClient;
use intune_datalog::{
    divergence, load_recording, replay, DivergenceReport, RecordedFrame, ReplayOptions,
    ReplayOutcome, ReplayTarget,
};
use intune_serve::{ModelArtifact, Selection, ServeOptions, VectorService};
use serde_json::Value;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, PoisonError};

/// Default pipeline window for wire replay: deep enough to hide
/// round-trip latency, shallow enough that neither side's bounded
/// buffers fill while replies go undrained.
const DEFAULT_WINDOW: usize = 16;

/// Exit status when `--check` finds diverging answers.
const EXIT_DIVERGED: i32 = 4;

/// A live daemon as a replay target: one pipelined connection per
/// tenant, created lazily at the first frame addressed to it.
struct WireTarget {
    addr: String,
    window: usize,
    clients: Mutex<HashMap<String, Arc<DaemonClient>>>,
}

impl WireTarget {
    fn new(addr: &str, window: usize) -> Self {
        WireTarget {
            addr: addr.to_string(),
            window,
            clients: Mutex::new(HashMap::new()),
        }
    }

    fn client(&self, tenant: &str) -> Result<Arc<DaemonClient>> {
        let mut clients = self.clients.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(client) = clients.get(tenant) {
            return Ok(Arc::clone(client));
        }
        let client = Arc::new(DaemonClient::connect_to(&self.addr, tenant)?);
        clients.insert(tenant.to_string(), Arc::clone(&client));
        Ok(client)
    }
}

impl ReplayTarget for WireTarget {
    fn select(
        &self,
        tenant: &str,
        features: &[FeatureVector],
        payloads: &[Value],
    ) -> Result<Vec<Selection>> {
        self.client(tenant)?.select_batch_traced(features, payloads)
    }

    /// Pipelines the run: frames are partitioned per tenant (each tenant
    /// has its own connection, so per-connection ordering is preserved
    /// exactly as recorded) and streamed with up to `window` requests in
    /// flight, then reassembled into frame order.
    fn select_run(&self, frames: &[&RecordedFrame]) -> Result<Vec<Vec<Selection>>> {
        let mut by_tenant: Vec<(&str, Vec<usize>)> = Vec::new();
        for (i, frame) in frames.iter().enumerate() {
            match by_tenant.iter_mut().find(|(t, _)| *t == frame.tenant) {
                Some((_, indexes)) => indexes.push(i),
                None => by_tenant.push((frame.tenant.as_str(), vec![i])),
            }
        }
        let mut out: Vec<Option<Vec<Selection>>> = vec![None; frames.len()];
        for (tenant, indexes) in by_tenant {
            let client = self.client(tenant)?;
            let batches: Vec<(&[FeatureVector], &[Value])> = indexes
                .iter()
                .map(|&i| {
                    frames[i]
                        .body
                        .select_parts()
                        .ok_or_else(|| Error::artifact("control frame in a selection run"))
                })
                .collect::<Result<_>>()?;
            let answers = client.select_batch_pipelined(&batches, self.window)?;
            for (i, selections) in indexes.into_iter().zip(answers) {
                out[i] = Some(selections);
            }
        }
        Ok(out
            .into_iter()
            .map(|o| o.expect("frame answered"))
            .collect())
    }
}

/// A target whose every answer is overridden to the fallback landmark —
/// a guaranteed-deterministic divergent side B for exercising the check
/// path (CI proves the exit code fires without needing a genuinely
/// retrained artifact).
struct PinnedFallback {
    inner: VectorService,
    fallback: usize,
}

impl ReplayTarget for PinnedFallback {
    fn select(
        &self,
        tenant: &str,
        features: &[FeatureVector],
        payloads: &[Value],
    ) -> Result<Vec<Selection>> {
        let mut selections = self.inner.select(tenant, features, payloads)?;
        for s in &mut selections {
            s.landmark = self.fallback;
            s.fell_back = true;
        }
        Ok(selections)
    }
}

fn main() {
    let mut recording_dir: Option<PathBuf> = None;
    let mut daemon_addr: Option<String> = None;
    let mut artifact_path: Option<PathBuf> = None;
    let mut artifact_b_path: Option<PathBuf> = None;
    let mut b_pin_fallback = false;
    let mut check = false;
    let mut speed = 0.0f64;
    let mut transcript_path: Option<PathBuf> = None;
    let mut window = DEFAULT_WINDOW;
    let mut serve = ServeOptions {
        threads: intune_exec::threads_from_env_or_exit(1),
        ..ServeOptions::default()
    };

    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let flag = argv[i].as_str();
        match flag {
            "--help" | "-h" => usage(),
            "--b-pin-fallback" => b_pin_fallback = true,
            "--check" => check = true,
            _ => {
                i += 1;
                let value = argv
                    .get(i)
                    .unwrap_or_else(|| die(&format!("{flag} needs a value")));
                match flag {
                    "--recording" => recording_dir = Some(PathBuf::from(value)),
                    "--daemon" => daemon_addr = Some(value.clone()),
                    "--artifact" => artifact_path = Some(PathBuf::from(value)),
                    "--artifact-b" => artifact_b_path = Some(PathBuf::from(value)),
                    "--speed" => speed = parse(flag, value),
                    "--transcript" => transcript_path = Some(PathBuf::from(value)),
                    "--window" => window = parse(flag, value),
                    "--threads" => serve.threads = parse(flag, value),
                    "--probe-every" => serve.probe_every = parse(flag, value),
                    "--radius-factor" => serve.radius_factor = parse(flag, value),
                    "--drift-threshold" => serve.drift_threshold = parse(flag, value),
                    "--min-observations" => serve.min_observations = parse(flag, value),
                    other => die(&format!("unknown flag {other}")),
                }
            }
        }
        i += 1;
    }

    let recording_dir = recording_dir.unwrap_or_else(|| die("--recording DIR is required"));
    if daemon_addr.is_some() == artifact_path.is_some() {
        die("pick exactly one of --daemon ADDR or --artifact PATH for side A");
    }
    if speed < 0.0 || !speed.is_finite() {
        die("--speed must be a finite value >= 0");
    }

    let recording = load_recording(&recording_dir).unwrap_or_else(|e| die(&e.to_string()));
    eprintln!(
        "loaded {} frames from {} ({} segments, {} torn)",
        recording.frames.len(),
        recording_dir.display(),
        recording.segments,
        recording.torn_segments
    );

    let target_a: Box<dyn ReplayTarget> = match (&daemon_addr, &artifact_path) {
        (Some(addr), _) => Box::new(WireTarget::new(addr, window)),
        (None, Some(path)) => Box::new(service(path, &serve)),
        (None, None) => unreachable!("validated above"),
    };
    let target_b: Option<Box<dyn ReplayTarget>> = match (&artifact_b_path, b_pin_fallback) {
        (Some(path), false) => Some(Box::new(service(path, &serve))),
        (base, true) => {
            // Pinning needs an in-process service to know the fallback
            // landmark; base on --artifact-b when given, else side A's
            // artifact.
            let path = base.as_ref().or(artifact_path.as_ref()).unwrap_or_else(|| {
                die("--b-pin-fallback needs --artifact or --artifact-b (an artifact file)")
            });
            let inner = service(path, &serve);
            let fallback = inner.artifact().fallback;
            Some(Box::new(PinnedFallback { inner, fallback }))
        }
        (None, false) => None,
    };
    if check && target_b.is_none() {
        die("--check needs a side B: --artifact-b PATH or --b-pin-fallback");
    }

    let opts = ReplayOptions { speed };
    let outcome_a =
        replay(&recording.frames, target_a.as_ref(), &opts).unwrap_or_else(|e| die(&e.to_string()));
    eprintln!(
        "side A answered {} selection frames ({} selections, {} control frames skipped)",
        outcome_a.results.len(),
        outcome_a.selections(),
        outcome_a.control_skipped
    );
    if let Some(path) = &transcript_path {
        std::fs::write(path, outcome_a.transcript())
            .unwrap_or_else(|e| die(&format!("cannot write {}: {e}", path.display())));
        eprintln!("transcript written to {}", path.display());
    }

    let Some(target_b) = target_b else {
        return;
    };
    let outcome_b =
        replay(&recording.frames, target_b.as_ref(), &opts).unwrap_or_else(|e| die(&e.to_string()));
    let report = divergence(&outcome_a, &outcome_b);
    print_report(&report, &outcome_a, &outcome_b);
    if check && !report.clean() {
        std::process::exit(EXIT_DIVERGED);
    }
}

fn service(path: &Path, serve: &ServeOptions) -> VectorService {
    let artifact = ModelArtifact::load(path).unwrap_or_else(|e| die(&e.to_string()));
    eprintln!(
        "loaded {} (benchmark `{}`, revision {})",
        path.display(),
        artifact.benchmark,
        artifact.revision
    );
    VectorService::new(artifact, serve.clone()).unwrap_or_else(|e| die(&e.to_string()))
}

fn print_report(report: &DivergenceReport, a: &ReplayOutcome, b: &ReplayOutcome) {
    println!(
        "compared {} frames / {} selections: {} diverged in {} frames",
        report.frames, report.selections, report.diverged, report.diverged_frames
    );
    println!(
        "fallbacks: side A {}, side B {}; shape mismatch: {}; control skipped: {}/{}",
        report.fallbacks_a,
        report.fallbacks_b,
        report.shape_mismatch,
        a.control_skipped,
        b.control_skipped
    );
    match &report.first {
        Some(first) => println!(
            "first divergence: seq {} conn {} tenant {} selection {}\n  a: {}\n  b: {}",
            first.seq, first.conn, first.tenant, first.index, first.a, first.b
        ),
        None if report.clean() => println!("replays are byte-identical"),
        None => {}
    }
}

fn parse<T: std::str::FromStr>(flag: &str, value: &str) -> T {
    value
        .parse()
        .unwrap_or_else(|_| die(&format!("{flag}: cannot parse `{value}`")))
}

fn usage() -> ! {
    eprintln!(
        "usage: intune_replay --recording DIR (--daemon ADDR | --artifact PATH) \
         [--artifact-b PATH] [--b-pin-fallback] [--check] \
         [--speed X] [--transcript PATH] [--window N] \
         [--threads N] [--probe-every N] [--radius-factor X] \
         [--drift-threshold X] [--min-observations N]"
    );
    std::process::exit(0)
}

fn die(message: &str) -> ! {
    eprintln!("error: {message}");
    std::process::exit(2)
}
