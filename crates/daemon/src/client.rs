//! The blocking `intune-wire/2` client.
//!
//! One connection, one request in flight: every call sends a frame and
//! blocks for the matching response. The connection keeps a persistent
//! [`protocol::FrameReader`], so response payloads land in one reusable
//! buffer instead of a fresh allocation per frame. The client implements
//! [`SelectionBackend`], so `table1 --daemon ADDR` can score a running
//! daemon in place of the in-process production classifier — and prove
//! the answers byte-identical.

use crate::protocol::{self, DaemonStats, MetricsSnapshot, Request, Response};
use intune_core::{Error, FeatureVector, Result, TraceContext};
use intune_learning::pipeline::SelectionBackend;
use intune_obs::{IdMinter, Sampler, Span, SpanLog};
use intune_serve::{ModelArtifact, Selection};
use std::io::{Read, Write};
use std::net::TcpStream;
#[cfg(unix)]
use std::os::unix::net::UnixStream;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Address prefix selecting a Unix-domain socket connection
/// (`unix:/path/to.sock`); anything else is dialed as TCP `host:port`.
pub const UNIX_PREFIX: &str = "unix:";

enum Conn {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(UnixStream),
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Conn::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Conn::Unix(s) => s.flush(),
        }
    }
}

/// Facts the daemon reported in its `HelloAck`.
#[derive(Debug, Clone)]
pub struct ServerInfo {
    /// Server self-identification.
    pub server: String,
    /// `Benchmark::name()` of the served model.
    pub benchmark: String,
    /// Rollout revision of the primary artifact at connect time.
    pub revision: u64,
    /// Artifact schema version the daemon writes.
    pub artifact_version: u32,
    /// Number of landmarks in the primary model at connect time.
    pub landmarks: u64,
}

/// One connection's I/O state: the stream plus its persistent frame
/// reader (reused response buffer).
struct Io {
    conn: Conn,
    reader: protocol::FrameReader,
}

/// A blocking daemon connection. All methods take `&self` (the stream
/// sits behind a mutex), so one client can be shared across the eval
/// harness's call sites. The mutex recovers from poisoning — a panic in
/// one caller leaves a connection in an unknown framing state, which the
/// next request surfaces as a wire error rather than a cascading panic.
pub struct DaemonClient {
    io: Mutex<Io>,
    info: ServerInfo,
    tracing: Option<ClientTracing>,
}

/// Client-side head sampling: the sampler decides, the minter names, and
/// the span log receives the `client.select_batch` span that anchors the
/// cross-process trace tree.
struct ClientTracing {
    sampler: Sampler,
    minter: IdMinter,
    spans: Arc<SpanLog>,
}

impl ClientTracing {
    /// One sampling decision: `Some((context-to-send, client-span-id))`
    /// on a hit. The context is already parented on the client span, so
    /// the daemon's `server.request` nests under it.
    fn sample(&self) -> Option<(TraceContext, u64)> {
        if !self.sampler.decide() {
            return None;
        }
        let trace_id = self.minter.next();
        let span_id = self.minter.next();
        Some((TraceContext::root(trace_id).child_of(span_id), span_id))
    }
}

impl DaemonClient {
    /// Dials `addr` (TCP `host:port`, or `unix:/path` for a Unix-domain
    /// socket) and performs the `Hello` handshake against the daemon's
    /// sole tenant — the single-benchmark convenience over
    /// [`DaemonClient::connect_to`]. A multi-tenant daemon refuses the
    /// anonymous handshake with a typed error naming its benchmarks.
    ///
    /// # Errors
    /// Returns [`Error::Wire`] on connect/handshake failure.
    pub fn connect(addr: &str) -> Result<Self> {
        DaemonClient::connect_to(addr, "")
    }

    /// Dials `addr` and binds the connection to the tenant serving
    /// `benchmark` (a `Benchmark::name()`; the empty string means "the
    /// sole tenant"). Every request on this client is routed to that
    /// tenant.
    ///
    /// # Errors
    /// Returns [`Error::Wire`] on connect failure, and a typed
    /// `daemon refused` error (naming the registered benchmarks) when
    /// `benchmark` is unknown to the daemon.
    pub fn connect_to(addr: &str, benchmark: &str) -> Result<Self> {
        let conn = if let Some(path) = addr.strip_prefix(UNIX_PREFIX) {
            #[cfg(unix)]
            {
                Conn::Unix(
                    UnixStream::connect(path)
                        .map_err(|e| Error::wire(format!("cannot connect to {addr}: {e}")))?,
                )
            }
            #[cfg(not(unix))]
            {
                let _ = path;
                return Err(Error::wire("unix-domain sockets are unix-only"));
            }
        } else {
            let stream = TcpStream::connect(addr)
                .map_err(|e| Error::wire(format!("cannot connect to {addr}: {e}")))?;
            stream.set_nodelay(true).ok();
            Conn::Tcp(stream)
        };
        let mut io = Io {
            conn,
            reader: protocol::FrameReader::new(),
        };
        let response = roundtrip(
            &mut io,
            &Request::Hello {
                client: format!("intune-client/{}", std::process::id()),
                benchmark: benchmark.to_string(),
            },
        )?;
        let Response::HelloAck {
            server,
            benchmark,
            revision,
            artifact_version,
            landmarks,
        } = response
        else {
            return Err(unexpected("HelloAck", &response));
        };
        Ok(DaemonClient {
            io: Mutex::new(io),
            info: ServerInfo {
                server,
                benchmark,
                revision,
                artifact_version,
                landmarks,
            },
            tracing: None,
        })
    }

    /// What the daemon reported at connect time.
    pub fn info(&self) -> &ServerInfo {
        &self.info
    }

    /// Turns on head-based trace sampling: 1-in-`every` selection
    /// requests (0 = none, 1 = all) carry a freshly minted trace context
    /// onto the wire, and each sampled request records a
    /// `client.select_batch` root span into `spans`. Ids are minted from
    /// a per-connection deterministic counter — no wall clock.
    pub fn enable_tracing(&mut self, every: u64, spans: Arc<SpanLog>) {
        self.tracing = Some(ClientTracing {
            sampler: Sampler::new(every),
            minter: IdMinter::new(&format!(
                "{}/{}/{}",
                self.info.server,
                self.info.benchmark,
                std::process::id()
            )),
            spans,
        });
    }

    /// Records the client-side root span for one sampled round trip.
    fn record_client_span(&self, ctx: &TraceContext, span_id: u64, batch: usize, started: Instant) {
        if let Some(tracing) = &self.tracing {
            tracing.spans.record(
                &Span::new(
                    ctx.trace_id,
                    span_id,
                    0,
                    "client.select_batch",
                    &self.info.benchmark,
                )
                .annotate("batch", batch)
                .lasting(elapsed_ns(started)),
            );
        }
    }

    fn roundtrip(&self, request: &Request) -> Result<Response> {
        let mut io = self
            .io
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        roundtrip(&mut io, request)
    }

    /// Selects a landmark for every fully-extracted feature vector.
    ///
    /// # Errors
    /// Returns [`Error::Wire`] on transport failure or a server-side
    /// rejection (ill-shaped vectors).
    pub fn select_batch(&self, features: &[FeatureVector]) -> Result<Vec<Selection>> {
        let sampled = self.tracing.as_ref().and_then(ClientTracing::sample);
        let started = Instant::now();
        // Encoded from the borrowed slice: no clone of the batch on the
        // hot path. A sampled request takes the trace-carrying encoder —
        // byte-identical except for the appended `trace` field.
        let body = match &sampled {
            Some((ctx, _)) => protocol::encode_select_batch_with_trace(features, ctx),
            None => protocol::encode_select_batch(features),
        };
        let mut io = self
            .io
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let response = roundtrip_body(&mut io, &body)?;
        drop(io);
        if let Some((ctx, span_id)) = &sampled {
            self.record_client_span(ctx, *span_id, features.len(), started);
        }
        match response {
            Response::Selections { selections } => Ok(selections),
            other => Err(unexpected("Selections", &other)),
        }
    }

    /// [`DaemonClient::select_batch`] with opaque raw-input payloads for
    /// the daemon's request journal: `payloads[i]` (a
    /// `Benchmark::encode_input` document, or `Null`) describes the input
    /// behind `features[i]`. Selections are identical to the untraced
    /// path; the payloads only feed continuous learning.
    ///
    /// # Errors
    /// Returns [`Error::Wire`] on transport failure or a server-side
    /// rejection (ill-shaped vectors, payload/vector length mismatch).
    pub fn select_batch_traced(
        &self,
        features: &[FeatureVector],
        payloads: &[serde_json::Value],
    ) -> Result<Vec<Selection>> {
        let sampled = self.tracing.as_ref().and_then(ClientTracing::sample);
        let started = Instant::now();
        let response = self.roundtrip(&Request::SelectBatchTraced {
            features: features.to_vec(),
            payloads: payloads.to_vec(),
            trace: sampled.as_ref().map(|(ctx, _)| *ctx),
        })?;
        if let Some((ctx, span_id)) = &sampled {
            self.record_client_span(ctx, *span_id, features.len(), started);
        }
        match response {
            Response::Selections { selections } => Ok(selections),
            other => Err(unexpected("Selections", &other)),
        }
    }

    /// Streams many selection batches through the connection with up to
    /// `window` requests in flight, answering in request order — the
    /// replay engine's throughput path. The daemon serves frames on one
    /// connection strictly in order, so pipelining changes wire
    /// utilization, never answers. `window` is clamped to at least 1 and
    /// should stay small (≈16): both sides bound their buffers, and a
    /// client that floods frames without draining replies can deadlock
    /// against the daemon's outbound cap.
    ///
    /// Each batch pairs feature vectors with journal payloads; an empty
    /// payload slice sends the lean `SelectBatch` frame.
    ///
    /// # Errors
    /// Returns [`Error::Wire`] on transport failure or a server-side
    /// rejection of any batch in the stream.
    pub fn select_batch_pipelined(
        &self,
        batches: &[(&[FeatureVector], &[serde_json::Value])],
        window: usize,
    ) -> Result<Vec<Vec<Selection>>> {
        let window = window.max(1);
        let mut guard = self
            .io
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        // Reborrow through the guard so the reader and the stream can be
        // borrowed as disjoint fields.
        let io = &mut *guard;
        let mut results = Vec::with_capacity(batches.len());
        // Sampling decisions for in-flight requests, indexed like
        // `batches`: a sampled entry remembers its context, client span,
        // and send time so the span can be closed when the in-order
        // reply arrives.
        let mut traces: Vec<Option<(TraceContext, u64, Instant)>> =
            Vec::with_capacity(batches.len());
        let mut sent = 0usize;
        while results.len() < batches.len() {
            while sent < batches.len() && sent - results.len() < window {
                let (features, payloads) = batches[sent];
                let sampled = self.tracing.as_ref().and_then(ClientTracing::sample);
                let body = if payloads.is_empty() {
                    match &sampled {
                        Some((ctx, _)) => protocol::encode_select_batch_with_trace(features, ctx),
                        None => protocol::encode_select_batch(features),
                    }
                } else {
                    protocol::encode_message(&Request::SelectBatchTraced {
                        features: features.to_vec(),
                        payloads: payloads.to_vec(),
                        trace: sampled.as_ref().map(|(ctx, _)| *ctx),
                    })
                };
                traces.push(sampled.map(|(ctx, span)| (ctx, span, Instant::now())));
                protocol::write_frame(&mut io.conn, &body)?;
                sent += 1;
            }
            match io.reader.recv::<_, Response>(&mut io.conn)? {
                Some(Response::Selections { selections }) => {
                    if let Some(Some((ctx, span_id, started))) = traces.get(results.len()) {
                        self.record_client_span(
                            ctx,
                            *span_id,
                            batches[results.len()].0.len(),
                            *started,
                        );
                    }
                    results.push(selections);
                }
                Some(other) => return Err(unexpected("Selections", &other)),
                None => return Err(Error::wire("daemon closed the connection mid-request")),
            }
        }
        Ok(results)
    }

    /// Fetches the daemon's counter snapshot.
    ///
    /// # Errors
    /// Returns [`Error::Wire`] on transport failure.
    pub fn stats(&self) -> Result<DaemonStats> {
        match self.roundtrip(&Request::Stats)? {
            Response::StatsReply { stats } => Ok(stats),
            other => Err(unexpected("StatsReply", &other)),
        }
    }

    /// Fetches the daemon-wide observability snapshot: per-tenant
    /// request counters and latency percentiles, event-loop stage
    /// timings, and event-log counters. Unlike [`DaemonClient::stats`]
    /// the reply covers every tenant, not just the one this connection
    /// is bound to.
    ///
    /// # Errors
    /// Returns [`Error::Wire`] on transport failure.
    pub fn metrics(&self) -> Result<MetricsSnapshot> {
        match self.roundtrip(&Request::Metrics)? {
            Response::MetricsReply { metrics } => Ok(metrics),
            other => Err(unexpected("MetricsReply", &other)),
        }
    }

    /// Stages an artifact document as the daemon's shadow, returning the
    /// staged `(benchmark, revision)`.
    ///
    /// # Errors
    /// Returns [`Error::Wire`] on transport failure or server rejection
    /// (unparseable document, benchmark/feature mismatch).
    pub fn load_artifact_document(&self, document: &str) -> Result<(String, u64)> {
        let response = self.roundtrip(&Request::LoadArtifact {
            document: document.to_string(),
        })?;
        match response {
            Response::Loaded {
                benchmark,
                revision,
            } => Ok((benchmark, revision)),
            other => Err(unexpected("Loaded", &other)),
        }
    }

    /// [`DaemonClient::load_artifact_document`] from an in-memory artifact.
    ///
    /// # Errors
    /// Same as [`DaemonClient::load_artifact_document`].
    pub fn load_artifact(&self, artifact: &ModelArtifact) -> Result<(String, u64)> {
        self.load_artifact_document(&artifact.to_document())
    }

    /// Promotes the staged shadow, returning the revision now serving.
    ///
    /// # Errors
    /// Returns [`Error::Wire`] on transport failure or a refused gate
    /// (nothing staged, insufficient mirrored agreement, tripped drift).
    pub fn promote(&self) -> Result<u64> {
        match self.roundtrip(&Request::Promote)? {
            Response::Promoted { revision } => Ok(revision),
            other => Err(unexpected("Promoted", &other)),
        }
    }

    /// Asks the daemon to exit.
    ///
    /// # Errors
    /// Returns [`Error::Wire`] on transport failure.
    pub fn shutdown(&self) -> Result<()> {
        match self.roundtrip(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            other => Err(unexpected("ShuttingDown", &other)),
        }
    }
}

impl SelectionBackend for DaemonClient {
    fn verify_benchmark(&self, benchmark: &str) -> Result<()> {
        if self.info.benchmark == benchmark {
            Ok(())
        } else {
            Err(Error::artifact(format!(
                "daemon at hand serves `{}`, evaluation needs `{benchmark}` \
                 (start the daemon with that case's artifact, or restrict \
                 the run with --only)",
                self.info.benchmark
            )))
        }
    }

    fn select_remote(&self, features: &[FeatureVector]) -> Result<Vec<(usize, f64)>> {
        let selections = self.select_batch(features)?;
        // A fallback answer is the drift policy speaking, not the
        // classifier; scoring it as a classifier answer would silently
        // skew the evaluation row. Surface the misconfiguration instead.
        if let Some(i) = selections.iter().position(|s| s.fell_back) {
            return Err(Error::artifact(format!(
                "daemon answered request {i} with its fallback landmark \
                 (drift policy engaged); evaluation needs pure classifier \
                 answers — start the daemon with --drift-threshold 1"
            )));
        }
        Ok(selections
            .iter()
            .map(|s| (s.landmark, s.extraction_cost))
            .collect())
    }
}

/// Nanoseconds since `start`, saturating at `u64::MAX`.
fn elapsed_ns(start: Instant) -> u64 {
    u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// One send + one receive on a connection.
fn roundtrip(io: &mut Io, request: &Request) -> Result<Response> {
    roundtrip_body(io, &protocol::encode_message(request))
}

/// One pre-encoded frame out + one response in.
fn roundtrip_body(io: &mut Io, body: &str) -> Result<Response> {
    protocol::write_frame(&mut io.conn, body)?;
    match io.reader.recv::<_, Response>(&mut io.conn)? {
        Some(response) => Ok(response),
        None => Err(Error::wire("daemon closed the connection mid-request")),
    }
}

/// Maps a server `Error` frame (or a genuinely wrong message kind) to a
/// typed client error.
fn unexpected(wanted: &str, got: &Response) -> Error {
    match got {
        Response::Error { detail } => Error::wire(format!("daemon refused: {detail}")),
        other => Error::wire(format!("expected {wanted}, daemon sent {other:?}")),
    }
}
