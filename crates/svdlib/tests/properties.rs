//! Property-based tests for the SVD benchmark.

use intune_core::Benchmark;
use intune_svdlib::{SvdBench, SvdInputClass};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Runs are deterministic, cost-positive, and accuracy grows (or holds)
    /// with the retained rank for the exact method.
    #[test]
    fn rank_monotonicity(seed in 0u64..300, class_idx in 0usize..7) {
        let mut rng = StdRng::seed_from_u64(seed);
        let classes = SvdInputClass::all();
        let input = classes[class_idx % classes.len()].generate(16, 12, &mut rng);
        let b = SvdBench::new();
        let space = b.space();

        let mk = |rank: i64| {
            let mut cfg = space.default_config();
            cfg.set(space.index_of("svd.method").unwrap(), intune_core::ParamValue::Choice(0));
            cfg.set(space.index_of("svd.rank_pct").unwrap(), intune_core::ParamValue::Int(rank));
            cfg
        };
        let low = b.run(&mk(10), &input);
        let high = b.run(&mk(90), &input);
        prop_assert!(low.cost > 0.0);
        prop_assert!(
            high.accuracy.unwrap() >= low.accuracy.unwrap() - 1e-6,
            "more rank lowered accuracy: {} -> {}",
            low.accuracy.unwrap(),
            high.accuracy.unwrap()
        );
        let again = b.run(&mk(10), &input);
        prop_assert_eq!(low, again);
    }

    /// Every feature is finite with positive extraction cost across classes
    /// and levels; the spectral probe stays in [0, 1].
    #[test]
    fn features_well_formed(seed in 0u64..300, class_idx in 0usize..7, level in 0usize..3) {
        let mut rng = StdRng::seed_from_u64(seed);
        let classes = SvdInputClass::all();
        let input = classes[class_idx % classes.len()].generate(14, 10, &mut rng);
        let b = SvdBench::new();
        for p in 0..4 {
            let s = b.extract(p, level, &input);
            prop_assert!(s.value.is_finite());
            prop_assert!(s.cost > 0.0);
        }
        let spectral = b.extract(3, level, &input).value;
        prop_assert!((0.0..=1.0).contains(&spectral), "spectral {}", spectral);
    }
}
