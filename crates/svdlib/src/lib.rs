//! # intune-svdlib
//!
//! The paper's **SVD** benchmark: approximate a matrix `A` in less space via
//! a truncated singular value decomposition `A_k = Σᵢ₍ₖ₎ σᵢuᵢvᵢᵀ`. The
//! algorithmic choices are the *technique used to find the eigenvalues*
//! (one-sided Jacobi, subspace iteration, or Golub–Kahan–Lanczos — see
//! `intune-linalg`), the *rank fraction* kept, and the iteration budget of
//! the iterative methods.
//!
//! The accuracy metric is the paper's: `log₁₀( RMS(A − 0) / RMS(A − A_k) )`
//! — the log of the ratio of the RMS error of the zero-matrix initial guess
//! to the RMS error of the output — with threshold 0.7 (≈ 5× error
//! reduction). Inputs with rapidly decaying spectra (or many zeros) hit the
//! bar at tiny rank with cheap methods; slow-decay inputs need high rank or
//! the accurate (expensive) Jacobi method: the benchmark's input
//! sensitivity. The paper notes SVD is "sensitive to the number of
//! eigenvalues … but this feature is expensive to measure"; the cheap
//! *zeros* feature tends to reflect it indirectly, which our generators
//! preserve.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod features;
pub mod generators;

pub use generators::{SvdCorpus, SvdInput, SvdInputClass};

use intune_core::{
    AccuracySpec, Benchmark, ConfigSpace, Configuration, ExecutionReport, FeatureDef, FeatureId,
    FeatureSample, FeatureVector,
};
use intune_linalg::svd::{compute, SvdMethod};
use intune_linalg::Matrix;

/// The SVD benchmark.
#[derive(Debug, Clone)]
pub struct SvdBench;

impl SvdBench {
    /// Creates the benchmark.
    pub fn new() -> Self {
        SvdBench
    }

    fn input_seed(a: &Matrix) -> u64 {
        let mut h = (a.rows() as u64) << 32 | a.cols() as u64;
        for v in a.data().iter().take(16) {
            h = h.wrapping_mul(0x100000001b3).wrapping_add(v.to_bits());
        }
        h
    }
}

impl Default for SvdBench {
    fn default() -> Self {
        SvdBench::new()
    }
}

impl Benchmark for SvdBench {
    type Input = SvdInput;

    fn name(&self) -> &str {
        "svd"
    }

    fn space(&self) -> ConfigSpace {
        ConfigSpace::builder()
            .switch("svd.method", 3)
            .int("svd.rank_pct", 2, 100)
            .int("svd.iters", 1, 16)
            .build()
    }

    fn run(&self, cfg: &Configuration, input: &Self::Input) -> ExecutionReport {
        let space = self.space();
        let a = &input.matrix;
        let n = a.cols();
        let rank_pct = cfg.int(space.require("svd.rank_pct").unwrap()) as f64;
        let k = (((rank_pct / 100.0) * n as f64).round() as usize).clamp(1, n);
        let iters = cfg.int(space.require("svd.iters").unwrap()) as usize;
        let method = match cfg.choice(space.require("svd.method").unwrap()) {
            0 => SvdMethod::Jacobi,
            1 => SvdMethod::Subspace { iters },
            _ => SvdMethod::Lanczos,
        };
        let svd = compute(a, k, method, Self::input_seed(a));
        let approx = svd.reconstruct(k);
        let err = (&approx - a).rms();
        let initial = a.rms().max(1e-300);
        let accuracy = (initial / err.max(1e-300)).log10();
        ExecutionReport::with_accuracy(svd.flops, accuracy)
    }

    fn accuracy(&self) -> Option<AccuracySpec> {
        Some(AccuracySpec::new(0.7))
    }

    fn properties(&self) -> Vec<FeatureDef> {
        vec![
            FeatureDef::new("range", 3),
            FeatureDef::new("deviation", 3),
            FeatureDef::new("zeros", 3),
            FeatureDef::new("spectral", 3),
        ]
    }

    fn extract(&self, property: usize, level: usize, input: &Self::Input) -> FeatureSample {
        features::extract(property, level, &input.matrix)
    }

    // Fused full extraction: one entry sample per level shared by all
    // properties (bit-identical to the default per-property path; see
    // `features::extract_level`). Drift probes on the serving hot path
    // call this per probed request.
    fn extract_all(&self, input: &Self::Input) -> FeatureVector {
        let defs = self.properties();
        let mut fv = FeatureVector::empty(&defs);
        for level in 0..3 {
            for (p, sample) in features::extract_level(level, &input.matrix)
                .into_iter()
                .enumerate()
            {
                fv.insert(FeatureId { property: p, level }, sample)
                    .expect("in-range feature id");
            }
        }
        fv
    }

    fn encode_input(&self, input: &Self::Input) -> Option<serde_json::Value> {
        use serde::Serialize as _;
        let a = &input.matrix;
        Some(serde_json::Value::Object(vec![
            ("rows".to_string(), serde_json::Value::UInt(a.rows() as u64)),
            ("cols".to_string(), serde_json::Value::UInt(a.cols() as u64)),
            (
                "data".to_string(),
                serde_json::Value::Array(a.data().iter().map(|v| v.to_value()).collect()),
            ),
        ]))
    }

    fn decode_input(&self, payload: &serde_json::Value) -> Option<Self::Input> {
        use serde::Deserialize as _;
        let rows = usize::try_from(payload.get("rows")?.as_u64()?).ok()?;
        let cols = usize::try_from(payload.get("cols")?.as_u64()?).ok()?;
        let data = payload
            .get("data")?
            .as_array()?
            .iter()
            .map(|v| f64::from_value(v).ok())
            .collect::<Option<Vec<f64>>>()?;
        // Validate the shape before `Matrix::from_rows` (which panics on
        // a rows×cols/data mismatch — a decoder must reject, not panic).
        if rows.checked_mul(cols)? != data.len() || rows == 0 || cols == 0 {
            return None;
        }
        Some(SvdInput {
            matrix: Matrix::from_rows(rows, cols, &data),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use intune_core::ParamValue;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn low_rank_input() -> SvdInput {
        let mut rng = StdRng::seed_from_u64(2);
        SvdInputClass::LowRank { rank: 3 }.generate(24, 18, &mut rng)
    }

    fn config(b: &SvdBench, method: usize, rank_pct: i64, iters: i64) -> Configuration {
        let space = b.space();
        let mut cfg = space.default_config();
        cfg.set(
            space.index_of("svd.method").unwrap(),
            ParamValue::Choice(method),
        );
        cfg.set(
            space.index_of("svd.rank_pct").unwrap(),
            ParamValue::Int(rank_pct),
        );
        cfg.set(space.index_of("svd.iters").unwrap(), ParamValue::Int(iters));
        cfg
    }

    #[test]
    fn jacobi_full_rank_is_most_accurate_and_most_expensive() {
        let b = SvdBench::new();
        let input = low_rank_input();
        let jacobi = b.run(&config(&b, 0, 50, 1), &input);
        let subspace = b.run(&config(&b, 1, 20, 2), &input);
        assert!(jacobi.accuracy.unwrap() >= subspace.accuracy.unwrap() - 1e-6);
        assert!(jacobi.cost > subspace.cost);
    }

    #[test]
    fn low_rank_inputs_hit_threshold_cheaply() {
        let b = SvdBench::new();
        let input = low_rank_input();
        // Rank 3 matrix: 20% of 18 cols ≈ 4 ≥ 3 singular directions.
        let report = b.run(&config(&b, 1, 20, 8), &input);
        assert!(
            report.accuracy.unwrap() > 0.7,
            "accuracy {}",
            report.accuracy.unwrap()
        );
    }

    #[test]
    fn slow_decay_inputs_need_more_rank() {
        let b = SvdBench::new();
        let mut rng = StdRng::seed_from_u64(7);
        let input = SvdInputClass::SlowDecay.generate(24, 18, &mut rng);
        let tiny = b.run(&config(&b, 1, 5, 8), &input);
        let big = b.run(&config(&b, 0, 100, 8), &input);
        assert!(
            big.accuracy.unwrap() > tiny.accuracy.unwrap(),
            "big-rank {} vs tiny-rank {}",
            big.accuracy.unwrap(),
            tiny.accuracy.unwrap()
        );
    }

    #[test]
    fn features_extractable() {
        let b = SvdBench::new();
        let fv = b.extract_all(&low_rank_input());
        assert_eq!(fv.len(), 12);
        assert!(fv.dense().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn spectral_probe_separates_spectra() {
        let b = SvdBench::new();
        let mut rng = StdRng::seed_from_u64(12);
        let low = SvdInputClass::LowRank { rank: 2 }.generate(24, 18, &mut rng);
        let flat = SvdInputClass::Dense.generate(24, 18, &mut rng);
        let p_low = b.extract(3, 2, &low).value;
        let p_flat = b.extract(3, 2, &flat).value;
        assert!(
            p_low > p_flat + 0.2,
            "low-rank probe {p_low} should dominate flat-spectrum probe {p_flat}"
        );
    }

    #[test]
    fn deterministic_runs() {
        let b = SvdBench::new();
        let input = low_rank_input();
        let cfg = config(&b, 1, 25, 4);
        let r1 = b.run(&cfg, &input);
        let r2 = b.run(&cfg, &input);
        assert_eq!(r1.cost, r2.cost);
        assert_eq!(r1.accuracy, r2.accuracy);
    }

    #[test]
    fn accuracy_threshold_is_papers() {
        assert_eq!(SvdBench::new().accuracy().unwrap().threshold, 0.7);
    }

    #[test]
    fn inputs_round_trip_through_journal_codec_bit_exactly() {
        let b = SvdBench::new();
        // A generated matrix plus a hand-built one of adversarial values:
        // negative zero, a subnormal, a value with no short decimal form,
        // and huge magnitudes (kept below sqrt(f64::MAX) so the feature
        // probes' sums of squares stay finite — NaN features would void
        // the bit-for-bit comparison below).
        let adversarial = SvdInput {
            matrix: Matrix::from_rows(
                3,
                2,
                &[-0.0, f64::MIN_POSITIVE / 2.0, 0.1 + 0.2, 1e150, -1e150, 1.0],
            ),
        };
        for input in [low_rank_input(), adversarial] {
            let encoded = b.encode_input(&input).expect("svd journals");
            // Through the actual wire representation, not just the Value
            // tree.
            let text = serde_json::to_string(&encoded).unwrap();
            let reparsed: serde_json::Value = serde_json::from_str(&text).unwrap();
            let decoded = b.decode_input(&reparsed).expect("codec round-trips");
            assert_eq!(decoded.matrix.rows(), input.matrix.rows());
            assert_eq!(decoded.matrix.cols(), input.matrix.cols());
            for (a, c) in input.matrix.data().iter().zip(decoded.matrix.data()) {
                assert_eq!(a.to_bits(), c.to_bits());
            }
            // Identical treatment: same features, bit for bit.
            assert_eq!(
                b.extract_all(&input).dense(),
                b.extract_all(&decoded).dense()
            );
        }
    }

    #[test]
    fn decode_rejects_malformed_documents() {
        let b = SvdBench::new();
        for text in [
            "null",
            "{}",
            // Shape/data mismatch (would panic in Matrix::from_rows).
            r#"{"rows": 2, "cols": 2, "data": [1.0, 2.0, 3.0]}"#,
            // Degenerate dimensions.
            r#"{"rows": 0, "cols": 0, "data": []}"#,
            // Missing field.
            r#"{"rows": 1, "cols": 1}"#,
            // Non-numeric entry.
            r#"{"rows": 1, "cols": 1, "data": ["x"]}"#,
            // Negative dimension.
            r#"{"rows": -1, "cols": 1, "data": [1.0]}"#,
        ] {
            let payload: serde_json::Value = serde_json::from_str(text).unwrap();
            assert!(b.decode_input(&payload).is_none(), "accepted {text}");
        }
    }
}
