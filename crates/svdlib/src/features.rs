//! Input feature extractors for the SVD benchmark: value range, standard
//! deviation, and zeros count, each at three sampling levels over the
//! matrix entries (the paper's three cheap features that indirectly reflect
//! the expensive-to-measure eigenvalue structure).

use intune_core::FeatureSample;
use intune_linalg::Matrix;

/// Property indices (order matches `SvdBench::properties`).
pub mod prop {
    /// max − min over sampled entries.
    pub const RANGE: usize = 0;
    /// Standard deviation over sampled entries.
    pub const DEVIATION: usize = 1;
    /// Fraction of exact zeros over sampled entries.
    pub const ZEROS: usize = 2;
    /// Energy concentration of the top singular direction on a sampled
    /// submatrix (power-iteration probe). The paper notes SVD "is sensitive
    /// to the number of eigenvalues … but this feature is expensive to
    /// measure"; this extractor makes that trade-off explicit — the deeper
    /// sampling levels probe larger submatrices at sharply growing cost.
    pub const SPECTRAL: usize = 3;
}

fn sample(a: &Matrix, level: usize) -> (Vec<f64>, f64) {
    let data = a.data();
    let n = data.len();
    if n == 0 {
        return (vec![0.0], 1.0);
    }
    let m = match level {
        0 => n.min(64),
        1 => n.min(512),
        _ => n,
    }
    .max(1);
    let out: Vec<f64> = (0..m).map(|i| data[i * n / m]).collect();
    (out, m as f64)
}

/// Extracts property `property` at sampling `level`.
///
/// # Panics
/// Panics if `property` is out of range (SVD declares 3).
pub fn extract(property: usize, level: usize, a: &Matrix) -> FeatureSample {
    let (s, m) = sample(a, level);
    extract_sampled(property, level, a, &s, m)
}

/// Extracts all four properties at one sampling level, sampling the matrix
/// entries **once** instead of once per property — the fused pass behind
/// `SvdBench::extract_all` on the serving hot path. Bit-identical to
/// calling [`extract`] per property (both share `extract_sampled`).
pub fn extract_level(level: usize, a: &Matrix) -> [FeatureSample; 4] {
    let (s, m) = sample(a, level);
    [
        extract_sampled(prop::RANGE, level, a, &s, m),
        extract_sampled(prop::DEVIATION, level, a, &s, m),
        extract_sampled(prop::ZEROS, level, a, &s, m),
        extract_sampled(prop::SPECTRAL, level, a, &s, m),
    ]
}

fn extract_sampled(property: usize, level: usize, a: &Matrix, s: &[f64], m: f64) -> FeatureSample {
    match property {
        prop::RANGE => {
            let mut lo = f64::INFINITY;
            let mut hi = f64::NEG_INFINITY;
            for &x in s {
                lo = lo.min(x);
                hi = hi.max(x);
            }
            FeatureSample::new(if hi >= lo { hi - lo } else { 0.0 }, m)
        }
        prop::DEVIATION => {
            let mean = s.iter().sum::<f64>() / s.len() as f64;
            let var = s.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / s.len() as f64;
            FeatureSample::new(var.sqrt(), 2.0 * m)
        }
        prop::ZEROS => {
            let zeros = s.iter().filter(|x| **x == 0.0).count();
            FeatureSample::new(zeros as f64 / s.len() as f64, m)
        }
        prop::SPECTRAL => spectral_probe(a, level),
        other => panic!("svd has 4 properties, got {other}"),
    }
}

/// Power-iteration probe: fraction of the (sub)matrix's Frobenius energy
/// captured by its top singular direction. Near 1 ⇒ effectively rank-1 ⇒
/// cheap low-rank configurations suffice; near `1/n` ⇒ flat spectrum.
fn spectral_probe(a: &Matrix, level: usize) -> FeatureSample {
    let s = match level {
        0 => 6,
        1 => 12,
        _ => usize::MAX,
    };
    let rows = a.rows().min(s);
    let cols = a.cols().min(s);
    if rows == 0 || cols == 0 {
        return FeatureSample::new(0.0, 1.0);
    }
    // Strided submatrix.
    let sub = Matrix::from_fn(rows, cols, |i, j| {
        a[(i * a.rows() / rows, j * a.cols() / cols)]
    });
    let fro2: f64 = sub.data().iter().map(|x| x * x).sum();
    if fro2 <= 0.0 {
        return FeatureSample::new(0.0, (rows * cols) as f64);
    }
    // 4 power iterations of AᵀA on a deterministic start vector.
    let mut v: Vec<f64> = (0..cols).map(|j| ((j as f64) * 0.7).sin() + 1.1).collect();
    let mut sigma2 = 0.0;
    let mut cost = (rows * cols) as f64;
    for _ in 0..4 {
        let av = sub.matvec(&v);
        let atav = sub.transpose().matvec(&av);
        let norm = atav.iter().map(|x| x * x).sum::<f64>().sqrt();
        cost += 4.0 * (rows * cols) as f64;
        if norm <= 1e-300 {
            break;
        }
        sigma2 = av.iter().map(|x| x * x).sum::<f64>();
        v = atav.iter().map(|x| x / norm).collect();
        let vn = v.iter().map(|x| x * x).sum::<f64>().sqrt();
        if vn > 1e-300 {
            for x in &mut v {
                *x /= vn;
            }
        }
    }
    FeatureSample::new((sigma2 / fro2).clamp(0.0, 1.0), cost)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_fraction_detected() {
        let a = Matrix::from_fn(10, 10, |i, j| if (i + j) % 2 == 0 { 0.0 } else { 1.0 });
        let z = extract(prop::ZEROS, 2, &a).value;
        assert!((z - 0.5).abs() < 0.05, "zeros {z}");
    }

    #[test]
    fn range_and_deviation() {
        let a = Matrix::from_fn(5, 5, |i, j| (i * 5 + j) as f64);
        assert_eq!(extract(prop::RANGE, 2, &a).value, 24.0);
        assert!(extract(prop::DEVIATION, 2, &a).value > 5.0);
    }

    #[test]
    fn fused_level_extraction_is_bit_identical() {
        let cases = [
            Matrix::from_fn(0, 0, |_, _| 0.0),
            Matrix::from_fn(1, 1, |_, _| 2.5),
            Matrix::from_fn(30, 17, |i, j| ((i * 31 + j * 7) % 13) as f64 - 6.0),
        ];
        for a in &cases {
            for level in 0..3 {
                let fused = extract_level(level, a);
                for (p, sample) in fused.iter().enumerate() {
                    let single = extract(p, level, a);
                    assert!(
                        sample.value.to_bits() == single.value.to_bits()
                            && sample.cost.to_bits() == single.cost.to_bits(),
                        "p{p} l{level}: fused {sample:?} != single {single:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn levels_cost_ordering() {
        let a = Matrix::from_fn(40, 40, |i, j| ((i * j) % 11) as f64);
        for p in 0..3 {
            assert!(extract(p, 0, &a).cost < extract(p, 2, &a).cost);
        }
    }
}
