//! Input generators for the SVD benchmark: matrices whose spectra (and
//! zero-structure) vary enough to separate the method/rank choices.

use intune_linalg::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One SVD input.
#[derive(Debug, Clone)]
pub struct SvdInput {
    /// The matrix to approximate (rows ≥ cols).
    pub matrix: Matrix,
}

/// Families of SVD inputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SvdInputClass {
    /// Exactly rank-`rank` plus tiny noise: cheap methods at tiny rank win.
    LowRank {
        /// The true rank.
        rank: usize,
    },
    /// Exponentially decaying spectrum: moderate rank suffices.
    FastDecay,
    /// Near-flat spectrum: needs high rank / accurate method.
    SlowDecay,
    /// Sparse (many exact zeros) — low effective rank, cheap feature signal.
    Sparse,
    /// Block-diagonal structure.
    Block,
    /// Dense uniform random (hard: flat-ish spectrum).
    Dense,
}

impl SvdInputClass {
    /// All generator classes.
    pub fn all() -> Vec<SvdInputClass> {
        vec![
            SvdInputClass::LowRank { rank: 2 },
            SvdInputClass::LowRank { rank: 5 },
            SvdInputClass::FastDecay,
            SvdInputClass::SlowDecay,
            SvdInputClass::Sparse,
            SvdInputClass::Block,
            SvdInputClass::Dense,
        ]
    }

    /// Generates an `m × n` input (clamped so `m ≥ n`).
    pub fn generate(self, m: usize, n: usize, rng: &mut StdRng) -> SvdInput {
        let m = m.max(n);
        use SvdInputClass::*;
        let matrix = match self {
            LowRank { rank } => {
                let r = rank.min(n).max(1);
                let mut out = Matrix::zeros(m, n);
                for k in 0..r {
                    let scale = 20.0 / (k + 1) as f64;
                    let u: Vec<f64> = (0..m).map(|_| rng.gen_range(-1.0..1.0)).collect();
                    let v: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
                    for i in 0..m {
                        for j in 0..n {
                            out[(i, j)] += scale * u[i] * v[j];
                        }
                    }
                }
                // Tiny noise floor.
                for i in 0..m {
                    for j in 0..n {
                        out[(i, j)] += rng.gen_range(-1e-4..1e-4);
                    }
                }
                out
            }
            FastDecay => spectrum_matrix(m, n, rng, |k| 10.0 * 0.5f64.powi(k as i32)),
            SlowDecay => spectrum_matrix(m, n, rng, |k| 10.0 / (1.0 + k as f64)),
            Sparse => {
                let density = rng.gen_range(0.05..0.2);
                Matrix::from_fn(m, n, |_, _| {
                    if rng.gen_bool(density) {
                        rng.gen_range(-10.0..10.0)
                    } else {
                        0.0
                    }
                })
            }
            Block => {
                let blocks = rng.gen_range(2..5usize);
                let bw = n / blocks + 1;
                Matrix::from_fn(m, n, |i, j| {
                    if i % (m / blocks + 1) / bw.max(1) == j / bw.max(1) || (i / bw) == (j / bw) {
                        rng.gen_range(-5.0..5.0)
                    } else {
                        0.0
                    }
                })
            }
            Dense => Matrix::from_fn(m, n, |_, _| rng.gen_range(-1.0..1.0)),
        };
        SvdInput { matrix }
    }
}

/// Builds `U·diag(σ(k))·Vᵀ`-like matrices with a prescribed spectrum shape
/// using cheap pseudo-orthogonal trigonometric bases.
fn spectrum_matrix(m: usize, n: usize, rng: &mut StdRng, sigma: impl Fn(usize) -> f64) -> Matrix {
    let phase: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
    let mut out = Matrix::zeros(m, n);
    for k in 0..n {
        let s = sigma(k);
        for i in 0..m {
            let u = ((i as f64 + 1.0) * (k as f64 + 1.0) * 0.7 + phase).sin();
            for j in 0..n {
                let v = ((j as f64 + 1.0) * (k as f64 + 1.0) * 0.3 + phase).cos();
                out[(i, j)] += s * u * v / (m as f64).sqrt();
            }
        }
    }
    out
}

/// A corpus of SVD inputs.
#[derive(Debug, Clone)]
pub struct SvdCorpus {
    /// The inputs.
    pub inputs: Vec<SvdInput>,
    /// Generator class per input (diagnostics only).
    pub classes: Vec<SvdInputClass>,
}

impl SvdCorpus {
    /// Builds `count` inputs cycling through the classes, with column counts
    /// uniform in `[min_n, max_n]` and 1.3× as many rows.
    pub fn synthetic(count: usize, min_n: usize, max_n: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let classes = SvdInputClass::all();
        let mut inputs = Vec::with_capacity(count);
        let mut labels = Vec::with_capacity(count);
        for i in 0..count {
            let class = classes[i % classes.len()];
            let n = rng.gen_range(min_n..=max_n.max(min_n));
            let m = (n as f64 * 1.3).round() as usize;
            inputs.push(class.generate(m, n, &mut rng));
            labels.push(class);
        }
        SvdCorpus {
            inputs,
            classes: labels,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use intune_linalg::svd::svd_jacobi;

    #[test]
    fn all_classes_generate() {
        let mut rng = StdRng::seed_from_u64(1);
        for class in SvdInputClass::all() {
            let input = class.generate(20, 15, &mut rng);
            assert_eq!(input.matrix.rows(), 20, "{class:?}");
            assert_eq!(input.matrix.cols(), 15, "{class:?}");
            assert!(input.matrix.data().iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn low_rank_class_has_low_rank() {
        let mut rng = StdRng::seed_from_u64(2);
        let input = SvdInputClass::LowRank { rank: 3 }.generate(20, 15, &mut rng);
        let svd = svd_jacobi(&input.matrix);
        // Energy beyond the third singular value is negligible.
        let head: f64 = svd.sigma.iter().take(3).map(|s| s * s).sum();
        let tail: f64 = svd.sigma.iter().skip(3).map(|s| s * s).sum();
        assert!(tail < 1e-4 * head, "tail {tail} vs head {head}");
    }

    #[test]
    fn slow_decay_needs_more_rank_than_fast() {
        let mut rng = StdRng::seed_from_u64(3);
        let fast = SvdInputClass::FastDecay.generate(20, 15, &mut rng);
        let slow = SvdInputClass::SlowDecay.generate(20, 15, &mut rng);
        let energy_frac = |m: &Matrix, k: usize| {
            let svd = svd_jacobi(m);
            let head: f64 = svd.sigma.iter().take(k).map(|s| s * s).sum();
            let total: f64 = svd.sigma.iter().map(|s| s * s).sum();
            head / total.max(1e-300)
        };
        assert!(energy_frac(&fast.matrix, 3) > energy_frac(&slow.matrix, 3));
    }

    #[test]
    fn sparse_class_has_zeros() {
        let mut rng = StdRng::seed_from_u64(4);
        let input = SvdInputClass::Sparse.generate(20, 15, &mut rng);
        let zero_frac = input.matrix.count_zeros() as f64 / 300.0;
        assert!(zero_frac > 0.5, "zero fraction {zero_frac}");
    }

    #[test]
    fn corpus_deterministic() {
        let a = SvdCorpus::synthetic(8, 10, 16, 5);
        let b = SvdCorpus::synthetic(8, 10, 16, 5);
        for (x, y) in a.inputs.iter().zip(&b.inputs) {
            assert_eq!(x.matrix, y.matrix);
        }
    }
}
