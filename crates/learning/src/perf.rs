//! The landmark × input performance matrix (Level 1, Step 4).

use intune_core::ExecutionReport;

/// Execution cost and accuracy of every landmark configuration on every
/// training input — the evidence Level 2 learns from. The paper's datatable
/// of `<F, T, A, E>` tuples: `T` and `A` live here, `F` and `E` in the
/// cached feature vectors.
#[derive(Debug, Clone)]
pub struct PerfMatrix {
    /// `cost[l][i]` = execution cost of landmark `l` on input `i`.
    cost: Vec<Vec<f64>>,
    /// `accuracy[l][i]` = accuracy metric, if the benchmark defines one.
    accuracy: Vec<Vec<Option<f64>>>,
}

impl PerfMatrix {
    /// Builds from per-landmark rows of execution reports.
    ///
    /// # Panics
    /// Panics if rows have inconsistent lengths.
    pub fn from_reports(rows: Vec<Vec<ExecutionReport>>) -> Self {
        let n = rows.first().map_or(0, |r| r.len());
        assert!(
            rows.iter().all(|r| r.len() == n),
            "inconsistent report row lengths"
        );
        PerfMatrix {
            cost: rows
                .iter()
                .map(|row| row.iter().map(|r| r.cost).collect())
                .collect(),
            accuracy: rows
                .iter()
                .map(|row| row.iter().map(|r| r.accuracy).collect())
                .collect(),
        }
    }

    /// Number of landmarks (rows).
    pub fn num_landmarks(&self) -> usize {
        self.cost.len()
    }

    /// Number of inputs (columns).
    pub fn num_inputs(&self) -> usize {
        self.cost.first().map_or(0, |r| r.len())
    }

    /// Execution cost of landmark `l` on input `i`.
    pub fn cost(&self, l: usize, i: usize) -> f64 {
        self.cost[l][i]
    }

    /// Accuracy of landmark `l` on input `i` (None for fixed-accuracy).
    pub fn accuracy(&self, l: usize, i: usize) -> Option<f64> {
        self.accuracy[l][i]
    }

    /// Whether landmark `l` meets `threshold` on input `i`
    /// (trivially true when no threshold).
    pub fn meets(&self, l: usize, i: usize, threshold: Option<f64>) -> bool {
        match (threshold, self.accuracy[l][i]) {
            (None, _) => true,
            (Some(t), Some(a)) => a >= t,
            (Some(_), None) => false,
        }
    }

    /// Fraction of inputs on which landmark `l` meets `threshold`.
    pub fn satisfaction(&self, l: usize, threshold: Option<f64>) -> f64 {
        let n = self.num_inputs();
        if n == 0 {
            return 1.0;
        }
        (0..n).filter(|&i| self.meets(l, i, threshold)).count() as f64 / n as f64
    }

    /// Mean execution cost of landmark `l` across inputs.
    pub fn mean_cost(&self, l: usize) -> f64 {
        let n = self.num_inputs();
        if n == 0 {
            return 0.0;
        }
        self.cost[l].iter().sum::<f64>() / n as f64
    }

    /// Restricts the matrix to a subset of landmarks (used by the
    /// Figure 8 landmark-count sweep).
    ///
    /// # Panics
    /// Panics if any index is out of range.
    pub fn select_landmarks(&self, keep: &[usize]) -> PerfMatrix {
        PerfMatrix {
            cost: keep.iter().map(|&l| self.cost[l].clone()).collect(),
            accuracy: keep.iter().map(|&l| self.accuracy[l].clone()).collect(),
        }
    }

    /// Restricts the matrix to a subset of input columns (train/test split).
    ///
    /// # Panics
    /// Panics if any index is out of range.
    pub fn select_inputs(&self, keep: &[usize]) -> PerfMatrix {
        PerfMatrix {
            cost: self
                .cost
                .iter()
                .map(|row| keep.iter().map(|&i| row[i]).collect())
                .collect(),
            accuracy: self
                .accuracy
                .iter()
                .map(|row| keep.iter().map(|&i| row[i]).collect())
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> PerfMatrix {
        PerfMatrix::from_reports(vec![
            vec![
                ExecutionReport::with_accuracy(10.0, 0.9),
                ExecutionReport::with_accuracy(20.0, 0.5),
            ],
            vec![
                ExecutionReport::with_accuracy(30.0, 0.99),
                ExecutionReport::with_accuracy(5.0, 0.97),
            ],
        ])
    }

    #[test]
    fn shape_and_access() {
        let m = sample();
        assert_eq!(m.num_landmarks(), 2);
        assert_eq!(m.num_inputs(), 2);
        assert_eq!(m.cost(1, 1), 5.0);
        assert_eq!(m.accuracy(0, 0), Some(0.9));
    }

    #[test]
    fn satisfaction_counts_threshold() {
        let m = sample();
        assert_eq!(m.satisfaction(0, Some(0.8)), 0.5);
        assert_eq!(m.satisfaction(1, Some(0.8)), 1.0);
        assert_eq!(m.satisfaction(0, None), 1.0);
    }

    #[test]
    fn mean_cost() {
        let m = sample();
        assert_eq!(m.mean_cost(0), 15.0);
    }

    #[test]
    fn landmark_and_input_selection() {
        let m = sample();
        let l = m.select_landmarks(&[1]);
        assert_eq!(l.num_landmarks(), 1);
        assert_eq!(l.cost(0, 0), 30.0);
        let i = m.select_inputs(&[1]);
        assert_eq!(i.num_inputs(), 1);
        assert_eq!(i.cost(0, 0), 20.0);
    }

    #[test]
    fn missing_accuracy_fails_threshold() {
        let m = PerfMatrix::from_reports(vec![vec![ExecutionReport::of_cost(1.0)]]);
        assert!(!m.meets(0, 0, Some(0.5)));
        assert!(m.meets(0, 0, None));
    }
}
