//! Level 2, part B: candidate generation and production-classifier
//! selection.
//!
//! Candidates: max-a-priori, one cost-sensitive decision tree per feature
//! subset (cross-validated), and incremental classifiers on the best subset
//! and on the full feature set. Selection scores every candidate on a
//! held-out selection set by the paper's objective
//! `R = mean_i( T(i, chosen_i) + g_i )` — execution cost of the chosen
//! configuration **plus** the feature-extraction cost actually incurred —
//! subject to the satisfaction threshold (≥ H2 of inputs must meet the
//! accuracy threshold H1).

use crate::classifiers::{train_incremental, Classifier};
use crate::perf::PerfMatrix;
use intune_core::{FeatureDef, FeatureSample, FeatureSet, FeatureVector};
use intune_ml::{DecisionTree, KFold, TreeOptions};

/// Options for candidate training and selection.
#[derive(Debug, Clone)]
pub struct SelectionOptions {
    /// Cross-validation folds per subset (paper: 10).
    pub folds: usize,
    /// Decision-tree hyper-parameters.
    pub tree: TreeOptions,
    /// Decision regions per feature in the incremental classifier.
    pub nb_regions: usize,
    /// Posterior confidence threshold Λ of the incremental classifier.
    pub nb_threshold: f64,
    /// Cap on the number of enumerated subsets (deterministic thinning
    /// beyond this; 256 covers the paper's 4-property × 3-level case).
    pub max_subsets: usize,
    /// Satisfaction threshold H2 (paper: 0.95).
    pub satisfaction: f64,
    /// RNG seed for fold shuffling.
    pub seed: u64,
}

impl Default for SelectionOptions {
    fn default() -> Self {
        SelectionOptions {
            folds: 10,
            tree: TreeOptions::default(),
            nb_regions: 6,
            nb_threshold: 0.6,
            max_subsets: 512,
            satisfaction: 0.95,
            seed: 0,
        }
    }
}

/// A named candidate with its cross-validation score.
#[derive(Debug, Clone)]
pub struct Candidate {
    /// The classifier.
    pub classifier: Classifier,
    /// Human-readable description (subset signature).
    pub name: String,
    /// Mean held-out misclassification cost from CV (NaN for candidates
    /// that are not CV-trained).
    pub cv_cost: f64,
}

/// Extracts the sample vector (value + cost) of `set` from a cached
/// feature vector, in `set.iter()` order.
pub fn samples_for(fv: &FeatureVector, set: &FeatureSet) -> Vec<FeatureSample> {
    set.iter()
        .map(|id| fv.get(id).expect("training features fully extracted"))
        .collect()
}

/// Trains the full candidate family.
///
/// # Panics
/// Panics if `features`/`labels` are empty or lengths mismatch.
pub fn train_candidates(
    features: &[FeatureVector],
    labels: &[usize],
    num_classes: usize,
    cost_matrix: &[Vec<f64>],
    defs: &[FeatureDef],
    opts: &SelectionOptions,
) -> Vec<Candidate> {
    assert!(!features.is_empty(), "no training features");
    assert_eq!(features.len(), labels.len(), "features/labels mismatch");
    let n = features.len();

    let mut candidates = Vec::new();

    // (1) Max-a-priori.
    let mut counts = vec![0usize; num_classes];
    for &l in labels {
        counts[l] += 1;
    }
    let majority = counts
        .iter()
        .enumerate()
        .max_by_key(|(_, c)| **c)
        .map(|(k, _)| k)
        .unwrap_or(0);
    candidates.push(Candidate {
        classifier: Classifier::MaxApriori {
            class: majority,
            num_properties: defs.len(),
        },
        name: "max-apriori".to_string(),
        cv_cost: f64::NAN,
    });

    // (1b) Constant "safest landmark" candidates, one per landmark. These
    // cost nothing to evaluate at deployment (no features) and give
    // selection an honest, static-oracle-like fallback that always exists —
    // important when the data-driven candidates cannot clear the
    // satisfaction threshold.
    for class in 0..num_classes {
        if class != majority {
            candidates.push(Candidate {
                classifier: Classifier::MaxApriori {
                    class,
                    num_properties: defs.len(),
                },
                name: format!("constant[L{class}]"),
                cv_cost: f64::NAN,
            });
        }
    }

    // (2) Exhaustive feature-subset decision trees (incl. all-features).
    let mut subsets: Vec<FeatureSet> = FeatureSet::enumerate_all(defs)
        .into_iter()
        .filter(|s| !s.is_empty())
        .collect();
    if subsets.len() > opts.max_subsets {
        let step = subsets.len() as f64 / opts.max_subsets as f64;
        let mut kept = Vec::with_capacity(opts.max_subsets);
        let mut pos = 0.0;
        while (pos as usize) < subsets.len() && kept.len() < opts.max_subsets {
            kept.push(subsets[pos as usize].clone());
            pos += step;
        }
        // Always keep the full top-level subset.
        let full = FeatureSet::all_at_level(defs.len(), 0);
        if !kept.contains(&full) {
            kept.push(full);
        }
        subsets = kept;
    }

    let folds = opts.folds.clamp(2, n);
    let kfold = KFold::new(n, folds, opts.seed);
    let mut best_subset: Option<(f64, FeatureSet)> = None;

    for set in subsets {
        let x: Vec<Vec<f64>> = features
            .iter()
            .map(|fv| {
                set.iter()
                    .map(|id| fv.get(id).expect("extracted").value)
                    .collect()
            })
            .collect();

        // 10-fold CV: keep the per-fold tree that generalizes best, and
        // record the subset's mean held-out cost.
        let mut best_fold: Option<(f64, DecisionTree)> = None;
        let mut cost_sum = 0.0;
        for (train_idx, test_idx) in kfold.splits() {
            let tx: Vec<Vec<f64>> = train_idx.iter().map(|&i| x[i].clone()).collect();
            let ty: Vec<usize> = train_idx.iter().map(|&i| labels[i]).collect();
            let tree = DecisionTree::fit(&tx, &ty, num_classes, cost_matrix, opts.tree);
            let mut held_out = 0.0;
            for &i in test_idx {
                let pred = tree.predict(&x[i]);
                held_out += cost_matrix[labels[i]][pred];
            }
            let held_out = held_out / test_idx.len().max(1) as f64;
            cost_sum += held_out;
            if best_fold.as_ref().is_none_or(|(c, _)| held_out < *c) {
                best_fold = Some((held_out, tree));
            }
        }
        let cv_cost = cost_sum / folds as f64;
        let (_, tree) = best_fold.expect("at least one fold");

        if best_subset.as_ref().is_none_or(|(c, _)| cv_cost < *c) {
            best_subset = Some((cv_cost, set.clone()));
        }
        candidates.push(Candidate {
            name: format!("tree{}", subset_signature(&set)),
            classifier: Classifier::Tree { set, tree },
            cv_cost,
        });
    }

    // (3) Incremental classifiers: on the CV-best subset and on the full
    // (top-level) set.
    let mut incremental_sets = Vec::new();
    if let Some((_, best)) = best_subset {
        incremental_sets.push(best);
    }
    let full = FeatureSet::all_at_level(
        defs.len(),
        defs.iter().map(|d| d.levels).min().unwrap_or(1) - 1,
    );
    if !incremental_sets.contains(&full) {
        incremental_sets.push(full);
    }
    for set in incremental_sets {
        if set.count() < 1 {
            continue;
        }
        let x: Vec<Vec<f64>> = features
            .iter()
            .map(|fv| {
                set.iter()
                    .map(|id| fv.get(id).expect("extracted").value)
                    .collect()
            })
            .collect();
        let mean_costs: Vec<f64> = set
            .iter()
            .enumerate()
            .map(|(pos, id)| {
                let _ = pos;
                features
                    .iter()
                    .map(|fv| fv.get(id).expect("extracted").cost)
                    .sum::<f64>()
                    / n as f64
            })
            .collect();
        candidates.push(Candidate {
            name: format!("incremental{}", subset_signature(&set)),
            classifier: train_incremental(
                set,
                &x,
                labels,
                num_classes,
                &mean_costs,
                opts.nb_regions,
                opts.nb_threshold,
            ),
            cv_cost: f64::NAN,
        });
    }

    candidates
}

fn subset_signature(set: &FeatureSet) -> String {
    let parts: Vec<String> = set
        .iter()
        .map(|id| format!("p{}l{}", id.property, id.level))
        .collect();
    format!("[{}]", parts.join(","))
}

/// The per-candidate selection outcome.
#[derive(Debug, Clone)]
pub struct CandidateScore {
    /// Mean objective `R` (execution + extraction cost).
    pub objective: f64,
    /// Fraction of selection inputs meeting the accuracy threshold.
    pub satisfaction: f64,
    /// Whether the candidate clears the satisfaction threshold.
    pub valid: bool,
}

/// Scores one candidate over a set of inputs: mean objective (execution +
/// extraction cost) and satisfaction fraction.
fn score_on(
    cand: &Candidate,
    features: &[FeatureVector],
    perf: &PerfMatrix,
    accuracy_threshold: Option<f64>,
) -> (f64, f64) {
    let n = features.len();
    let set = cand.classifier.feature_set();
    let mut total = 0.0;
    let mut met = 0usize;
    for (i, fv) in features.iter().enumerate() {
        let samples = samples_for(fv, &set);
        let (class, extraction) = cand.classifier.classify_costed(&samples);
        total += perf.cost(class, i) + extraction;
        if perf.meets(class, i, accuracy_threshold) {
            met += 1;
        }
    }
    let satisfaction = if n > 0 { met as f64 / n as f64 } else { 1.0 };
    (total / n.max(1) as f64, satisfaction)
}

/// Scores every candidate and picks the production classifier: minimum
/// held-out objective among valid candidates, else maximum satisfaction.
///
/// Validity (the H2 gate) is checked on *both* the fitting inputs and the
/// held-out selection inputs — a candidate must clear the satisfaction
/// threshold on each — while the reported objective comes from the held-out
/// slice only. Pass the same set twice when no split is wanted.
///
/// # Panics
/// Panics if shapes mismatch or `candidates` is empty.
pub fn select_production(
    candidates: &[Candidate],
    fit_features: &[FeatureVector],
    fit_perf: &PerfMatrix,
    sel_features: &[FeatureVector],
    sel_perf: &PerfMatrix,
    accuracy_threshold: Option<f64>,
    satisfaction_threshold: f64,
) -> (usize, Vec<CandidateScore>) {
    assert!(!candidates.is_empty(), "no candidates to select from");
    assert_eq!(
        fit_features.len(),
        fit_perf.num_inputs(),
        "fit features/perf mismatch"
    );
    assert_eq!(
        sel_features.len(),
        sel_perf.num_inputs(),
        "selection features/perf mismatch"
    );

    let n_fit = fit_features.len();
    let n_sel = sel_features.len();
    let scores: Vec<CandidateScore> = candidates
        .iter()
        .map(|cand| {
            let (_, sat_fit) = score_on(cand, fit_features, fit_perf, accuracy_threshold);
            let (objective, sat_sel) = score_on(cand, sel_features, sel_perf, accuracy_threshold);
            // Pool the satisfaction estimate over both slices: the held-out
            // slice alone is too small for a stable 95%-quantile estimate,
            // and the fit slice alone is overfit-optimistic. Additionally
            // require each slice individually to come within 5 points of the
            // bar, which rejects candidates whose pooled estimate is carried
            // entirely by the slice they were fitted on.
            let satisfaction =
                (sat_fit * n_fit as f64 + sat_sel * n_sel as f64) / (n_fit + n_sel).max(1) as f64;
            let slice_floor = (satisfaction_threshold - 0.05).max(0.0);
            CandidateScore {
                objective,
                satisfaction,
                valid: satisfaction >= satisfaction_threshold
                    && sat_fit >= slice_floor
                    && sat_sel >= slice_floor,
            }
        })
        .collect();

    let best = if scores.iter().any(|s| s.valid) {
        scores
            .iter()
            .enumerate()
            .filter(|(_, s)| s.valid)
            .min_by(|a, b| {
                a.1.objective
                    .partial_cmp(&b.1.objective)
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .map(|(i, _)| i)
            .expect("some valid candidate")
    } else {
        scores
            .iter()
            .enumerate()
            .max_by(|a, b| {
                a.1.satisfaction
                    .partial_cmp(&b.1.satisfaction)
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .map(|(i, _)| i)
            .expect("nonempty scores")
    };

    (best, scores)
}

#[cfg(test)]
mod tests {
    use super::*;
    use intune_core::{ExecutionReport, FeatureId};

    /// Builds a toy setting: 2 properties × 2 levels, 3 landmark classes.
    /// Property 0 (cheap at level 0) determines the best landmark exactly;
    /// property 1 is pure noise and expensive.
    fn toy() -> (Vec<FeatureVector>, Vec<usize>, PerfMatrix, Vec<FeatureDef>) {
        let defs = vec![FeatureDef::new("signal", 2), FeatureDef::new("noise", 2)];
        let n = 90;
        let mut features = Vec::with_capacity(n);
        let mut labels = Vec::with_capacity(n);
        let mut reports: Vec<Vec<_>> = (0..3).map(|_| Vec::with_capacity(n)).collect();
        for i in 0..n {
            let class = i % 3;
            let mut fv = FeatureVector::empty(&defs);
            for level in 0..2 {
                fv.insert(
                    FeatureId { property: 0, level },
                    FeatureSample::new(
                        class as f64 * 10.0 + (i % 2) as f64 * 0.1,
                        1.0 + level as f64,
                    ),
                )
                .unwrap();
                fv.insert(
                    FeatureId { property: 1, level },
                    FeatureSample::new(((i * 7) % 5) as f64, 50.0 + level as f64 * 50.0),
                )
                .unwrap();
            }
            features.push(fv);
            labels.push(class);
            for (l, row) in reports.iter_mut().enumerate() {
                let cost = if l == class { 10.0 } else { 100.0 };
                row.push(ExecutionReport::of_cost(cost));
            }
        }
        (features, labels, PerfMatrix::from_reports(reports), defs)
    }

    fn opts() -> SelectionOptions {
        SelectionOptions {
            folds: 3,
            ..SelectionOptions::default()
        }
    }

    #[test]
    fn candidate_family_has_all_kinds() {
        let (features, labels, _, defs) = toy();
        let cm = vec![
            vec![0.0, 1.0, 1.0],
            vec![1.0, 0.0, 1.0],
            vec![1.0, 1.0, 0.0],
        ];
        let cands = train_candidates(&features, &labels, 3, &cm, &defs, &opts());
        // 1 max-apriori + (2+1)*(2+1)-1 = 8 subsets + >=1 incremental.
        assert!(cands.iter().any(|c| c.classifier.kind() == "max-apriori"));
        assert_eq!(
            cands
                .iter()
                .filter(|c| c.classifier.kind() == "subset-tree")
                .count(),
            8
        );
        assert!(cands.iter().any(|c| c.classifier.kind() == "incremental"));
    }

    #[test]
    fn production_selection_prefers_cheap_informative_subset() {
        let (features, labels, perf, defs) = toy();
        let cm = vec![
            vec![0.0, 1.0, 1.0],
            vec![1.0, 0.0, 1.0],
            vec![1.0, 1.0, 0.0],
        ];
        let cands = train_candidates(&features, &labels, 3, &cm, &defs, &opts());
        let (best, scores) =
            select_production(&cands, &features, &perf, &features, &perf, None, 0.95);
        let chosen = &cands[best];
        // The chosen classifier must use the signal property but NOT the
        // expensive noise property.
        let set = chosen.classifier.feature_set();
        assert!(
            set.level_of(0).is_some(),
            "chosen {} lacks signal",
            chosen.name
        );
        assert_eq!(
            set.level_of(1),
            None,
            "chosen {} pays for noise",
            chosen.name
        );
        // Objective ≈ perfect classification cost 10 + cheap extraction 1.
        assert!(
            scores[best].objective < 15.0,
            "objective {}",
            scores[best].objective
        );
    }

    #[test]
    fn max_apriori_wins_when_features_are_useless_and_costly() {
        // One landmark dominates everywhere: extracting anything is waste.
        let defs = vec![FeatureDef::new("noise", 1)];
        let n = 40;
        let mut features = Vec::new();
        let mut labels = Vec::new();
        let mut rows = vec![Vec::new(); 2];
        for i in 0..n {
            let mut fv = FeatureVector::empty(&defs);
            fv.insert(
                FeatureId {
                    property: 0,
                    level: 0,
                },
                FeatureSample::new(((i * 13) % 7) as f64, 1000.0),
            )
            .unwrap();
            features.push(fv);
            labels.push(0);
            rows[0].push(ExecutionReport::of_cost(10.0));
            rows[1].push(ExecutionReport::of_cost(11.0));
        }
        let perf = PerfMatrix::from_reports(rows);
        let cm = vec![vec![0.0, 1.0], vec![1.0, 0.0]];
        let cands = train_candidates(&features, &labels, 2, &cm, &defs, &opts());
        let (best, _) = select_production(&cands, &features, &perf, &features, &perf, None, 0.95);
        assert_eq!(cands[best].classifier.kind(), "max-apriori");
    }

    #[test]
    fn satisfaction_gate_rejects_inaccurate_candidates() {
        // Landmark 0 cheap but inaccurate, landmark 1 expensive but accurate.
        let defs = vec![FeatureDef::new("f", 1)];
        let n = 20;
        let mut features = Vec::new();
        let labels = vec![0usize; n]; // labels say "cheap" everywhere
        let mut rows = vec![Vec::new(); 2];
        for _ in 0..n {
            let mut fv = FeatureVector::empty(&defs);
            fv.insert(
                FeatureId {
                    property: 0,
                    level: 0,
                },
                FeatureSample::new(0.0, 1.0),
            )
            .unwrap();
            features.push(fv);
            rows[0].push(ExecutionReport::with_accuracy(1.0, 0.1));
            rows[1].push(ExecutionReport::with_accuracy(50.0, 0.99));
        }
        let perf = PerfMatrix::from_reports(rows);
        let cm = vec![vec![0.0, 1.0], vec![1.0, 0.0]];
        let cands = train_candidates(&features, &labels, 2, &cm, &defs, &opts());
        let (best, scores) =
            select_production(&cands, &features, &perf, &features, &perf, Some(0.9), 0.95);
        // Every classifier trained on those labels predicts 0 (inaccurate);
        // none is valid, so selection falls back to max satisfaction — which
        // is still the best it can do, and flags invalidity.
        assert!(!scores[best].valid || scores[best].satisfaction >= 0.95);
    }

    #[test]
    fn subset_thinning_respects_cap() {
        let (features, labels, _, _) = toy();
        let defs = vec![
            FeatureDef::new("a", 3),
            FeatureDef::new("b", 3),
            FeatureDef::new("c", 3),
            FeatureDef::new("d", 3),
        ];
        // Re-shape features for 4 props x 3 levels.
        let mut wide = Vec::new();
        for fv_old in &features {
            let mut fv = FeatureVector::empty(&defs);
            for p in 0..4 {
                for l in 0..3 {
                    let src = fv_old
                        .get(FeatureId {
                            property: p % 2,
                            level: l % 2,
                        })
                        .unwrap();
                    fv.insert(
                        FeatureId {
                            property: p,
                            level: l,
                        },
                        src,
                    )
                    .unwrap();
                }
            }
            wide.push(fv);
        }
        let cm = vec![
            vec![0.0, 1.0, 1.0],
            vec![1.0, 0.0, 1.0],
            vec![1.0, 1.0, 0.0],
        ];
        let o = SelectionOptions {
            max_subsets: 20,
            folds: 2,
            ..SelectionOptions::default()
        };
        let cands = train_candidates(&wide, &labels, 3, &cm, &defs, &o);
        let trees = cands
            .iter()
            .filter(|c| c.classifier.kind() == "subset-tree")
            .count();
        assert!(trees <= 21, "cap exceeded: {trees}");
    }
}
