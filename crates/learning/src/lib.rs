//! # intune-learning
//!
//! The paper's contribution: **two-level input learning** for algorithmic
//! autotuning.
//!
//! * **Level 1** ([`level1`]) — extract all declared input features for every
//!   training input, normalize, K-means-cluster the feature vectors, autotune
//!   the program once per cluster representative (medoid) with the
//!   evolutionary autotuner → the *landmark* configurations; then run every
//!   landmark on every training input, recording cost and accuracy into a
//!   [`PerfMatrix`].
//! * **Level 2** ([`labels`], [`classifiers`], [`selection`]) — re-label every
//!   input by its best landmark (closing the paper's *mapping disparity* gap),
//!   build the misclassification [`labels::cost_matrix`]
//!   `C_ij = λ·Ca_ij·max_t(Cp_it) + Cp_ij`, train the candidate classifier
//!   family (max-a-priori, one cost-sensitive decision tree per feature
//!   subset, all-features, incremental feature examination), and select the
//!   production classifier by total objective — predicted-configuration cost
//!   **plus feature extraction cost**, subject to the ≥ 95 % satisfaction
//!   threshold.
//! * **Baselines** ([`oracles`]) — static oracle, dynamic oracle, and the
//!   traditional one-level method (nearest feature-space centroid, all
//!   features extracted, accuracy-oblivious).
//! * **Deployment** ([`pipeline::TunedProgram`]) — classify a fresh input
//!   (paying only the production classifier's feature subset) and run its
//!   landmark.
//!
//! Everything is generic over [`intune_core::Benchmark`] and fully
//! deterministic given the seeds in [`pipeline::TwoLevelOptions`].
//!
//! All benchmark measurement — autotuner objective evaluations, the
//! landmark × input matrix, oracle baselines, and deployment evaluation —
//! routes through the `intune_exec` measurement engine: cells are
//! deduplicated and memoized per corpus, executed on a work-stealing pool
//! with bit-identical results at any worker count, and failing cells
//! surface as typed [`intune_core::Error::Measurement`] errors.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod classifiers;
pub mod labels;
pub mod level1;
pub mod oracles;
pub mod perf;
pub mod pipeline;
pub mod selection;

pub use classifiers::{Classifier, CompiledClassifier};
pub use level1::{LandmarkStrategy, Level1Options, Level1Result};
pub use perf::PerfMatrix;
pub use pipeline::{EvaluationRow, TunedProgram, TwoLevelOptions, TwoLevelResult};
