//! Level 2, part A: performance-based relabeling and the cost matrix.
//!
//! The *second-level clustering*: each training input is re-labeled by its
//! best landmark (its performance-space group), which "directly reflects
//! the performance of various configurations on those inputs" (paper §3.2)
//! and closes the mapping-disparity gap of one-level feature clustering.

use crate::perf::PerfMatrix;

/// Labels each input with its best landmark (the paper's label rule):
///
/// * time-only problems — `argmin_j T_j(i)`;
/// * variable-accuracy problems — the cheapest landmark meeting the accuracy
///   threshold, or the maximum-accuracy landmark if none meets it.
///
/// Ties within `tie_margin` (relative cost) are broken toward the landmark
/// with the highest *global* satisfaction (and then lowest global mean
/// cost): many inputs have several near-equivalent best landmarks, and
/// collapsing them onto robust representatives both shrinks the effective
/// label set (easier classification) and makes misclassifications land on
/// safer configurations.
pub fn label_inputs_with_margin(
    perf: &PerfMatrix,
    accuracy_threshold: Option<f64>,
    tie_margin: f64,
) -> Vec<usize> {
    let k = perf.num_landmarks();
    // Global robustness statistics per landmark.
    let satisfaction: Vec<f64> = (0..k)
        .map(|l| perf.satisfaction(l, accuracy_threshold))
        .collect();
    let mean_cost: Vec<f64> = (0..k).map(|l| perf.mean_cost(l)).collect();

    (0..perf.num_inputs())
        .map(|i| {
            let feasible: Vec<usize> = (0..k)
                .filter(|&l| perf.meets(l, i, accuracy_threshold))
                .collect();
            if feasible.is_empty() {
                // No landmark meets the threshold: take the most accurate.
                (0..k)
                    .max_by(|&a, &b| {
                        let aa = perf.accuracy(a, i).unwrap_or(f64::NEG_INFINITY);
                        let ab = perf.accuracy(b, i).unwrap_or(f64::NEG_INFINITY);
                        aa.partial_cmp(&ab).unwrap_or(std::cmp::Ordering::Equal)
                    })
                    .unwrap_or(0)
            } else {
                let cheapest = feasible
                    .iter()
                    .map(|&l| perf.cost(l, i))
                    .fold(f64::INFINITY, f64::min);
                let bar = cheapest * (1.0 + tie_margin.max(0.0));
                feasible
                    .into_iter()
                    .filter(|&l| perf.cost(l, i) <= bar)
                    .max_by(|&a, &b| {
                        satisfaction[a]
                            .partial_cmp(&satisfaction[b])
                            .unwrap_or(std::cmp::Ordering::Equal)
                            .then(
                                mean_cost[b]
                                    .partial_cmp(&mean_cost[a])
                                    .unwrap_or(std::cmp::Ordering::Equal),
                            )
                    })
                    .expect("nonempty near-tie set")
            }
        })
        .collect()
}

/// [`label_inputs_with_margin`] with the default 10 % tie margin.
pub fn label_inputs(perf: &PerfMatrix, accuracy_threshold: Option<f64>) -> Vec<usize> {
    label_inputs_with_margin(perf, accuracy_threshold, 0.10)
}

/// Fraction of inputs whose second-level label differs from their
/// first-level (feature-space) cluster — the paper reports 73.4 % for
/// K-means on its benchmarks, evidence that the refinement matters.
pub fn relabel_fraction(first_level: &[usize], second_level: &[usize]) -> f64 {
    assert_eq!(
        first_level.len(),
        second_level.len(),
        "label vectors differ"
    );
    if first_level.is_empty() {
        return 0.0;
    }
    first_level
        .iter()
        .zip(second_level)
        .filter(|(a, b)| a != b)
        .count() as f64
        / first_level.len() as f64
}

/// Builds the misclassification cost matrix
/// `C_ij = λ · Ca_ij · max_t(Cp_it) + Cp_ij` where
///
/// * `Cp_ij` — mean execution-cost penalty of running landmark `j` instead
///   of the label landmark `i`, averaged over inputs labeled `i` (clamped
///   at 0);
/// * `Ca_ij` — fraction of inputs labeled `i` on which landmark `j` misses
///   the accuracy threshold (0 when the benchmark has no threshold);
/// * `λ` — the accuracy-penalty weight (the paper sweeps 0.001–1 and uses
///   0.5).
pub fn cost_matrix(
    perf: &PerfMatrix,
    labels: &[usize],
    accuracy_threshold: Option<f64>,
    lambda: f64,
) -> Vec<Vec<f64>> {
    let k = perf.num_landmarks();
    let n = perf.num_inputs();
    assert_eq!(labels.len(), n, "labels must cover every input");

    let mut cp = vec![vec![0.0f64; k]; k];
    let mut ca = vec![vec![0.0f64; k]; k];
    let mut counts = vec![0usize; k];

    for (i, &li) in labels.iter().enumerate() {
        counts[li] += 1;
        for j in 0..k {
            cp[li][j] += (perf.cost(j, i) - perf.cost(li, i)).max(0.0);
            if accuracy_threshold.is_some() && !perf.meets(j, i, accuracy_threshold) {
                ca[li][j] += 1.0;
            }
        }
    }
    for i in 0..k {
        if counts[i] > 0 {
            for j in 0..k {
                cp[i][j] /= counts[i] as f64;
                ca[i][j] /= counts[i] as f64;
            }
        }
    }

    let mut c = vec![vec![0.0f64; k]; k];
    for i in 0..k {
        let max_cp = cp[i].iter().cloned().fold(0.0, f64::max);
        for j in 0..k {
            c[i][j] = lambda * ca[i][j] * max_cp + cp[i][j];
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use intune_core::ExecutionReport;

    fn perf_time_only() -> PerfMatrix {
        // 2 landmarks, 4 inputs; landmark 0 best on inputs 0-1, landmark 1
        // best on inputs 2-3.
        PerfMatrix::from_reports(vec![
            vec![
                ExecutionReport::of_cost(1.0),
                ExecutionReport::of_cost(2.0),
                ExecutionReport::of_cost(9.0),
                ExecutionReport::of_cost(8.0),
            ],
            vec![
                ExecutionReport::of_cost(5.0),
                ExecutionReport::of_cost(6.0),
                ExecutionReport::of_cost(3.0),
                ExecutionReport::of_cost(2.0),
            ],
        ])
    }

    #[test]
    fn time_only_labels_argmin() {
        let labels = label_inputs(&perf_time_only(), None);
        assert_eq!(labels, vec![0, 0, 1, 1]);
    }

    #[test]
    fn accuracy_rule_prefers_feasible() {
        // Landmark 0 is fast but inaccurate on input 0; landmark 1 accurate.
        let perf = PerfMatrix::from_reports(vec![
            vec![ExecutionReport::with_accuracy(1.0, 0.2)],
            vec![ExecutionReport::with_accuracy(10.0, 0.95)],
        ]);
        assert_eq!(label_inputs(&perf, Some(0.9)), vec![1]);
        // Without a threshold the fast one wins.
        assert_eq!(label_inputs(&perf, None), vec![0]);
    }

    #[test]
    fn accuracy_rule_falls_back_to_max_accuracy() {
        let perf = PerfMatrix::from_reports(vec![
            vec![ExecutionReport::with_accuracy(1.0, 0.3)],
            vec![ExecutionReport::with_accuracy(2.0, 0.6)],
        ]);
        // Neither meets 0.9: pick the more accurate landmark 1.
        assert_eq!(label_inputs(&perf, Some(0.9)), vec![1]);
    }

    #[test]
    fn cost_matrix_diag_zero_and_penalties_positive() {
        let perf = perf_time_only();
        let labels = label_inputs(&perf, None);
        let c = cost_matrix(&perf, &labels, None, 0.5);
        assert_eq!(c.len(), 2);
        assert_eq!(c[0][0], 0.0);
        assert_eq!(c[1][1], 0.0);
        // Misrunning label-0 inputs on landmark 1 costs (5-1 + 6-2)/2 = 4.
        assert!((c[0][1] - 4.0).abs() < 1e-12);
        // Misrunning label-1 inputs on landmark 0 costs (9-3 + 8-2)/2 = 6.
        assert!((c[1][0] - 6.0).abs() < 1e-12);
    }

    #[test]
    fn accuracy_penalty_raises_cost() {
        let perf = PerfMatrix::from_reports(vec![
            vec![
                ExecutionReport::with_accuracy(1.0, 0.99),
                ExecutionReport::with_accuracy(1.0, 0.99),
            ],
            vec![
                ExecutionReport::with_accuracy(2.0, 0.1),
                ExecutionReport::with_accuracy(2.0, 0.1),
            ],
        ]);
        let labels = label_inputs(&perf, Some(0.9));
        assert_eq!(labels, vec![0, 0]);
        let with_acc = cost_matrix(&perf, &labels, Some(0.9), 0.5);
        let no_acc = cost_matrix(&perf, &labels, None, 0.5);
        assert!(
            with_acc[0][1] > no_acc[0][1],
            "accuracy violations must add penalty: {} vs {}",
            with_acc[0][1],
            no_acc[0][1]
        );
    }

    #[test]
    fn relabel_fraction_counts_changes() {
        assert_eq!(relabel_fraction(&[0, 1, 2, 0], &[0, 1, 0, 1]), 0.5);
        assert_eq!(relabel_fraction(&[], &[]), 0.0);
    }
}
