//! The end-to-end two-level pipeline, the deployment artifact, and the
//! Table-1-shaped evaluation.

use crate::classifiers::Classifier;
use crate::labels::{cost_matrix, label_inputs, relabel_fraction};
use crate::level1::{run_level1_with_cache, Level1Options, Level1Result};
use crate::oracles::{dynamic_oracle, measured_oracles, static_oracle, OneLevelClassifier};
use crate::perf::PerfMatrix;
use crate::selection::{
    samples_for, select_production, train_candidates, Candidate, CandidateScore, SelectionOptions,
};
use intune_core::{Benchmark, Configuration, ExecutionReport, FeatureVector, Result};
use intune_exec::{CostCache, Engine};

/// All knobs of the two-level method.
#[derive(Debug, Clone)]
pub struct TwoLevelOptions {
    /// Level-1 options (cluster count, EA budget, strategy, seed).
    pub level1: Level1Options,
    /// Cost-matrix accuracy weight λ (paper sweeps 0.001–1; 0.5 best).
    pub lambda: f64,
    /// Candidate training / production selection options.
    pub selection: SelectionOptions,
    /// Fraction of training inputs held out from classifier fitting and
    /// used only to score candidates during production selection (the
    /// paper divides its inputs into a classifier-training set and a set
    /// the candidates are applied to).
    pub selection_fraction: f64,
}

impl Default for TwoLevelOptions {
    fn default() -> Self {
        TwoLevelOptions {
            level1: Level1Options::default(),
            lambda: 0.5,
            selection: SelectionOptions::default(),
            selection_fraction: 0.3,
        }
    }
}

/// Training-cost accounting (the paper's §4.2 training-time discussion:
/// landmark autotuning dominates, and an exhaustive per-input search would
/// cost `inputs / clusters` times more). With the `intune-exec` engine the
/// measurement budget is memoized, so *requested* and *executed* runs
/// diverge: the difference is the cache-hit count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainingStats {
    /// Objective evaluations requested by the evolutionary autotuner
    /// across all landmarks (memoized revisits included).
    pub tuner_evaluations: usize,
    /// Measurement cells requested for the landmark × input matrix
    /// (`clusters × inputs`).
    pub measurement_runs: usize,
    /// Fresh program executions actually performed across all of Level 1
    /// (tuning + matrix fill) after memoization.
    pub measured_runs: usize,
    /// Measurements answered from the cost cache instead of re-running.
    pub cache_hits: usize,
    /// Number of training inputs.
    pub inputs: usize,
    /// Number of landmarks (clusters).
    pub clusters: usize,
}

impl TrainingStats {
    /// How many times more tuner work an exhaustive find-the-best-config-
    /// per-input approach would need (the paper: "over 200 times longer",
    /// given 20 000–30 000 inputs and 100 landmarks).
    pub fn exhaustive_ratio(&self) -> f64 {
        self.inputs as f64 / self.clusters.max(1) as f64
    }

    /// Total fresh program executions during training.
    pub fn total_runs(&self) -> usize {
        self.measured_runs
    }

    /// Fraction of requested measurements served by the cache.
    pub fn cache_hit_rate(&self) -> f64 {
        intune_exec::hit_rate(
            self.cache_hits as u64,
            (self.measured_runs + self.cache_hits) as u64,
        )
    }
}

/// Everything the two-level method learns.
#[derive(Debug, Clone)]
pub struct TwoLevelResult {
    /// Level-1 artifacts (features, clustering, landmarks, perf matrix).
    pub level1: Level1Result,
    /// Second-level (performance-space) label per training input.
    pub labels: Vec<usize>,
    /// Fraction of inputs whose cluster changed between the levels
    /// (the paper's 73.4 % statistic).
    pub relabel_fraction: f64,
    /// The misclassification cost matrix `C_ij`.
    pub cost_matrix: Vec<Vec<f64>>,
    /// The trained candidate family.
    pub candidates: Vec<Candidate>,
    /// Per-candidate selection scores.
    pub scores: Vec<CandidateScore>,
    /// Index of the production classifier in `candidates`.
    pub chosen: usize,
    /// Training-cost accounting.
    pub stats: TrainingStats,
}

impl TwoLevelResult {
    /// The production classifier.
    pub fn production(&self) -> &Classifier {
        &self.candidates[self.chosen].classifier
    }
}

/// Runs the full two-level method on a training corpus. All benchmark
/// measurements route through `engine` (memoized per corpus, deterministic
/// at any worker count).
///
/// # Errors
/// Returns [`intune_core::Error::Measurement`] if any benchmark cell fails.
///
/// # Panics
/// Panics if `inputs` is empty.
pub fn learn<B: Benchmark + Sync>(
    benchmark: &B,
    inputs: &[B::Input],
    opts: &TwoLevelOptions,
    engine: &Engine,
) -> Result<TwoLevelResult>
where
    B::Input: Sync,
{
    learn_with_cache(benchmark, inputs, opts, engine, CostCache::new())
}

/// Like [`learn`], but seeded with a training-corpus cost cache (e.g. one
/// persisted by [`CostCache::save`] from a previous run over the same
/// corpus). The warmed cache comes back in `result.level1.cache`, ready
/// to be saved again.
///
/// # Errors
/// Returns [`intune_core::Error::Measurement`] if any benchmark cell fails.
///
/// # Panics
/// Panics if `inputs` is empty.
pub fn learn_with_cache<B: Benchmark + Sync>(
    benchmark: &B,
    inputs: &[B::Input],
    opts: &TwoLevelOptions,
    engine: &Engine,
    cache: CostCache,
) -> Result<TwoLevelResult>
where
    B::Input: Sync,
{
    let level1 = run_level1_with_cache(benchmark, inputs, &opts.level1, engine, cache)?;
    let threshold = benchmark.accuracy().map(|a| a.threshold);

    let labels = label_inputs(&level1.perf, threshold);
    let relabeled = relabel_fraction(&level1.cluster_labels, &labels);
    let cm = cost_matrix(&level1.perf, &labels, threshold, opts.lambda);

    // Hold out a slice of the training inputs: classifiers are fitted on
    // the rest, candidates are *scored* on the held-out slice only.
    let n = inputs.len();
    let (fit_idx, sel_idx) = intune_ml::crossval::train_test_split(
        n,
        opts.selection_fraction.clamp(0.05, 0.5),
        opts.selection.seed ^ 0x5e1ec7,
    );
    let fit_features: Vec<FeatureVector> = fit_idx
        .iter()
        .map(|&i| level1.features[i].clone())
        .collect();
    let fit_labels: Vec<usize> = fit_idx.iter().map(|&i| labels[i]).collect();
    let fit_perf = level1.perf.select_inputs(&fit_idx);
    let sel_features: Vec<FeatureVector> = sel_idx
        .iter()
        .map(|&i| level1.features[i].clone())
        .collect();
    let sel_perf = level1.perf.select_inputs(&sel_idx);

    let defs = benchmark.properties();
    let mut candidates = train_candidates(
        &fit_features,
        &fit_labels,
        level1.landmarks.len(),
        &cm,
        &defs,
        &opts.selection,
    );
    // Accuracy-conservative tree variants: re-train the subset trees under
    // a strongly accuracy-weighted cost matrix (λ × 8). When features only
    // probabilistically determine feasibility, these trees predict safer
    // landmarks in uncertain regions — candidates the satisfaction gate can
    // accept where the base-λ trees fall short. (The paper sweeps λ
    // globally; instantiating both ends and letting selection arbitrate is
    // the same search, done per candidate.)
    if threshold.is_some() {
        let cm_safe = cost_matrix(&level1.perf, &labels, threshold, opts.lambda * 8.0);
        let safe = train_candidates(
            &fit_features,
            &fit_labels,
            level1.landmarks.len(),
            &cm_safe,
            &defs,
            &opts.selection,
        );
        candidates.extend(safe.into_iter().filter_map(|mut c| {
            if c.classifier.kind() == "subset-tree" {
                c.name = format!("{}@safe", c.name);
                Some(c)
            } else {
                None
            }
        }));
    }
    let (chosen, scores) = select_production(
        &candidates,
        &fit_features,
        &fit_perf,
        &sel_features,
        &sel_perf,
        threshold,
        opts.selection.satisfaction,
    );

    let cache_stats = level1.cache.stats();
    let stats = TrainingStats {
        tuner_evaluations: level1.tuner_evaluations,
        measurement_runs: level1.landmarks.len() * inputs.len(),
        measured_runs: cache_stats.misses as usize,
        cache_hits: cache_stats.hits as usize,
        inputs: inputs.len(),
        clusters: level1.landmarks.len(),
    };

    Ok(TwoLevelResult {
        level1,
        labels,
        relabel_fraction: relabeled,
        cost_matrix: cm,
        candidates,
        scores,
        chosen,
        stats,
    })
}

/// The continuous-learning retrain entry point: runs the full two-level
/// method over the original training corpus **merged with journaled
/// production inputs** (in arrival order, after the base corpus — so base
/// input indices are stable and a persisted, remapped
/// [`CostCache`] warm-starts every previously-measured cell). The
/// resulting `stats.inputs` counts the merged corpus, which is what the
/// exported artifact's `trained_inputs` field reports: a promoted
/// revision provably trained on what production actually served.
///
/// # Errors
/// Returns [`intune_core::Error::Measurement`] if any benchmark cell fails.
///
/// # Panics
/// Panics if the merged corpus is empty.
pub fn relearn_merged<B: Benchmark + Sync>(
    benchmark: &B,
    base_inputs: &[B::Input],
    journaled_inputs: &[B::Input],
    opts: &TwoLevelOptions,
    engine: &Engine,
    cache: CostCache,
) -> Result<TwoLevelResult>
where
    B::Input: Sync + Clone,
{
    let merged: Vec<B::Input> = base_inputs
        .iter()
        .chain(journaled_inputs)
        .cloned()
        .collect();
    learn_with_cache(benchmark, &merged, opts, engine, cache)
}

/// The deployment artifact: landmarks + production classifier. At run time
/// it extracts only the classifier's feature subset (lazily, so the
/// incremental classifier stops paying as soon as it is confident), picks a
/// landmark, and runs it.
#[derive(Debug, Clone)]
pub struct TunedProgram<'b, B: Benchmark> {
    benchmark: &'b B,
    landmarks: Vec<Configuration>,
    classifier: Classifier,
}

impl<'b, B: Benchmark> TunedProgram<'b, B> {
    /// Assembles the artifact from a learning result.
    pub fn new(benchmark: &'b B, result: &TwoLevelResult) -> Self {
        TunedProgram::from_parts(
            benchmark,
            result.level1.landmarks.clone(),
            result.production().clone(),
        )
    }

    /// Assembles the artifact from pre-built parts — the constructor used
    /// when a persisted `intune_serve` model artifact is reloaded instead
    /// of trained in-process.
    pub fn from_parts(
        benchmark: &'b B,
        landmarks: Vec<Configuration>,
        classifier: Classifier,
    ) -> Self {
        TunedProgram {
            benchmark,
            landmarks,
            classifier,
        }
    }

    /// The landmark configurations.
    pub fn landmarks(&self) -> &[Configuration] {
        &self.landmarks
    }

    /// The production classifier.
    pub fn classifier(&self) -> &Classifier {
        &self.classifier
    }

    /// Classifies an input, returning `(landmark index, extraction cost)`.
    pub fn select(&self, input: &B::Input) -> (usize, f64) {
        self.classifier
            .classify_lazy(|property, level| self.benchmark.extract(property, level, input))
    }

    /// Classifies and runs: returns the execution report of the chosen
    /// landmark plus the feature-extraction cost paid to choose it.
    pub fn run(&self, input: &B::Input) -> (ExecutionReport, f64) {
        let (landmark, extraction) = self.select(input);
        (
            self.benchmark.run(&self.landmarks[landmark], input),
            extraction,
        )
    }
}

/// One Table-1 row: mean speedups over the static oracle (arithmetic mean
/// of per-input ratios) plus the satisfaction statistics.
#[derive(Debug, Clone)]
pub struct EvaluationRow {
    /// Benchmark/test name.
    pub name: String,
    /// Dynamic-oracle speedup (upper bound; no feature cost).
    pub dynamic_oracle: f64,
    /// Two-level speedup without feature-extraction time.
    pub two_level: f64,
    /// Two-level speedup with feature-extraction time.
    pub two_level_fx: f64,
    /// One-level speedup without feature-extraction time.
    pub one_level: f64,
    /// One-level speedup with feature-extraction time.
    pub one_level_fx: f64,
    /// Percentage of test inputs on which the one-level method meets the
    /// accuracy threshold (the paper's rightmost column).
    pub one_level_accuracy_pct: f64,
    /// Same for the two-level method (≥ 95 in the paper).
    pub two_level_accuracy_pct: f64,
    /// Same for the dynamic oracle — the feasibility ceiling: no method can
    /// satisfy more inputs than the best landmark per input does.
    pub dynamic_accuracy_pct: f64,
    /// Same for the static oracle.
    pub static_accuracy_pct: f64,
    /// Fraction of training inputs relabeled by the second level.
    pub relabel_fraction: f64,
    /// Per-input two-level (with extraction) speedups, ascending — the
    /// Figure 6 distribution.
    pub per_input_speedups: Vec<f64>,
    /// Chosen production classifier description.
    pub production_classifier: String,
}

/// Evaluates a learning result on held-out test inputs, producing the
/// paper's Table-1 row (plus the Figure 6 distribution). The test-corpus
/// landmark measurements are submitted to `engine` as one deduplicated
/// plan shared by the oracle baselines and both classifiers.
///
/// # Errors
/// Returns [`intune_core::Error::Measurement`] if any benchmark cell fails.
///
/// # Panics
/// Panics if `test_inputs` is empty.
pub fn evaluate<B: Benchmark + Sync>(
    benchmark: &B,
    result: &TwoLevelResult,
    test_inputs: &[B::Input],
    engine: &Engine,
) -> Result<EvaluationRow>
where
    B::Input: Sync,
{
    let mut cache = CostCache::new();
    evaluate_with_cache(benchmark, result, test_inputs, engine, &mut cache)
}

/// Like [`evaluate`], but measuring through a caller-owned test-corpus
/// cache (e.g. one persisted by [`CostCache::save`]), which is warmed in
/// place and can be saved again afterwards.
///
/// # Errors
/// Returns [`intune_core::Error::Measurement`] if any benchmark cell fails.
///
/// # Panics
/// Panics if `test_inputs` is empty.
pub fn evaluate_with_cache<B: Benchmark + Sync>(
    benchmark: &B,
    result: &TwoLevelResult,
    test_inputs: &[B::Input],
    engine: &Engine,
    cache: &mut CostCache,
) -> Result<EvaluationRow>
where
    B::Input: Sync,
{
    evaluate_impl(benchmark, result, test_inputs, engine, cache, None)
}

fn evaluate_impl<B: Benchmark + Sync>(
    benchmark: &B,
    result: &TwoLevelResult,
    test_inputs: &[B::Input],
    engine: &Engine,
    cache: &mut CostCache,
    backend: Option<&dyn SelectionBackend>,
) -> Result<EvaluationRow>
where
    B::Input: Sync,
{
    assert!(!test_inputs.is_empty(), "evaluation needs test inputs");
    let threshold = benchmark.accuracy().map(|a| a.threshold);
    let satisfaction = 0.95;

    // Landmark performance on the test set plus the per-input (dynamic)
    // oracle, measured through the engine with the test-corpus cache.
    let (perf_test, _, dyn_labels) = measured_oracles(
        benchmark,
        &result.level1.landmarks,
        test_inputs,
        engine,
        cache,
        threshold,
        satisfaction,
    )?;
    // Full feature vectors for the test set (classification + one-level).
    let features_test: Vec<FeatureVector> = test_inputs
        .iter()
        .map(|i| benchmark.extract_all(i))
        .collect();

    // Static oracle is chosen on TRAINING evidence, applied to test inputs
    // (the test-measured static oracle from `measured_oracles` would be an
    // unfairly clairvoyant baseline, so it is discarded).
    let static_lm = static_oracle(&result.level1.perf, threshold, satisfaction);
    let static_cost: Vec<f64> = (0..test_inputs.len())
        .map(|i| perf_test.cost(static_lm, i))
        .collect();

    // Dynamic oracle.
    let dyn_speedup = mean_ratio(&static_cost, |i| perf_test.cost(dyn_labels[i], i));
    let dyn_met = (0..test_inputs.len())
        .filter(|&i| perf_test.meets(dyn_labels[i], i, threshold))
        .count();
    let static_met = (0..test_inputs.len())
        .filter(|&i| perf_test.meets(static_lm, i, threshold))
        .count();

    // Two-level production classifier — in-process, or a remote
    // selection backend scored under identical accounting.
    let pairs = two_level_selections(result, &features_test, backend)?;
    let mut tl_cost = Vec::with_capacity(test_inputs.len());
    let mut tl_fx = Vec::with_capacity(test_inputs.len());
    let mut tl_met = 0usize;
    for (i, &(class, fx)) in pairs.iter().enumerate() {
        tl_cost.push(perf_test.cost(class, i));
        tl_fx.push(fx);
        if perf_test.meets(class, i, threshold) {
            tl_met += 1;
        }
    }
    let two_level = mean_ratio(&static_cost, |i| tl_cost[i]);
    let two_level_fx = mean_ratio(&static_cost, |i| tl_cost[i] + tl_fx[i]);
    let mut per_input: Vec<f64> = (0..test_inputs.len())
        .map(|i| static_cost[i] / (tl_cost[i] + tl_fx[i]).max(1e-300))
        .collect();
    per_input.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));

    // One-level baseline: nearest centroid, full feature set, accuracy-blind.
    let one_level_clf = OneLevelClassifier::new(
        result.level1.normalizer.clone(),
        result.level1.centroids.clone(),
    );
    let mut ol_cost = Vec::with_capacity(test_inputs.len());
    let mut ol_fx = Vec::with_capacity(test_inputs.len());
    let mut ol_met = 0usize;
    for (i, fv) in features_test.iter().enumerate() {
        let class = one_level_clf.classify(&fv.dense());
        ol_cost.push(perf_test.cost(class, i));
        // The one-level method extracts every declared feature.
        ol_fx.push(full_extraction_cost(fv));
        if perf_test.meets(class, i, threshold) {
            ol_met += 1;
        }
    }
    let one_level = mean_ratio(&static_cost, |i| ol_cost[i]);
    let one_level_fx = mean_ratio(&static_cost, |i| ol_cost[i] + ol_fx[i]);

    Ok(EvaluationRow {
        name: benchmark.name().to_string(),
        dynamic_oracle: dyn_speedup,
        two_level,
        two_level_fx,
        one_level,
        one_level_fx,
        one_level_accuracy_pct: 100.0 * ol_met as f64 / test_inputs.len() as f64,
        two_level_accuracy_pct: 100.0 * tl_met as f64 / test_inputs.len() as f64,
        dynamic_accuracy_pct: 100.0 * dyn_met as f64 / test_inputs.len() as f64,
        static_accuracy_pct: 100.0 * static_met as f64 / test_inputs.len() as f64,
        relabel_fraction: result.relabel_fraction,
        per_input_speedups: per_input,
        production_classifier: result.candidates[result.chosen].name.clone(),
    })
}

/// A remote selection service the evaluation harness can score in place
/// of the in-process production classifier — the `intune_daemon` client
/// implements this. The backend receives fully-extracted feature vectors
/// (selection policy is centralized; extraction stays near the data) and
/// answers `(landmark index, extraction cost actually charged)` pairs.
/// A faithful backend is **bit-identical** to the in-process path, which
/// is exactly what routing `table1 --daemon` through this trait proves.
pub trait SelectionBackend {
    /// Confirms the backend serves a model for `benchmark` (by name)
    /// before any selection is requested.
    ///
    /// # Errors
    /// Returns [`intune_core::Error::Artifact`] on a mismatch.
    fn verify_benchmark(&self, benchmark: &str) -> Result<()>;

    /// Selects a landmark for every feature vector, in order.
    ///
    /// # Errors
    /// Propagates transport or validation failures as typed errors.
    fn select_remote(&self, features: &[FeatureVector]) -> Result<Vec<(usize, f64)>>;
}

/// Like [`evaluate_with_cache`], but scoring a remote [`SelectionBackend`]
/// in place of the in-process production classifier: the two-level row is
/// computed from the backend's `(landmark, extraction cost)` answers,
/// everything else (oracles, one-level baseline, landmark measurements)
/// stays local. With a faithful backend the resulting row is
/// byte-identical to the in-process one.
///
/// # Errors
/// Returns [`intune_core::Error::Measurement`] on failing cells, plus
/// whatever the backend raises (benchmark mismatch, transport failure,
/// out-of-range landmark answers).
///
/// # Panics
/// Panics if `test_inputs` is empty.
pub fn evaluate_with_backend<B: Benchmark + Sync>(
    benchmark: &B,
    result: &TwoLevelResult,
    test_inputs: &[B::Input],
    engine: &Engine,
    cache: &mut CostCache,
    backend: &dyn SelectionBackend,
) -> Result<EvaluationRow>
where
    B::Input: Sync,
{
    backend.verify_benchmark(benchmark.name())?;
    evaluate_impl(benchmark, result, test_inputs, engine, cache, Some(backend))
}

/// Resolves the two-level `(landmark, extraction cost)` pairs either
/// locally or through a backend, bounds-checking remote answers.
fn two_level_selections(
    result: &TwoLevelResult,
    features_test: &[FeatureVector],
    backend: Option<&dyn SelectionBackend>,
) -> Result<Vec<(usize, f64)>> {
    let landmarks = result.level1.landmarks.len();
    let pairs = match backend {
        Some(backend) => backend.select_remote(features_test)?,
        None => {
            let production = result.production();
            let set = production.feature_set();
            features_test
                .iter()
                .map(|fv| production.classify_costed(&samples_for(fv, &set)))
                .collect()
        }
    };
    if pairs.len() != features_test.len() {
        return Err(intune_core::Error::artifact(format!(
            "selection backend answered {} selections for {} inputs",
            pairs.len(),
            features_test.len()
        )));
    }
    if let Some(&(lm, _)) = pairs.iter().find(|&&(lm, _)| lm >= landmarks) {
        return Err(intune_core::Error::artifact(format!(
            "selection backend chose landmark {lm}, model has {landmarks}"
        )));
    }
    Ok(pairs)
}

/// Mean over inputs of `static_cost[i] / denom(i)`.
fn mean_ratio(static_cost: &[f64], denom: impl Fn(usize) -> f64) -> f64 {
    let n = static_cost.len();
    (0..n)
        .map(|i| static_cost[i] / denom(i).max(1e-300))
        .sum::<f64>()
        / n.max(1) as f64
}

/// Extraction cost of the complete feature vector (every property at every
/// level) — what the one-level method pays.
fn full_extraction_cost(fv: &FeatureVector) -> f64 {
    fv.total_cost()
}

/// Convenience: the mean speedup of the dynamic oracle over the static
/// oracle for a restricted landmark subset — the quantity swept in
/// Figure 8 (speedup vs. number of landmark configurations).
pub fn subset_oracle_speedup(
    perf: &PerfMatrix,
    subset: &[usize],
    accuracy_threshold: Option<f64>,
    satisfaction: f64,
) -> f64 {
    let sub = perf.select_landmarks(subset);
    let static_full = static_oracle(perf, accuracy_threshold, satisfaction);
    let labels = dynamic_oracle(&sub, accuracy_threshold);
    let n = perf.num_inputs();
    (0..n)
        .map(|i| perf.cost(static_full, i) / sub.cost(labels[i], i).max(1e-300))
        .sum::<f64>()
        / n.max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use intune_autotuner::TunerOptions;
    use intune_core::{AccuracySpec, ConfigSpace, FeatureDef, FeatureSample};
    use intune_ml::TreeOptions;

    /// Same synthetic benchmark family as level1 tests: 3 input kinds, the
    /// matching switch value is 3-5x cheaper, kind readable from feature 0
    /// (cheap) while feature 1 is an expensive red herring.
    struct Synthetic;

    impl Benchmark for Synthetic {
        type Input = (usize, f64);

        fn name(&self) -> &str {
            "synthetic"
        }

        fn space(&self) -> ConfigSpace {
            ConfigSpace::builder()
                .switch("alg", 3)
                .int("knob", 0, 10)
                .build()
        }

        fn run(&self, cfg: &Configuration, input: &Self::Input) -> ExecutionReport {
            let (kind, size) = *input;
            let alg = cfg.choice(0);
            let penalty = 1.0 + 2.0 * ((alg + 3 - kind) % 3) as f64;
            ExecutionReport::with_accuracy(size * penalty, 1.0)
        }

        fn accuracy(&self) -> Option<AccuracySpec> {
            Some(AccuracySpec::new(0.5))
        }

        fn properties(&self) -> Vec<FeatureDef> {
            vec![FeatureDef::new("kind", 2), FeatureDef::new("noise", 2)]
        }

        fn extract(&self, property: usize, level: usize, input: &Self::Input) -> FeatureSample {
            match property {
                0 => FeatureSample::new(input.0 as f64, 1.0 + level as f64),
                _ => FeatureSample::new((input.1 * 7.0) % 5.0, 200.0 * (level + 1) as f64),
            }
        }
    }

    fn corpus(n: usize, seed: usize) -> Vec<(usize, f64)> {
        (0..n)
            .map(|i| ((i + seed) % 3, 100.0 + ((i * 17 + seed) % 9) as f64 * 10.0))
            .collect()
    }

    fn options() -> TwoLevelOptions {
        TwoLevelOptions {
            level1: Level1Options {
                clusters: 3,
                tuner: TunerOptions {
                    population: 10,
                    generations: 8,
                    ..TunerOptions::quick(1)
                },
                ..Level1Options::default()
            },
            lambda: 0.5,
            selection: SelectionOptions {
                folds: 3,
                tree: TreeOptions {
                    max_depth: 8,
                    ..TreeOptions::default()
                },
                ..SelectionOptions::default()
            },
            selection_fraction: 0.3,
        }
    }

    #[test]
    fn end_to_end_learn_and_evaluate() {
        let b = Synthetic;
        let train = corpus(60, 0);
        let test = corpus(45, 1);
        let result = learn(&b, &train, &options(), &Engine::serial()).unwrap();
        let row = evaluate(&b, &result, &test, &Engine::serial()).unwrap();

        // The synthetic problem is perfectly classifiable from the cheap
        // feature, so the two-level method should approach the dynamic
        // oracle and trounce the static oracle.
        assert!(row.dynamic_oracle > 1.2, "dyn {}", row.dynamic_oracle);
        assert!(row.two_level > 1.2, "two-level {}", row.two_level);
        assert!(
            row.two_level_fx > 1.1,
            "two-level w/ extraction {}",
            row.two_level_fx
        );
        assert!(
            row.dynamic_oracle >= row.two_level - 1e-9,
            "oracle bounds the classifier"
        );
        assert!(row.two_level_accuracy_pct >= 95.0);
    }

    #[test]
    fn production_classifier_avoids_expensive_noise_feature() {
        let b = Synthetic;
        let train = corpus(60, 0);
        let result = learn(&b, &train, &options(), &Engine::serial()).unwrap();
        let set = result.production().feature_set();
        assert_eq!(
            set.level_of(1),
            None,
            "production classifier {} should skip the 200-cost noise property",
            result.candidates[result.chosen].name
        );
    }

    #[test]
    fn two_level_beats_one_level_with_extraction_costs() {
        let b = Synthetic;
        let train = corpus(60, 0);
        let test = corpus(45, 2);
        let result = learn(&b, &train, &options(), &Engine::serial()).unwrap();
        let row = evaluate(&b, &result, &test, &Engine::serial()).unwrap();
        // One-level pays the 200+400-cost noise features on a ~100-300-cost
        // program: with extraction it must collapse well below 1x.
        assert!(
            row.one_level_fx < 0.7,
            "one-level with extraction {}",
            row.one_level_fx
        );
        assert!(
            row.two_level_fx > row.one_level_fx,
            "two-level {} vs one-level {}",
            row.two_level_fx,
            row.one_level_fx
        );
    }

    #[test]
    fn tuned_program_round_trip() {
        let b = Synthetic;
        let train = corpus(60, 0);
        let result = learn(&b, &train, &options(), &Engine::serial()).unwrap();
        let tuned = TunedProgram::new(&b, &result);
        // Deployment on fresh inputs: selection must pick the matching
        // landmark kind for nearly all inputs.
        let mut correct = 0;
        let fresh = corpus(30, 5);
        for input in &fresh {
            let (lm, fx) = tuned.select(input);
            assert!(fx >= 0.0);
            if tuned.landmarks()[lm].choice(0) == input.0 {
                correct += 1;
            }
        }
        assert!(correct >= 28, "only {correct}/30 classified correctly");
        let (report, _) = tuned.run(&fresh[0]);
        assert!(report.cost > 0.0);
    }

    /// A faithful backend: answers exactly what the in-process production
    /// classifier would (the contract a correct daemon must meet).
    struct Faithful {
        classifier: Classifier,
    }

    impl SelectionBackend for Faithful {
        fn verify_benchmark(&self, benchmark: &str) -> Result<()> {
            if benchmark == "synthetic" {
                Ok(())
            } else {
                Err(intune_core::Error::artifact(format!(
                    "backend serves `synthetic`, not `{benchmark}`"
                )))
            }
        }

        fn select_remote(&self, features: &[FeatureVector]) -> Result<Vec<(usize, f64)>> {
            let set = self.classifier.feature_set();
            Ok(features
                .iter()
                .map(|fv| self.classifier.classify_costed(&samples_for(fv, &set)))
                .collect())
        }
    }

    /// A broken backend: routes everything to a landmark the model does
    /// not have.
    struct OutOfRange;

    impl SelectionBackend for OutOfRange {
        fn verify_benchmark(&self, _benchmark: &str) -> Result<()> {
            Ok(())
        }

        fn select_remote(&self, features: &[FeatureVector]) -> Result<Vec<(usize, f64)>> {
            Ok(features.iter().map(|_| (99usize, 0.0)).collect())
        }
    }

    #[test]
    fn faithful_backend_reproduces_the_in_process_row_bit_for_bit() {
        let b = Synthetic;
        let train = corpus(60, 0);
        let test = corpus(45, 3);
        let result = learn(&b, &train, &options(), &Engine::serial()).unwrap();
        let local = evaluate(&b, &result, &test, &Engine::serial()).unwrap();
        let backend = Faithful {
            classifier: result.production().clone(),
        };
        let mut cache = CostCache::new();
        let remote =
            evaluate_with_backend(&b, &result, &test, &Engine::serial(), &mut cache, &backend)
                .unwrap();
        assert_eq!(local.two_level.to_bits(), remote.two_level.to_bits());
        assert_eq!(local.two_level_fx.to_bits(), remote.two_level_fx.to_bits());
        assert_eq!(local.two_level_accuracy_pct, remote.two_level_accuracy_pct);
        assert_eq!(
            local
                .per_input_speedups
                .iter()
                .map(|f| f.to_bits())
                .collect::<Vec<_>>(),
            remote
                .per_input_speedups
                .iter()
                .map(|f| f.to_bits())
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn lying_backends_surface_typed_errors() {
        let b = Synthetic;
        let train = corpus(60, 0);
        let test = corpus(20, 3);
        let result = learn(&b, &train, &options(), &Engine::serial()).unwrap();
        let mut cache = CostCache::new();
        let err = evaluate_with_backend(
            &b,
            &result,
            &test,
            &Engine::serial(),
            &mut cache,
            &OutOfRange,
        )
        .unwrap_err();
        assert!(
            matches!(err, intune_core::Error::Artifact { .. }),
            "{err:?}"
        );
        assert!(err.to_string().contains("landmark 99"), "{err}");

        // verify_benchmark gates before any selection travels.
        let backend = Faithful {
            classifier: result.production().clone(),
        };
        assert!(backend.verify_benchmark("other").is_err());
    }

    #[test]
    fn figure8_subset_speedup_increases_with_landmarks() {
        let b = Synthetic;
        let train = corpus(60, 0);
        let result = learn(&b, &train, &options(), &Engine::serial()).unwrap();
        let perf = &result.level1.perf;
        let one = subset_oracle_speedup(perf, &[0], Some(0.5), 0.95);
        let all = subset_oracle_speedup(perf, &[0, 1, 2], Some(0.5), 0.95);
        assert!(
            all >= one - 1e-9,
            "more landmarks cannot hurt: {all} vs {one}"
        );
        assert!(all > 1.2, "full subset should show speedup, got {all}");
    }

    #[test]
    fn relabel_fraction_in_unit_range() {
        let b = Synthetic;
        let train = corpus(60, 0);
        let result = learn(&b, &train, &options(), &Engine::serial()).unwrap();
        assert!(result.relabel_fraction >= 0.0 && result.relabel_fraction <= 1.0);
    }
}
