//! Level 1: feature extraction, input clustering, landmark creation, and
//! performance measurement (Figure 4 of the paper).
//!
//! All benchmark executions — the evolutionary autotuner's objective
//! evaluations and the landmark × input `PerfMatrix` fill — route through
//! the `intune_exec` measurement engine with one [`CostCache`] per training
//! corpus, so a cell measured while tuning a landmark is never re-run when
//! the matrix is filled, and a failing cell surfaces as a typed
//! [`intune_core::Error::Measurement`] instead of aborting the process.

use crate::perf::PerfMatrix;
use intune_autotuner::{EvolutionaryTuner, Objective, TunerOptions};
use intune_core::{Benchmark, Configuration, FeatureVector, Result};
use intune_exec::{CostCache, Engine};
use intune_ml::{KMeans, KMeansOptions, ZScore};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// How cluster representatives are chosen — K-means medoids (the paper's
/// method) or uniform random inputs (the §3.1 ablation baseline, which the
/// paper reports to be ~41 % worse at 5 landmarks).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LandmarkStrategy {
    /// K-means++ clustering in normalized feature space; autotune medoids.
    KMeansMedoids,
    /// Uniformly random representative inputs.
    UniformRandom,
}

/// Options for [`run_level1`].
#[derive(Debug, Clone)]
pub struct Level1Options {
    /// Number of input clusters K (the paper uses 100).
    pub clusters: usize,
    /// Budget of the evolutionary autotuner per landmark.
    pub tuner: TunerOptions,
    /// Representative-selection strategy.
    pub strategy: LandmarkStrategy,
    /// RNG seed (clustering, random strategy, measurement-cell seeds).
    pub seed: u64,
}

impl Default for Level1Options {
    fn default() -> Self {
        Level1Options {
            clusters: 10,
            tuner: TunerOptions::quick(0),
            strategy: LandmarkStrategy::KMeansMedoids,
            seed: 0,
        }
    }
}

/// Everything Level 1 produces; the evidence Level 2 consumes.
#[derive(Debug, Clone)]
pub struct Level1Result {
    /// All features of every training input (value + extraction cost).
    pub features: Vec<FeatureVector>,
    /// Normalizer fitted on the dense training feature matrix.
    pub normalizer: ZScore,
    /// Feature-space cluster centroids (normalized space).
    pub centroids: Vec<Vec<f64>>,
    /// Feature-space cluster label per input (the *first-level* grouping).
    pub cluster_labels: Vec<usize>,
    /// Index of the representative input autotuned for each cluster.
    pub representatives: Vec<usize>,
    /// The landmark configurations, one per cluster.
    pub landmarks: Vec<Configuration>,
    /// Landmark × input execution evidence.
    pub perf: PerfMatrix,
    /// Total program executions spent by the autotuner across landmarks.
    pub tuner_evaluations: usize,
    /// The training-corpus cost cache (warm: every tuner evaluation and
    /// matrix cell is memoized). Callers measuring more configurations on
    /// the *same* corpus should keep feeding this cache.
    pub cache: CostCache,
}

/// Runs Level 1 end to end on the given measurement engine with a fresh
/// per-corpus cost cache (see [`run_level1_with_cache`] to warm-start
/// from a persisted cache).
///
/// # Errors
/// Returns [`intune_core::Error::Measurement`] if any benchmark cell fails.
///
/// # Panics
/// Panics if `inputs` is empty or `opts.clusters == 0`.
pub fn run_level1<B: Benchmark + Sync>(
    benchmark: &B,
    inputs: &[B::Input],
    opts: &Level1Options,
    engine: &Engine,
) -> Result<Level1Result>
where
    B::Input: Sync,
{
    run_level1_with_cache(benchmark, inputs, opts, engine, CostCache::new())
}

/// Like [`run_level1`], but seeded with a caller-owned cost cache — e.g.
/// one persisted by [`CostCache::save`] from a previous run over the
/// *same corpus* (cells are keyed by input index). Cells already present
/// are answered from memory; the warmed cache comes back in
/// [`Level1Result::cache`].
///
/// # Errors
/// Returns [`intune_core::Error::Measurement`] if any benchmark cell fails.
///
/// # Panics
/// Panics if `inputs` is empty or `opts.clusters == 0`.
pub fn run_level1_with_cache<B: Benchmark + Sync>(
    benchmark: &B,
    inputs: &[B::Input],
    opts: &Level1Options,
    engine: &Engine,
    mut cache: CostCache,
) -> Result<Level1Result>
where
    B::Input: Sync,
{
    assert!(!inputs.is_empty(), "level 1 requires training inputs");
    assert!(opts.clusters > 0, "level 1 requires at least one cluster");

    // Step 1: feature extraction (all properties at all levels).
    let features: Vec<FeatureVector> = inputs.iter().map(|i| benchmark.extract_all(i)).collect();
    let dense: Vec<Vec<f64>> = features.iter().map(|f| f.dense()).collect();

    // Step 2: normalize + cluster.
    let normalizer = ZScore::fit(&dense);
    let normalized = normalizer.transform_all(&dense);
    let km = KMeans::fit(
        &normalized,
        KMeansOptions {
            k: opts.clusters,
            max_iters: 100,
            seed: opts.seed,
            tol: 1e-9,
        },
    );

    let (centroids, cluster_labels, representatives) = match opts.strategy {
        LandmarkStrategy::KMeansMedoids => (
            km.centroids().to_vec(),
            km.labels().to_vec(),
            km.medoids(&normalized),
        ),
        LandmarkStrategy::UniformRandom => {
            let mut rng = StdRng::seed_from_u64(opts.seed ^ 0x5eed);
            let k = opts.clusters.min(inputs.len());
            let reps: Vec<usize> = (0..k).map(|_| rng.gen_range(0..inputs.len())).collect();
            // Clusters induced by nearest representative in feature space.
            let centroids: Vec<Vec<f64>> = reps.iter().map(|&r| normalized[r].clone()).collect();
            let labels: Vec<usize> = normalized.iter().map(|p| nearest(&centroids, p)).collect();
            (centroids, labels, reps)
        }
    };

    // Step 3: landmark creation — one EA run per representative input. The
    // objective evaluations go through the engine's memoizing single-cell
    // path: the EA revisits configurations (elites' kin, converged
    // populations), and each revisit is a cache hit, not a re-run.
    let objective = match benchmark.accuracy() {
        Some(spec) => Objective::with_accuracy_target(spec.threshold),
        None => Objective::cost_only(),
    };
    let space = benchmark.space();
    let mut tuner_evaluations = 0usize;
    let mut landmarks: Vec<Configuration> = Vec::with_capacity(representatives.len());
    for (c, &rep) in representatives.iter().enumerate() {
        let tuner = EvolutionaryTuner::new(TunerOptions {
            seed: opts.tuner.seed ^ (c as u64).wrapping_mul(0x9e3779b97f4a7c15),
            ..opts.tuner
        });
        let result = tuner.try_tune(&space, objective, |cfg| {
            engine.measure_one(benchmark, rep, &inputs[rep], cfg, &mut cache)
        })?;
        tuner_evaluations += result.evaluations;
        landmarks.push(result.best);
    }

    // Step 4: performance measurement — every landmark on every input,
    // submitted as one deduplicated plan. Each landmark's cell on its own
    // representative was already measured during tuning: a cache hit.
    let perf = measure_with_cache(benchmark, &landmarks, inputs, engine, &mut cache)?;

    Ok(Level1Result {
        features,
        normalizer,
        centroids,
        cluster_labels,
        representatives,
        landmarks,
        perf,
        tuner_evaluations,
        cache,
    })
}

fn nearest(centroids: &[Vec<f64>], p: &[f64]) -> usize {
    let mut best = (0usize, f64::INFINITY);
    for (c, centroid) in centroids.iter().enumerate() {
        let d: f64 = centroid.iter().zip(p).map(|(a, b)| (a - b) * (a - b)).sum();
        if d < best.1 {
            best = (c, d);
        }
    }
    best.0
}

/// Measures all `landmarks` on all `inputs` through the engine with a
/// fresh cache. The result is deterministic at any engine worker count
/// (cells are independent, reports deterministic, results indexed).
pub fn measure<B: Benchmark + Sync>(
    benchmark: &B,
    landmarks: &[Configuration],
    inputs: &[B::Input],
    engine: &Engine,
) -> Result<PerfMatrix>
where
    B::Input: Sync,
{
    let mut cache = CostCache::new();
    measure_with_cache(benchmark, landmarks, inputs, engine, &mut cache)
}

/// Like [`measure`], but re-using (and warming) a caller-owned cache that
/// must belong to the same input corpus.
pub fn measure_with_cache<B: Benchmark + Sync>(
    benchmark: &B,
    landmarks: &[Configuration],
    inputs: &[B::Input],
    engine: &Engine,
    cache: &mut CostCache,
) -> Result<PerfMatrix>
where
    B::Input: Sync,
{
    let rows = engine.measure_matrix(benchmark, landmarks, inputs, cache)?;
    Ok(PerfMatrix::from_reports(rows))
}

#[cfg(test)]
mod tests {
    use super::*;
    use intune_core::{AccuracySpec, ConfigSpace, ExecutionReport, FeatureDef, FeatureSample};

    /// A synthetic benchmark whose best switch value equals the input's
    /// "kind" (0, 1, or 2), discoverable from feature 0.
    struct Synthetic;

    impl Benchmark for Synthetic {
        type Input = (usize, f64); // (kind, size)

        fn name(&self) -> &str {
            "synthetic"
        }

        fn space(&self) -> ConfigSpace {
            ConfigSpace::builder()
                .switch("alg", 3)
                .int("knob", 0, 10)
                .build()
        }

        fn run(&self, cfg: &Configuration, input: &Self::Input) -> ExecutionReport {
            let (kind, size) = *input;
            let alg = cfg.choice(0);
            // Matching algorithm: cost = size; mismatched: 3x..5x.
            let penalty = 1.0 + 2.0 * ((alg + 3 - kind) % 3) as f64;
            ExecutionReport::with_accuracy(size * penalty, 1.0)
        }

        fn accuracy(&self) -> Option<AccuracySpec> {
            Some(AccuracySpec::new(0.5))
        }

        fn properties(&self) -> Vec<FeatureDef> {
            vec![FeatureDef::new("kind", 2), FeatureDef::new("size", 2)]
        }

        fn extract(&self, property: usize, level: usize, input: &Self::Input) -> FeatureSample {
            let value = match property {
                0 => input.0 as f64,
                _ => input.1,
            };
            FeatureSample::new(value, (level + 1) as f64)
        }
    }

    fn corpus() -> Vec<(usize, f64)> {
        (0..60)
            .map(|i| (i % 3, 100.0 + (i % 7) as f64 * 10.0))
            .collect()
    }

    fn options() -> Level1Options {
        Level1Options {
            clusters: 3,
            tuner: TunerOptions {
                population: 10,
                generations: 8,
                ..TunerOptions::quick(1)
            },
            strategy: LandmarkStrategy::KMeansMedoids,
            seed: 0,
        }
    }

    fn run(opts: &Level1Options) -> Level1Result {
        run_level1(&Synthetic, &corpus(), opts, &Engine::serial()).unwrap()
    }

    #[test]
    fn level1_shapes_are_consistent() {
        let r = run(&options());
        assert_eq!(r.features.len(), 60);
        assert_eq!(r.cluster_labels.len(), 60);
        assert_eq!(r.landmarks.len(), 3);
        assert_eq!(r.representatives.len(), 3);
        assert_eq!(r.perf.num_landmarks(), 3);
        assert_eq!(r.perf.num_inputs(), 60);
    }

    #[test]
    fn landmarks_specialize_to_their_clusters() {
        let inputs = corpus();
        let r = run(&options());
        // The three kinds should be separated by clustering (kind feature
        // dominates), and each cluster's landmark should pick the matching
        // algorithm for its representative's kind.
        for (c, &rep) in r.representatives.iter().enumerate() {
            let kind = inputs[rep].0;
            assert_eq!(
                r.landmarks[c].choice(0),
                kind,
                "cluster {c} landmark should specialize to kind {kind}"
            );
        }
    }

    #[test]
    fn perf_matrix_reflects_specialization() {
        let inputs = corpus();
        let r = run(&options());
        // For each input, the cheapest landmark must be one whose config
        // matches the input kind.
        for (i, input) in inputs.iter().enumerate() {
            let best = (0..3)
                .min_by(|&a, &bb| r.perf.cost(a, i).partial_cmp(&r.perf.cost(bb, i)).unwrap())
                .unwrap();
            assert_eq!(r.landmarks[best].choice(0), input.0);
        }
    }

    #[test]
    fn measurement_is_identical_across_engine_worker_counts() {
        let inputs = corpus();
        let r = run(&options());
        let serial = measure(&Synthetic, &r.landmarks, &inputs, &Engine::new(1)).unwrap();
        let pooled = measure(&Synthetic, &r.landmarks, &inputs, &Engine::new(4)).unwrap();
        for l in 0..3 {
            for i in 0..inputs.len() {
                assert_eq!(serial.cost(l, i), pooled.cost(l, i));
                assert_eq!(serial.accuracy(l, i), pooled.accuracy(l, i));
            }
        }
    }

    #[test]
    fn tuning_warms_the_matrix_fill_cache() {
        let r = run(&options());
        let stats = r.cache.stats();
        // Every landmark's winning configuration was evaluated on its
        // representative during tuning, so the matrix fill must hit at
        // least once per landmark (the EA's own revisits add more).
        assert!(
            stats.hits >= r.landmarks.len() as u64,
            "expected >= {} cache hits, got {}",
            r.landmarks.len(),
            stats.hits
        );
    }

    #[test]
    fn duplicate_landmarks_dedup_through_the_suite_measure_path() {
        // Investigation of `dedup_saved: 0` across every BENCH_exec.json
        // case: suite plans are built from EA-winner landmarks, which are
        // pairwise-distinct *configurations* at every scale probed (they
        // can still produce identical cost rows when the differing genes
        // are cost-neutral — observed on sort2/helmholtz3d — but distinct
        // configurations are distinct cells, correctly not deduplicated).
        // The accounting itself works: measuring a landmark list that
        // *does* repeat a configuration collapses the duplicate row.
        let inputs = corpus();
        let r = run(&options());
        assert!(
            r.landmarks.iter().enumerate().all(|(i, a)| r
                .landmarks
                .iter()
                .skip(i + 1)
                .all(|b| a != b)),
            "EA landmarks from distinct seeds should be pairwise distinct"
        );

        let engine = Engine::serial();
        let mut duplicated = r.landmarks.clone();
        duplicated.push(r.landmarks[0].clone());
        let perf = measure(&Synthetic, &duplicated, &inputs, &engine).unwrap();
        assert_eq!(
            engine.stats().dedup_saved,
            inputs.len() as u64,
            "one duplicated landmark must collapse a full matrix row"
        );
        for i in 0..inputs.len() {
            assert_eq!(perf.cost(0, i), perf.cost(3, i));
        }
    }

    #[test]
    fn random_strategy_produces_valid_shapes() {
        let opts = Level1Options {
            strategy: LandmarkStrategy::UniformRandom,
            ..options()
        };
        let r = run(&opts);
        assert_eq!(r.landmarks.len(), 3);
        assert!(r.cluster_labels.iter().all(|&l| l < 3));
    }

    #[test]
    fn deterministic_given_seed() {
        let a = run(&options());
        let c = run(&options());
        assert_eq!(a.landmarks, c.landmarks);
        assert_eq!(a.cluster_labels, c.cluster_labels);
    }

    #[test]
    fn failing_cell_surfaces_as_typed_error() {
        struct Bomb;
        impl Benchmark for Bomb {
            type Input = usize;
            fn name(&self) -> &str {
                "bomb"
            }
            fn space(&self) -> ConfigSpace {
                ConfigSpace::builder().switch("alg", 2).build()
            }
            fn run(&self, _cfg: &Configuration, input: &Self::Input) -> ExecutionReport {
                assert!(*input != 3, "cell detonated");
                ExecutionReport::of_cost(*input as f64 + 1.0)
            }
            fn properties(&self) -> Vec<FeatureDef> {
                vec![FeatureDef::new("x", 1)]
            }
            fn extract(&self, _p: usize, _l: usize, input: &Self::Input) -> FeatureSample {
                FeatureSample::new(*input as f64, 1.0)
            }
        }
        let inputs: Vec<usize> = (0..8).collect();
        let cfg = Bomb.space().default_config();
        let err = measure(&Bomb, &[cfg], &inputs, &Engine::serial()).unwrap_err();
        match err {
            intune_core::Error::Measurement { input, detail } => {
                assert_eq!(input, 3);
                assert!(detail.contains("detonated"), "detail: {detail}");
            }
            other => panic!("expected Measurement error, got {other:?}"),
        }
    }
}
