//! Level 1: feature extraction, input clustering, landmark creation, and
//! performance measurement (Figure 4 of the paper).

use crate::perf::PerfMatrix;
use intune_autotuner::{EvolutionaryTuner, Objective, TunerOptions};
use intune_core::{Benchmark, BenchmarkExt, Configuration, FeatureVector};
use intune_ml::{KMeans, KMeansOptions, ZScore};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// How cluster representatives are chosen — K-means medoids (the paper's
/// method) or uniform random inputs (the §3.1 ablation baseline, which the
/// paper reports to be ~41 % worse at 5 landmarks).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LandmarkStrategy {
    /// K-means++ clustering in normalized feature space; autotune medoids.
    KMeansMedoids,
    /// Uniformly random representative inputs.
    UniformRandom,
}

/// Options for [`run_level1`].
#[derive(Debug, Clone)]
pub struct Level1Options {
    /// Number of input clusters K (the paper uses 100).
    pub clusters: usize,
    /// Budget of the evolutionary autotuner per landmark.
    pub tuner: TunerOptions,
    /// Representative-selection strategy.
    pub strategy: LandmarkStrategy,
    /// RNG seed (clustering, random strategy).
    pub seed: u64,
    /// Measure the landmark × input matrix in parallel.
    pub parallel: bool,
}

impl Default for Level1Options {
    fn default() -> Self {
        Level1Options {
            clusters: 10,
            tuner: TunerOptions::quick(0),
            strategy: LandmarkStrategy::KMeansMedoids,
            seed: 0,
            parallel: true,
        }
    }
}

/// Everything Level 1 produces; the evidence Level 2 consumes.
#[derive(Debug, Clone)]
pub struct Level1Result {
    /// All features of every training input (value + extraction cost).
    pub features: Vec<FeatureVector>,
    /// Normalizer fitted on the dense training feature matrix.
    pub normalizer: ZScore,
    /// Feature-space cluster centroids (normalized space).
    pub centroids: Vec<Vec<f64>>,
    /// Feature-space cluster label per input (the *first-level* grouping).
    pub cluster_labels: Vec<usize>,
    /// Index of the representative input autotuned for each cluster.
    pub representatives: Vec<usize>,
    /// The landmark configurations, one per cluster.
    pub landmarks: Vec<Configuration>,
    /// Landmark × input execution evidence.
    pub perf: PerfMatrix,
    /// Total program executions spent by the autotuner across landmarks.
    pub tuner_evaluations: usize,
}

/// Runs Level 1 end to end.
///
/// # Panics
/// Panics if `inputs` is empty or `opts.clusters == 0`.
pub fn run_level1<B: Benchmark + Sync>(
    benchmark: &B,
    inputs: &[B::Input],
    opts: &Level1Options,
) -> Level1Result
where
    B::Input: Sync,
{
    assert!(!inputs.is_empty(), "level 1 requires training inputs");
    assert!(opts.clusters > 0, "level 1 requires at least one cluster");

    // Step 1: feature extraction (all properties at all levels).
    let features: Vec<FeatureVector> = inputs.iter().map(|i| benchmark.extract_all(i)).collect();
    let dense: Vec<Vec<f64>> = features.iter().map(|f| f.dense()).collect();

    // Step 2: normalize + cluster.
    let normalizer = ZScore::fit(&dense);
    let normalized = normalizer.transform_all(&dense);
    let km = KMeans::fit(
        &normalized,
        KMeansOptions {
            k: opts.clusters,
            max_iters: 100,
            seed: opts.seed,
            tol: 1e-9,
        },
    );

    let (centroids, cluster_labels, representatives) = match opts.strategy {
        LandmarkStrategy::KMeansMedoids => (
            km.centroids().to_vec(),
            km.labels().to_vec(),
            km.medoids(&normalized),
        ),
        LandmarkStrategy::UniformRandom => {
            let mut rng = StdRng::seed_from_u64(opts.seed ^ 0x5eed);
            let k = opts.clusters.min(inputs.len());
            let reps: Vec<usize> = (0..k).map(|_| rng.gen_range(0..inputs.len())).collect();
            // Clusters induced by nearest representative in feature space.
            let centroids: Vec<Vec<f64>> = reps.iter().map(|&r| normalized[r].clone()).collect();
            let labels: Vec<usize> = normalized.iter().map(|p| nearest(&centroids, p)).collect();
            (centroids, labels, reps)
        }
    };

    // Step 3: landmark creation — one EA run per representative input.
    let objective = match benchmark.accuracy() {
        Some(spec) => Objective::with_accuracy_target(spec.threshold),
        None => Objective::cost_only(),
    };
    let space = benchmark.space();
    let mut tuner_evaluations = 0usize;
    let landmarks: Vec<Configuration> = representatives
        .iter()
        .enumerate()
        .map(|(c, &rep)| {
            let tuner = EvolutionaryTuner::new(TunerOptions {
                seed: opts.tuner.seed ^ (c as u64).wrapping_mul(0x9e3779b97f4a7c15),
                ..opts.tuner
            });
            let result = tuner.tune(&space, objective, |cfg| benchmark.run(cfg, &inputs[rep]));
            tuner_evaluations += result.evaluations;
            result.best
        })
        .collect();

    // Step 4: performance measurement — every landmark on every input.
    let perf = measure(benchmark, &landmarks, inputs, opts.parallel);

    Level1Result {
        features,
        normalizer,
        centroids,
        cluster_labels,
        representatives,
        landmarks,
        perf,
        tuner_evaluations,
    }
}

fn nearest(centroids: &[Vec<f64>], p: &[f64]) -> usize {
    let mut best = (0usize, f64::INFINITY);
    for (c, centroid) in centroids.iter().enumerate() {
        let d: f64 = centroid.iter().zip(p).map(|(a, b)| (a - b) * (a - b)).sum();
        if d < best.1 {
            best = (c, d);
        }
    }
    best.0
}

/// Measures all `landmarks` on all `inputs` (optionally in parallel across
/// inputs; results are written by index, so the outcome is deterministic
/// either way).
pub fn measure<B: Benchmark + Sync>(
    benchmark: &B,
    landmarks: &[Configuration],
    inputs: &[B::Input],
    parallel: bool,
) -> PerfMatrix
where
    B::Input: Sync,
{
    let n = inputs.len();
    let rows: Vec<Vec<intune_core::ExecutionReport>> = landmarks
        .iter()
        .map(|lm| {
            if parallel && n >= 8 {
                let threads = std::thread::available_parallelism()
                    .map(|t| t.get())
                    .unwrap_or(4)
                    .min(8);
                let chunk = n.div_ceil(threads);
                let mut row = vec![intune_core::ExecutionReport::of_cost(0.0); n];
                crossbeam::thread::scope(|scope| {
                    for (t, slot) in row.chunks_mut(chunk).enumerate() {
                        let start = t * chunk;
                        scope.spawn(move |_| {
                            for (off, out) in slot.iter_mut().enumerate() {
                                *out = benchmark.run(lm, &inputs[start + off]);
                            }
                        });
                    }
                })
                .expect("measurement threads must not panic");
                row
            } else {
                inputs.iter().map(|i| benchmark.run(lm, i)).collect()
            }
        })
        .collect();
    PerfMatrix::from_reports(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use intune_core::{AccuracySpec, ConfigSpace, ExecutionReport, FeatureDef, FeatureSample};

    /// A synthetic benchmark whose best switch value equals the input's
    /// "kind" (0, 1, or 2), discoverable from feature 0.
    struct Synthetic;

    impl Benchmark for Synthetic {
        type Input = (usize, f64); // (kind, size)

        fn name(&self) -> &str {
            "synthetic"
        }

        fn space(&self) -> ConfigSpace {
            ConfigSpace::builder()
                .switch("alg", 3)
                .int("knob", 0, 10)
                .build()
        }

        fn run(&self, cfg: &Configuration, input: &Self::Input) -> ExecutionReport {
            let (kind, size) = *input;
            let alg = cfg.choice(0);
            // Matching algorithm: cost = size; mismatched: 3x..5x.
            let penalty = 1.0 + 2.0 * ((alg + 3 - kind) % 3) as f64;
            ExecutionReport::with_accuracy(size * penalty, 1.0)
        }

        fn accuracy(&self) -> Option<AccuracySpec> {
            Some(AccuracySpec::new(0.5))
        }

        fn properties(&self) -> Vec<FeatureDef> {
            vec![FeatureDef::new("kind", 2), FeatureDef::new("size", 2)]
        }

        fn extract(&self, property: usize, level: usize, input: &Self::Input) -> FeatureSample {
            let value = match property {
                0 => input.0 as f64,
                _ => input.1,
            };
            FeatureSample::new(value, (level + 1) as f64)
        }
    }

    fn corpus() -> Vec<(usize, f64)> {
        (0..60)
            .map(|i| (i % 3, 100.0 + (i % 7) as f64 * 10.0))
            .collect()
    }

    fn options() -> Level1Options {
        Level1Options {
            clusters: 3,
            tuner: TunerOptions {
                population: 10,
                generations: 8,
                ..TunerOptions::quick(1)
            },
            strategy: LandmarkStrategy::KMeansMedoids,
            seed: 0,
            parallel: false,
        }
    }

    #[test]
    fn level1_shapes_are_consistent() {
        let b = Synthetic;
        let inputs = corpus();
        let r = run_level1(&b, &inputs, &options());
        assert_eq!(r.features.len(), 60);
        assert_eq!(r.cluster_labels.len(), 60);
        assert_eq!(r.landmarks.len(), 3);
        assert_eq!(r.representatives.len(), 3);
        assert_eq!(r.perf.num_landmarks(), 3);
        assert_eq!(r.perf.num_inputs(), 60);
    }

    #[test]
    fn landmarks_specialize_to_their_clusters() {
        let b = Synthetic;
        let inputs = corpus();
        let r = run_level1(&b, &inputs, &options());
        // The three kinds should be separated by clustering (kind feature
        // dominates), and each cluster's landmark should pick the matching
        // algorithm for its representative's kind.
        for (c, &rep) in r.representatives.iter().enumerate() {
            let kind = inputs[rep].0;
            assert_eq!(
                r.landmarks[c].choice(0),
                kind,
                "cluster {c} landmark should specialize to kind {kind}"
            );
        }
    }

    #[test]
    fn perf_matrix_reflects_specialization() {
        let b = Synthetic;
        let inputs = corpus();
        let r = run_level1(&b, &inputs, &options());
        // For each input, the cheapest landmark must be one whose config
        // matches the input kind.
        for (i, input) in inputs.iter().enumerate() {
            let best = (0..3)
                .min_by(|&a, &bb| r.perf.cost(a, i).partial_cmp(&r.perf.cost(bb, i)).unwrap())
                .unwrap();
            assert_eq!(r.landmarks[best].choice(0), input.0);
        }
    }

    #[test]
    fn parallel_and_serial_measurement_agree() {
        let b = Synthetic;
        let inputs = corpus();
        let r = run_level1(&b, &inputs, &options());
        let serial = measure(&b, &r.landmarks, &inputs, false);
        let parallel = measure(&b, &r.landmarks, &inputs, true);
        for l in 0..3 {
            for i in 0..inputs.len() {
                assert_eq!(serial.cost(l, i), parallel.cost(l, i));
            }
        }
    }

    #[test]
    fn random_strategy_produces_valid_shapes() {
        let b = Synthetic;
        let inputs = corpus();
        let opts = Level1Options {
            strategy: LandmarkStrategy::UniformRandom,
            ..options()
        };
        let r = run_level1(&b, &inputs, &opts);
        assert_eq!(r.landmarks.len(), 3);
        assert!(r.cluster_labels.iter().all(|&l| l < 3));
    }

    #[test]
    fn deterministic_given_seed() {
        let b = Synthetic;
        let inputs = corpus();
        let a = run_level1(&b, &inputs, &options());
        let c = run_level1(&b, &inputs, &options());
        assert_eq!(a.landmarks, c.landmarks);
        assert_eq!(a.cluster_labels, c.cluster_labels);
    }
}
