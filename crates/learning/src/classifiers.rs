//! The candidate classifier family of Level 2 (Figure 5).
//!
//! * **Max-a-priori** — always the most common training label; extracts no
//!   features at all.
//! * **Feature-subset decision tree** — a cost-sensitive tree over one
//!   property/level subset (the exhaustive enumeration trains one per
//!   subset; the *all-features* classifier is the full-subset member).
//! * **Incremental feature examination** — discretized naive Bayes that
//!   acquires features one at a time, cheapest first, updating the class
//!   posterior (Eq. 1) and stopping as soon as it clears the confidence
//!   threshold Λ — so its feature-extraction cost varies per input.

use intune_core::{FeatureSample, FeatureSet};
use intune_ml::{DecisionTree, FlatTree, NaiveBayes};
use serde::{Deserialize, Serialize};

/// A trained candidate classifier mapping input features to a landmark.
/// Serializable: the production classifier ships inside model artifacts
/// (`intune_serve`) and reloads bit-identically.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Classifier {
    /// Predicts the majority training label; no features needed.
    MaxApriori {
        /// The constant prediction.
        class: usize,
        /// Number of properties (for a correctly-shaped empty feature set).
        num_properties: usize,
    },
    /// A cost-sensitive decision tree over the subset `set`.
    Tree {
        /// Which property/levels the tree consumes (in `set.iter()` order).
        set: FeatureSet,
        /// The fitted tree.
        tree: DecisionTree,
    },
    /// Sequential naive-Bayes over `set`, acquiring features in `order`
    /// (indices into `set.iter()` order, cheapest extraction first) until
    /// the posterior clears `threshold`.
    Incremental {
        /// Feature pool the classifier may draw from.
        set: FeatureSet,
        /// The fitted discretized naive Bayes model.
        nb: NaiveBayes,
        /// Acquisition order (indices into `set.iter()` order).
        order: Vec<usize>,
        /// Posterior confidence threshold Λ.
        threshold: f64,
    },
}

impl Classifier {
    /// The feature subset this classifier may request.
    pub fn feature_set(&self) -> FeatureSet {
        match self {
            Classifier::MaxApriori { num_properties, .. } => FeatureSet::none(*num_properties),
            Classifier::Tree { set, .. } | Classifier::Incremental { set, .. } => set.clone(),
        }
    }

    /// Short display name for reports.
    pub fn kind(&self) -> &'static str {
        match self {
            Classifier::MaxApriori { .. } => "max-apriori",
            Classifier::Tree { .. } => "subset-tree",
            Classifier::Incremental { .. } => "incremental",
        }
    }

    /// Classifies from pre-extracted samples (one per feature in
    /// `feature_set().iter()` order), returning the predicted landmark and
    /// the extraction cost *actually incurred* — all features for trees,
    /// a confidence-dependent prefix for the incremental classifier, zero
    /// for max-a-priori.
    ///
    /// # Panics
    /// Panics if `samples.len()` does not match the feature set size.
    pub fn classify_costed(&self, samples: &[FeatureSample]) -> (usize, f64) {
        match self {
            Classifier::MaxApriori { class, .. } => (*class, 0.0),
            Classifier::Tree { tree, set } => {
                assert_eq!(samples.len(), set.count(), "sample/feature mismatch");
                let values: Vec<f64> = samples.iter().map(|s| s.value).collect();
                let cost: f64 = samples.iter().map(|s| s.cost).sum();
                (tree.predict(&values), cost)
            }
            Classifier::Incremental {
                set,
                nb,
                order,
                threshold,
            } => {
                assert_eq!(samples.len(), set.count(), "sample/feature mismatch");
                let mut posterior = nb.start();
                let mut cost = 0.0;
                for &f in order {
                    posterior.observe(f, samples[f].value);
                    cost += samples[f].cost;
                    if let Some(class) = posterior.confident(*threshold) {
                        return (class, cost);
                    }
                }
                (posterior.argmax(), cost)
            }
        }
    }

    /// Classifies with an on-demand extractor (deployment path): features
    /// are extracted only when the classifier asks for them. `extract`
    /// receives `(property, level)` and returns the sample.
    pub fn classify_lazy(
        &self,
        mut extract: impl FnMut(usize, usize) -> FeatureSample,
    ) -> (usize, f64) {
        match self {
            Classifier::MaxApriori { class, .. } => (*class, 0.0),
            Classifier::Tree { tree, set } => {
                let mut cost = 0.0;
                let values: Vec<f64> = set
                    .iter()
                    .map(|id| {
                        let s = extract(id.property, id.level);
                        cost += s.cost;
                        s.value
                    })
                    .collect();
                (tree.predict(&values), cost)
            }
            Classifier::Incremental {
                set,
                nb,
                order,
                threshold,
            } => {
                let ids: Vec<_> = set.iter().collect();
                let mut posterior = nb.start();
                let mut cost = 0.0;
                for &f in order {
                    let id = ids[f];
                    let s = extract(id.property, id.level);
                    cost += s.cost;
                    posterior.observe(f, s.value);
                    if let Some(class) = posterior.confident(*threshold) {
                        return (class, cost);
                    }
                }
                (posterior.argmax(), cost)
            }
        }
    }
}

/// A [`Classifier`] compiled for the serving hot path: identical
/// decisions and costs, with subset-tree inference flattened into the
/// array-indexed [`FlatTree`] layout at construction.
///
/// Serving runtimes build one of these per loaded artifact and classify
/// through it; the serialized [`Classifier`] inside the artifact is
/// untouched (flat trees are never persisted). Non-tree classifiers
/// delegate unchanged, so compiling is always safe and byte-identical.
#[derive(Debug, Clone)]
pub struct CompiledClassifier {
    classifier: Classifier,
    flat: Option<FlatTree>,
}

impl CompiledClassifier {
    /// Compiles `classifier`, flattening its decision tree if it has one.
    pub fn compile(classifier: Classifier) -> Self {
        let flat = match &classifier {
            Classifier::Tree { tree, .. } => Some(tree.flatten()),
            _ => None,
        };
        CompiledClassifier { classifier, flat }
    }

    /// The source classifier.
    pub fn classifier(&self) -> &Classifier {
        &self.classifier
    }

    /// The feature subset this classifier may request.
    pub fn feature_set(&self) -> FeatureSet {
        self.classifier.feature_set()
    }

    /// Short display name for reports.
    pub fn kind(&self) -> &'static str {
        self.classifier.kind()
    }

    /// [`Classifier::classify_costed`] through the flattened tree: same
    /// prediction and cost, no per-call dense-row allocation.
    ///
    /// # Panics
    /// Panics if `samples.len()` does not match the feature set size.
    pub fn classify_costed(&self, samples: &[FeatureSample]) -> (usize, f64) {
        match (&self.classifier, &self.flat) {
            (Classifier::Tree { set, .. }, Some(flat)) => {
                assert_eq!(samples.len(), set.count(), "sample/feature mismatch");
                let cost: f64 = samples.iter().map(|s| s.cost).sum();
                (flat.predict_with(|f| samples[f].value), cost)
            }
            _ => self.classifier.classify_costed(samples),
        }
    }

    /// [`Classifier::classify_lazy`] through the flattened tree. Features
    /// are still extracted in `set.iter()` order (trees consume their full
    /// subset), so extraction costs are identical to the boxed path.
    pub fn classify_lazy(
        &self,
        mut extract: impl FnMut(usize, usize) -> FeatureSample,
    ) -> (usize, f64) {
        match (&self.classifier, &self.flat) {
            (Classifier::Tree { set, .. }, Some(flat)) => {
                let mut cost = 0.0;
                let values: Vec<f64> = set
                    .iter()
                    .map(|id| {
                        let s = extract(id.property, id.level);
                        cost += s.cost;
                        s.value
                    })
                    .collect();
                (flat.predict_with(|f| values[f]), cost)
            }
            _ => self.classifier.classify_lazy(extract),
        }
    }
}

/// Builds an incremental classifier over `set` from training data.
/// `x` rows are values in `set.iter()` order; `mean_costs[f]` is the mean
/// extraction cost of feature `f`, which fixes the acquisition order.
pub fn train_incremental(
    set: FeatureSet,
    x: &[Vec<f64>],
    labels: &[usize],
    num_classes: usize,
    mean_costs: &[f64],
    regions: usize,
    threshold: f64,
) -> Classifier {
    let nb = NaiveBayes::fit(x, labels, num_classes, regions);
    let mut order: Vec<usize> = (0..set.count()).collect();
    order.sort_by(|&a, &b| {
        mean_costs[a]
            .partial_cmp(&mean_costs[b])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    Classifier::Incremental {
        set,
        nb,
        order,
        threshold,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use intune_ml::TreeOptions;

    fn samples(vals: &[(f64, f64)]) -> Vec<FeatureSample> {
        vals.iter()
            .map(|&(v, c)| FeatureSample::new(v, c))
            .collect()
    }

    #[test]
    fn max_apriori_costs_nothing() {
        let c = Classifier::MaxApriori {
            class: 3,
            num_properties: 4,
        };
        assert_eq!(c.classify_costed(&[]), (3, 0.0));
        assert!(c.feature_set().is_empty());
        assert_eq!(c.kind(), "max-apriori");
    }

    #[test]
    fn tree_pays_full_subset() {
        let x = vec![vec![0.0], vec![1.0], vec![10.0], vec![11.0]];
        let y = vec![0, 0, 1, 1];
        let tree = DecisionTree::fit_plain(&x, &y, 2, TreeOptions::default());
        let c = Classifier::Tree {
            set: FeatureSet::from_choices(vec![Some(1), None]),
            tree,
        };
        let (class, cost) = c.classify_costed(&samples(&[(10.5, 7.0)]));
        assert_eq!(class, 1);
        assert_eq!(cost, 7.0);
    }

    #[test]
    fn incremental_stops_early_when_confident() {
        // Feature 0 (cheap) perfectly separates classes; feature 1 is noise.
        let x: Vec<Vec<f64>> = (0..40)
            .map(|i| vec![if i % 2 == 0 { 0.0 } else { 10.0 }, (i % 5) as f64])
            .collect();
        let y: Vec<usize> = (0..40).map(|i| i % 2).collect();
        let set = FeatureSet::from_choices(vec![Some(0), Some(0)]);
        let c = train_incremental(set, &x, &y, 2, &[1.0, 100.0], 4, 0.9);
        // The cheap decisive feature comes first; the expensive one is
        // never extracted.
        let (class, cost) = c.classify_costed(&samples(&[(10.0, 1.0), (2.0, 100.0)]));
        assert_eq!(class, 1);
        assert_eq!(cost, 1.0, "confident after the cheap feature");
    }

    #[test]
    fn incremental_falls_back_to_argmax() {
        // No feature is informative: should extract everything then argmax.
        let x: Vec<Vec<f64>> = (0..20).map(|_| vec![5.0, 5.0]).collect();
        let y: Vec<usize> = (0..20).map(|i| i % 2).collect();
        let set = FeatureSet::from_choices(vec![Some(0), Some(0)]);
        let c = train_incremental(set, &x, &y, 2, &[1.0, 2.0], 4, 0.99);
        let (_, cost) = c.classify_costed(&samples(&[(5.0, 1.0), (5.0, 2.0)]));
        assert_eq!(cost, 3.0, "all features extracted when never confident");
    }

    #[test]
    fn compiled_matches_interpreted_for_every_kind() {
        // Tree over two features.
        let x: Vec<Vec<f64>> = (0..60)
            .map(|i| vec![(i % 13) as f64, ((i * 7) % 11) as f64])
            .collect();
        let y: Vec<usize> = x.iter().map(|r| usize::from(r[0] + r[1] > 10.0)).collect();
        let tree = DecisionTree::fit_plain(&x, &y, 2, TreeOptions::default());
        let candidates = vec![
            Classifier::MaxApriori {
                class: 1,
                num_properties: 2,
            },
            Classifier::Tree {
                set: FeatureSet::from_choices(vec![Some(0), Some(1)]),
                tree,
            },
            train_incremental(
                FeatureSet::from_choices(vec![Some(0), Some(1)]),
                &x,
                &y,
                2,
                &[1.0, 2.0],
                4,
                0.9,
            ),
        ];
        for classifier in candidates {
            let compiled = CompiledClassifier::compile(classifier.clone());
            assert_eq!(compiled.kind(), classifier.kind());
            assert_eq!(compiled.feature_set(), classifier.feature_set());
            for probe in [[0.0, 0.0], [6.5, 9.0], [12.0, 3.0], [2.0, 10.0]] {
                let n = classifier.feature_set().count();
                let s = samples(&[(probe[0], 1.5), (probe[1], 2.5)][..n]);
                assert_eq!(
                    compiled.classify_costed(&s),
                    classifier.classify_costed(&s),
                    "costed mismatch on {probe:?}"
                );
                let lazy = |p: usize, _l: usize| FeatureSample::new(probe[p], p as f64 + 1.0);
                assert_eq!(
                    compiled.classify_lazy(lazy),
                    classifier.classify_lazy(lazy),
                    "lazy mismatch on {probe:?}"
                );
            }
        }
    }

    #[test]
    fn lazy_matches_costed_for_tree() {
        let x = vec![
            vec![0.0, 3.0],
            vec![1.0, 3.0],
            vec![10.0, 3.0],
            vec![11.0, 3.0],
        ];
        let y = vec![0, 0, 1, 1];
        let tree = DecisionTree::fit_plain(&x, &y, 2, TreeOptions::default());
        let c = Classifier::Tree {
            set: FeatureSet::from_choices(vec![Some(2), Some(0)]),
            tree,
        };
        let all = samples(&[(10.5, 4.0), (3.0, 2.0)]);
        let costed = c.classify_costed(&all);
        let lazy = c.classify_lazy(|p, l| {
            // property 0 level 2 is the first feature; property 1 level 0 second
            if p == 0 {
                assert_eq!(l, 2);
                FeatureSample::new(10.5, 4.0)
            } else {
                FeatureSample::new(3.0, 2.0)
            }
        });
        assert_eq!(costed, lazy);
    }
}
