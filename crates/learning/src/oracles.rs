//! Baselines: static oracle, dynamic oracle, and the traditional one-level
//! method.
//!
//! The oracles themselves are pure functions of a [`PerfMatrix`]; the
//! measurement that produces the matrix goes through the `intune_exec`
//! engine ([`measured_oracles`]), so baseline evaluation shares cells with
//! — and is memoized against — every other measurement of the same corpus.

use crate::labels::label_inputs;
use crate::perf::PerfMatrix;
use intune_core::{Benchmark, Configuration, Result};
use intune_exec::{CostCache, Engine};
use intune_ml::ZScore;

/// The static oracle: the single landmark used for *all* inputs — best mean
/// cost among landmarks meeting the satisfaction threshold on the training
/// set ("selected by trying each input optimized program configuration and
/// picking the one with the best performance and meeting the satisfying
/// accuracy threshold when applicable"), falling back to the
/// most-satisfying landmark when none qualifies.
pub fn static_oracle(
    perf: &PerfMatrix,
    accuracy_threshold: Option<f64>,
    satisfaction_threshold: f64,
) -> usize {
    let k = perf.num_landmarks();
    assert!(k > 0, "no landmarks");
    let satisfying: Vec<usize> = (0..k)
        .filter(|&l| perf.satisfaction(l, accuracy_threshold) >= satisfaction_threshold)
        .collect();
    if satisfying.is_empty() {
        (0..k)
            .max_by(|&a, &b| {
                perf.satisfaction(a, accuracy_threshold)
                    .partial_cmp(&perf.satisfaction(b, accuracy_threshold))
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .expect("nonempty landmarks")
    } else {
        satisfying
            .into_iter()
            .min_by(|&a, &b| {
                perf.mean_cost(a)
                    .partial_cmp(&perf.mean_cost(b))
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .expect("nonempty satisfying set")
    }
}

/// The dynamic oracle: per input, the best feasible landmark (the label
/// rule). "The best that is possible … given the landmarks available"; it
/// pays no feature-extraction cost.
pub fn dynamic_oracle(perf: &PerfMatrix, accuracy_threshold: Option<f64>) -> Vec<usize> {
    label_inputs(perf, accuracy_threshold)
}

/// Measures `landmarks × inputs` through the engine (one deduplicated,
/// memoized plan) and computes both oracle baselines on the result:
/// `(perf matrix, static-oracle landmark, dynamic-oracle labels)`.
///
/// `cache` must belong to the `inputs` corpus; cells measured here are
/// shared with any other measurement of the same corpus (e.g. classifier
/// evaluation re-using the matrix's landmark runs).
///
/// # Errors
/// Returns [`intune_core::Error::Measurement`] if any cell fails.
pub fn measured_oracles<B: Benchmark + Sync>(
    benchmark: &B,
    landmarks: &[Configuration],
    inputs: &[B::Input],
    engine: &Engine,
    cache: &mut CostCache,
    accuracy_threshold: Option<f64>,
    satisfaction_threshold: f64,
) -> Result<(PerfMatrix, usize, Vec<usize>)>
where
    B::Input: Sync,
{
    let perf = crate::level1::measure_with_cache(benchmark, landmarks, inputs, engine, cache)?;
    let static_lm = static_oracle(&perf, accuracy_threshold, satisfaction_threshold);
    let dyn_labels = dynamic_oracle(&perf, accuracy_threshold);
    Ok((perf, static_lm, dyn_labels))
}

/// The traditional **one-level** classifier: nearest feature-space centroid
/// (normalized), mapping to that cluster's landmark. It extracts the full
/// predefined feature set and is oblivious to extraction cost and accuracy
/// — the paper's baseline that loses up to 29× vs. the static oracle.
#[derive(Debug, Clone)]
pub struct OneLevelClassifier {
    normalizer: ZScore,
    centroids: Vec<Vec<f64>>,
}

impl OneLevelClassifier {
    /// Builds from Level-1 clustering artifacts.
    pub fn new(normalizer: ZScore, centroids: Vec<Vec<f64>>) -> Self {
        OneLevelClassifier {
            normalizer,
            centroids,
        }
    }

    /// Classifies a dense (raw, unnormalized) full feature vector to a
    /// cluster/landmark index.
    pub fn classify(&self, dense_features: &[f64]) -> usize {
        let z = self.normalizer.transform(dense_features);
        let mut best = (0usize, f64::INFINITY);
        for (c, centroid) in self.centroids.iter().enumerate() {
            let d: f64 = centroid
                .iter()
                .zip(&z)
                .map(|(a, b)| (a - b) * (a - b))
                .sum();
            if d < best.1 {
                best = (c, d);
            }
        }
        best.0
    }

    /// Number of clusters/landmarks.
    pub fn num_clusters(&self) -> usize {
        self.centroids.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use intune_core::ExecutionReport;

    fn perf() -> PerfMatrix {
        // Landmark 0: cheap, accurate half the time. Landmark 1: pricier,
        // always accurate.
        PerfMatrix::from_reports(vec![
            vec![
                ExecutionReport::with_accuracy(1.0, 0.99),
                ExecutionReport::with_accuracy(1.0, 0.2),
                ExecutionReport::with_accuracy(1.0, 0.99),
                ExecutionReport::with_accuracy(1.0, 0.2),
            ],
            vec![
                ExecutionReport::with_accuracy(3.0, 0.99),
                ExecutionReport::with_accuracy(3.0, 0.99),
                ExecutionReport::with_accuracy(3.0, 0.99),
                ExecutionReport::with_accuracy(3.0, 0.99),
            ],
        ])
    }

    #[test]
    fn static_oracle_respects_satisfaction() {
        let p = perf();
        // With a 95% satisfaction bar, landmark 0 (50%) is out.
        assert_eq!(static_oracle(&p, Some(0.9), 0.95), 1);
        // Without accuracy, the cheap one wins.
        assert_eq!(static_oracle(&p, None, 0.95), 0);
    }

    #[test]
    fn static_oracle_fallback_max_satisfaction() {
        let p = PerfMatrix::from_reports(vec![
            vec![ExecutionReport::with_accuracy(1.0, 0.2)],
            vec![ExecutionReport::with_accuracy(2.0, 0.5)],
        ]);
        // Nobody meets 0.9; landmark 1 is more accurate more often.
        assert_eq!(static_oracle(&p, Some(0.9), 0.95), 1);
    }

    #[test]
    fn dynamic_oracle_adapts_per_input() {
        let p = perf();
        assert_eq!(dynamic_oracle(&p, Some(0.9)), vec![0, 1, 0, 1]);
    }

    #[test]
    fn measured_oracles_agree_with_pure_functions() {
        use intune_core::{ConfigSpace, FeatureDef, FeatureSample};

        struct Lin;
        impl Benchmark for Lin {
            type Input = f64;
            fn name(&self) -> &str {
                "lin"
            }
            fn space(&self) -> ConfigSpace {
                ConfigSpace::builder().switch("alg", 2).build()
            }
            fn run(&self, cfg: &Configuration, input: &Self::Input) -> ExecutionReport {
                ExecutionReport::of_cost(input * (1.0 + cfg.choice(0) as f64))
            }
            fn properties(&self) -> Vec<FeatureDef> {
                vec![FeatureDef::new("x", 1)]
            }
            fn extract(&self, _p: usize, _l: usize, input: &Self::Input) -> FeatureSample {
                FeatureSample::new(*input, 1.0)
            }
        }

        let space = Lin.space();
        let mut fast = space.default_config();
        fast.set(0, intune_core::ParamValue::Choice(0));
        let mut slow = space.default_config();
        slow.set(0, intune_core::ParamValue::Choice(1));
        let landmarks = vec![fast, slow];
        let inputs = vec![1.0, 2.0, 3.0];

        let engine = Engine::serial();
        let mut cache = CostCache::new();
        let (perf, static_lm, dyn_labels) =
            measured_oracles(&Lin, &landmarks, &inputs, &engine, &mut cache, None, 0.95).unwrap();
        assert_eq!(static_lm, static_oracle(&perf, None, 0.95));
        assert_eq!(dyn_labels, dynamic_oracle(&perf, None));
        assert_eq!(dyn_labels, vec![0, 0, 0]);
        // Re-running the baselines on a warm cache re-measures nothing.
        let before = engine.stats();
        measured_oracles(&Lin, &landmarks, &inputs, &engine, &mut cache, None, 0.95).unwrap();
        assert_eq!(engine.stats().since(&before).cells_measured, 0);
    }

    #[test]
    fn one_level_classifies_to_nearest_centroid() {
        let rows = vec![vec![0.0, 0.0], vec![10.0, 10.0]];
        let norm = ZScore::fit(&rows);
        let centroids = norm.transform_all(&rows);
        let c = OneLevelClassifier::new(norm, centroids);
        assert_eq!(c.classify(&[1.0, 1.0]), 0);
        assert_eq!(c.classify(&[9.0, 9.0]), 1);
        assert_eq!(c.num_clusters(), 2);
    }
}
