//! The **Helmholtz 3D** benchmark: `(-∆ + c(x))·u = f` on the unit cube
//! with a variable non-negative coefficient field (the SPD screened-Poisson
//! form), same solver menu and accuracy metric as Poisson 2D, threshold 7.

use crate::dim3::Grid3d;
use crate::generators::PdeInput3d;
use crate::poisson::{accuracy_vs_reference, run_solver, SolverGenes, ACCURACY_CAP};
use intune_core::{
    AccuracySpec, Benchmark, ConfigSpace, Configuration, ExecutionReport, FeatureDef, FeatureSample,
};

/// The Helmholtz 3D benchmark.
#[derive(Debug, Clone)]
pub struct Helmholtz3d;

impl Helmholtz3d {
    /// Creates the benchmark.
    pub fn new() -> Self {
        Helmholtz3d
    }

    fn genes() -> SolverGenes {
        SolverGenes { prefix: "h3" }
    }
}

impl Default for Helmholtz3d {
    fn default() -> Self {
        Helmholtz3d::new()
    }
}

impl Benchmark for Helmholtz3d {
    type Input = PdeInput3d;

    fn name(&self) -> &str {
        "helmholtz3d"
    }

    fn space(&self) -> ConfigSpace {
        Self::genes().add_to(ConfigSpace::builder()).build()
    }

    fn run(&self, cfg: &Configuration, input: &Self::Input) -> ExecutionReport {
        let space = self.space();
        let choice = Self::genes().decode(&space, cfg);
        let grid = Grid3d::new(input.n, input.coeff.clone());
        let (u, flops) = run_solver(&grid, &input.rhs, &choice);
        let accuracy = match u {
            Some(u) => accuracy_vs_reference(&input.reference, &u),
            None => ACCURACY_CAP,
        };
        ExecutionReport::with_accuracy(flops, accuracy)
    }

    fn accuracy(&self) -> Option<AccuracySpec> {
        Some(AccuracySpec::new(7.0))
    }

    fn properties(&self) -> Vec<FeatureDef> {
        vec![
            FeatureDef::new("residual", 3),
            FeatureDef::new("deviation", 3),
            FeatureDef::new("zeros", 3),
        ]
    }

    fn extract(&self, property: usize, level: usize, input: &Self::Input) -> FeatureSample {
        crate::generators::extract_field_feature(property, level, &input.rhs)
    }

    fn encode_input(&self, input: &Self::Input) -> Option<serde_json::Value> {
        Some(serde_json::Value::Object(vec![
            ("n".to_string(), serde_json::Value::UInt(input.n as u64)),
            (
                "coeff".to_string(),
                crate::generators::encode_field(&input.coeff),
            ),
            (
                "rhs".to_string(),
                crate::generators::encode_field(&input.rhs),
            ),
            (
                "reference".to_string(),
                crate::generators::encode_field(&input.reference),
            ),
        ]))
    }

    fn decode_input(&self, payload: &serde_json::Value) -> Option<Self::Input> {
        let n = usize::try_from(payload.get("n")?.as_u64()?).ok()?;
        let coeff = crate::generators::decode_field(payload.get("coeff")?)?;
        let rhs = crate::generators::decode_field(payload.get("rhs")?)?;
        let reference = crate::generators::decode_field(payload.get("reference")?)?;
        let cells = n.checked_mul(n)?.checked_mul(n)?;
        if n == 0 || coeff.len() != cells || rhs.len() != cells || reference.len() != cells {
            return None;
        }
        Some(PdeInput3d {
            n,
            coeff,
            rhs,
            reference,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::PdeInputClass;
    use intune_core::ParamValue;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn input(n: usize) -> PdeInput3d {
        let mut rng = StdRng::seed_from_u64(6);
        PdeInputClass::SmoothLowFreq.generate_3d(n, &mut rng)
    }

    fn set(cfg: &mut Configuration, space: &ConfigSpace, name: &str, v: ParamValue) {
        cfg.set(space.index_of(name).unwrap(), v);
    }

    #[test]
    fn multigrid_hits_accuracy_target() {
        let b = Helmholtz3d::new();
        let space = b.space();
        let mut cfg = space.default_config();
        set(&mut cfg, &space, "h3.solver", ParamValue::Choice(0));
        set(&mut cfg, &space, "h3.cycles", ParamValue::Int(12));
        set(&mut cfg, &space, "h3.smoother", ParamValue::Choice(3));
        let report = b.run(&cfg, &input(15));
        assert!(
            report.accuracy.unwrap() >= 7.0,
            "accuracy {}",
            report.accuracy.unwrap()
        );
    }

    #[test]
    fn variable_coefficient_matters() {
        // Stronger screening (larger c) improves conditioning: the same
        // smoother budget reaches higher accuracy.
        let b = Helmholtz3d::new();
        let space = b.space();
        let mut cfg = space.default_config();
        set(&mut cfg, &space, "h3.solver", ParamValue::Choice(2));
        set(&mut cfg, &space, "h3.sweeps", ParamValue::Int(60));
        set(&mut cfg, &space, "h3.smoother", ParamValue::Choice(1));
        let mut rng = StdRng::seed_from_u64(8);
        let weak = PdeInputClass::SmoothLowFreq.generate_3d_with_screen(11, 0.0, &mut rng);
        let strong = PdeInputClass::SmoothLowFreq.generate_3d_with_screen(11, 500.0, &mut rng);
        let r_weak = b.run(&cfg, &weak);
        let r_strong = b.run(&cfg, &strong);
        assert!(
            r_strong.accuracy.unwrap() > r_weak.accuracy.unwrap(),
            "screened {} vs unscreened {}",
            r_strong.accuracy.unwrap(),
            r_weak.accuracy.unwrap()
        );
    }

    #[test]
    fn features_extractable() {
        let b = Helmholtz3d::new();
        let fv = b.extract_all(&input(7));
        assert_eq!(fv.len(), 9);
        assert!(fv.dense().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn deterministic() {
        let b = Helmholtz3d::new();
        let cfg = b.space().default_config();
        let i = input(7);
        assert_eq!(b.run(&cfg, &i), b.run(&cfg, &i));
    }

    #[test]
    fn inputs_round_trip_through_journal_codec_bit_exactly() {
        let b = Helmholtz3d::new();
        // A generated input plus a hand-built one of adversarial values:
        // negative zero, a subnormal, a value with no short decimal form,
        // and the finite extremes (coeff must stay ≥ 0 only physically —
        // the codec itself is value-agnostic).
        let adversarial = PdeInput3d {
            n: 1,
            coeff: vec![f64::MIN_POSITIVE / 2.0],
            rhs: vec![0.1 + 0.2],
            reference: vec![-0.0],
        };
        for input in [input(5), adversarial] {
            let encoded = b.encode_input(&input).expect("helmholtz journals");
            // Through the actual wire representation, not just the Value
            // tree.
            let text = serde_json::to_string(&encoded).unwrap();
            let reparsed: serde_json::Value = serde_json::from_str(&text).unwrap();
            let decoded = b.decode_input(&reparsed).expect("codec round-trips");
            assert_eq!(decoded.n, input.n);
            for (field, decoded_field) in [
                (&input.coeff, &decoded.coeff),
                (&input.rhs, &decoded.rhs),
                (&input.reference, &decoded.reference),
            ] {
                assert_eq!(field.len(), decoded_field.len());
                for (a, c) in field.iter().zip(decoded_field) {
                    assert_eq!(a.to_bits(), c.to_bits());
                }
            }
            // Identical treatment: same features, bit for bit.
            assert_eq!(
                b.extract_all(&input).dense(),
                b.extract_all(&decoded).dense()
            );
        }
    }

    #[test]
    fn decode_rejects_malformed_documents() {
        let b = Helmholtz3d::new();
        for text in [
            "null",
            "{}",
            // coeff shorter than n³.
            r#"{"n": 2, "coeff": [1.0], "rhs": [0,0,0,0,0,0,0,0], "reference": [0,0,0,0,0,0,0,0]}"#,
            // rhs shorter than n³.
            r#"{"n": 1, "coeff": [1.0], "rhs": [], "reference": [0.0]}"#,
            // Degenerate grid.
            r#"{"n": 0, "coeff": [], "rhs": [], "reference": []}"#,
            // Missing field.
            r#"{"n": 1, "coeff": [1.0], "rhs": [1.0]}"#,
            // Non-numeric entry.
            r#"{"n": 1, "coeff": [1.0], "rhs": [1.0], "reference": [[]]}"#,
        ] {
            let payload: serde_json::Value = serde_json::from_str(text).unwrap();
            assert!(b.decode_input(&payload).is_none(), "accepted {text}");
        }
    }
}
