//! 2-D discretization: 5-point Laplacian with optional zeroth-order
//! coefficient on the unit square, homogeneous Dirichlet boundaries,
//! interior grid of `n × n` points, `h = 1/(n+1)`.

use crate::level::{Level, Smoother};
use intune_linalg::Matrix;

/// One 2-D grid level of `(-∆ + c)·u = f`.
#[derive(Debug, Clone)]
pub struct Grid2d {
    n: usize,
    h: f64,
    /// Optional per-point zeroth-order coefficient `c ≥ 0`.
    coeff: Option<Vec<f64>>,
}

impl Grid2d {
    /// A pure Poisson level (`c = 0`) with `n × n` interior points.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn poisson(n: usize) -> Self {
        assert!(n > 0, "grid needs at least one interior point");
        Grid2d {
            n,
            h: 1.0 / (n as f64 + 1.0),
            coeff: None,
        }
    }

    /// A screened-Poisson level with per-point coefficient `c` (length n²).
    ///
    /// # Panics
    /// Panics if `coeff.len() != n * n` or any coefficient is negative.
    pub fn screened(n: usize, coeff: Vec<f64>) -> Self {
        assert_eq!(coeff.len(), n * n, "coefficient field shape");
        assert!(
            coeff.iter().all(|c| *c >= 0.0),
            "coefficients must be >= 0 for SPD"
        );
        Grid2d {
            n,
            h: 1.0 / (n as f64 + 1.0),
            coeff: Some(coeff),
        }
    }

    /// Interior points per dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Grid spacing.
    pub fn h(&self) -> f64 {
        self.h
    }

    #[inline]
    fn at(&self, u: &[f64], i: i64, j: i64) -> f64 {
        let n = self.n as i64;
        if i < 0 || j < 0 || i >= n || j >= n {
            0.0 // Dirichlet boundary
        } else {
            u[(i * n + j) as usize]
        }
    }

    #[inline]
    fn c(&self, idx: usize) -> f64 {
        self.coeff.as_ref().map_or(0.0, |c| c[idx])
    }

    fn gauss_seidel_pass(&self, omega: f64, u: &mut [f64], f: &[f64], parity: Option<usize>) {
        let n = self.n;
        let h2 = self.h * self.h;
        for i in 0..n {
            for j in 0..n {
                if let Some(p) = parity {
                    if (i + j) % 2 != p {
                        continue;
                    }
                }
                let idx = i * n + j;
                let nb = self.at(u, i as i64 - 1, j as i64)
                    + self.at(u, i as i64 + 1, j as i64)
                    + self.at(u, i as i64, j as i64 - 1)
                    + self.at(u, i as i64, j as i64 + 1);
                let diag = 4.0 / h2 + self.c(idx);
                let gs = (f[idx] + nb / h2) / diag;
                u[idx] = (1.0 - omega) * u[idx] + omega * gs;
            }
        }
    }
}

impl Level for Grid2d {
    fn unknowns(&self) -> usize {
        self.n * self.n
    }

    fn apply(&self, u: &[f64], out: &mut [f64]) -> f64 {
        let n = self.n;
        let h2 = self.h * self.h;
        for i in 0..n {
            for j in 0..n {
                let idx = i * n + j;
                let nb = self.at(u, i as i64 - 1, j as i64)
                    + self.at(u, i as i64 + 1, j as i64)
                    + self.at(u, i as i64, j as i64 - 1)
                    + self.at(u, i as i64, j as i64 + 1);
                out[idx] = (4.0 * u[idx] - nb) / h2 + self.c(idx) * u[idx];
            }
        }
        8.0 * self.unknowns() as f64
    }

    fn smooth(
        &self,
        smoother: Smoother,
        omega: f64,
        u: &mut [f64],
        f: &[f64],
        sweeps: usize,
    ) -> f64 {
        let n2 = self.unknowns() as f64;
        let mut flops = 0.0;
        for _ in 0..sweeps {
            match smoother {
                Smoother::Jacobi => {
                    let mut au = vec![0.0; u.len()];
                    flops += self.apply(u, &mut au);
                    let h2 = self.h * self.h;
                    let w = if omega > 0.0 { omega.min(1.0) } else { 0.8 };
                    for idx in 0..u.len() {
                        let diag = 4.0 / h2 + self.c(idx);
                        u[idx] += w * (f[idx] - au[idx]) / diag;
                    }
                    flops += 4.0 * n2;
                }
                Smoother::GaussSeidel => {
                    self.gauss_seidel_pass(1.0, u, f, None);
                    flops += 8.0 * n2;
                }
                Smoother::Sor => {
                    self.gauss_seidel_pass(omega.clamp(0.1, 1.95), u, f, None);
                    flops += 10.0 * n2;
                }
                Smoother::RedBlack => {
                    self.gauss_seidel_pass(1.0, u, f, Some(0));
                    self.gauss_seidel_pass(1.0, u, f, Some(1));
                    flops += 9.0 * n2;
                }
            }
        }
        flops
    }

    fn restrict(&self, fine: &[f64]) -> (Vec<f64>, f64) {
        let n = self.n;
        let nc = (n - 1) / 2;
        let mut coarse = vec![0.0; nc * nc];
        for ci in 0..nc {
            for cj in 0..nc {
                let fi = (2 * ci + 1) as i64;
                let fj = (2 * cj + 1) as i64;
                let mut acc = 0.25 * self.at(fine, fi, fj);
                for (di, dj, w) in [
                    (-1i64, 0i64, 0.125),
                    (1, 0, 0.125),
                    (0, -1, 0.125),
                    (0, 1, 0.125),
                    (-1, -1, 0.0625),
                    (-1, 1, 0.0625),
                    (1, -1, 0.0625),
                    (1, 1, 0.0625),
                ] {
                    acc += w * self.at(fine, fi + di, fj + dj);
                }
                coarse[ci * nc + cj] = acc;
            }
        }
        (coarse, 10.0 * (nc * nc) as f64)
    }

    fn prolong_add(&self, coarse: &[f64], fine_u: &mut [f64]) -> f64 {
        let n = self.n;
        let nc = (n - 1) / 2;
        let mut add = |i: i64, j: i64, v: f64| {
            if i >= 0 && j >= 0 && (i as usize) < n && (j as usize) < n {
                fine_u[i as usize * n + j as usize] += v;
            }
        };
        for ci in 0..nc {
            for cj in 0..nc {
                let e = coarse[ci * nc + cj];
                let fi = (2 * ci + 1) as i64;
                let fj = (2 * cj + 1) as i64;
                add(fi, fj, e);
                add(fi - 1, fj, 0.5 * e);
                add(fi + 1, fj, 0.5 * e);
                add(fi, fj - 1, 0.5 * e);
                add(fi, fj + 1, 0.5 * e);
                add(fi - 1, fj - 1, 0.25 * e);
                add(fi - 1, fj + 1, 0.25 * e);
                add(fi + 1, fj - 1, 0.25 * e);
                add(fi + 1, fj + 1, 0.25 * e);
            }
        }
        9.0 * (nc * nc) as f64
    }

    fn coarser(&self) -> Option<Self> {
        if self.n < 3 {
            return None;
        }
        let nc = (self.n - 1) / 2;
        if nc == 0 {
            return None;
        }
        let coeff = self.coeff.as_ref().map(|c| {
            // Injection at coincident points.
            let n = self.n;
            let mut out = vec![0.0; nc * nc];
            for ci in 0..nc {
                for cj in 0..nc {
                    out[ci * nc + cj] = c[(2 * ci + 1) * n + (2 * cj + 1)];
                }
            }
            out
        });
        Some(Grid2d {
            n: nc,
            h: 1.0 / (nc as f64 + 1.0),
            coeff,
        })
    }

    fn dense(&self) -> Matrix {
        let n = self.n;
        let un = self.unknowns();
        let h2 = self.h * self.h;
        let mut a = Matrix::zeros(un, un);
        for i in 0..n {
            for j in 0..n {
                let idx = i * n + j;
                a[(idx, idx)] = 4.0 / h2 + self.c(idx);
                let mut nb = |ii: i64, jj: i64| {
                    if ii >= 0 && jj >= 0 && (ii as usize) < n && (jj as usize) < n {
                        a[(idx, (ii as usize) * n + jj as usize)] = -1.0 / h2;
                    }
                };
                nb(i as i64 - 1, j as i64);
                nb(i as i64 + 1, j as i64);
                nb(i as i64, j as i64 - 1);
                nb(i as i64, j as i64 + 1);
            }
        }
        a
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::level::{mg_solve, residual, rms, MgOptions};

    #[test]
    fn apply_matches_dense() {
        let g = Grid2d::poisson(5);
        let a = g.dense();
        let u: Vec<f64> = (0..25).map(|i| ((i * 13) % 7) as f64 - 3.0).collect();
        let mut out = vec![0.0; 25];
        g.apply(&u, &mut out);
        let via_dense = a.matvec(&u);
        for i in 0..25 {
            assert!((out[i] - via_dense[i]).abs() < 1e-9, "mismatch at {i}");
        }
    }

    #[test]
    fn screened_operator_adds_diagonal() {
        let g0 = Grid2d::poisson(4);
        let g1 = Grid2d::screened(4, vec![10.0; 16]);
        let u = vec![1.0; 16];
        let mut o0 = vec![0.0; 16];
        let mut o1 = vec![0.0; 16];
        g0.apply(&u, &mut o0);
        g1.apply(&u, &mut o1);
        for i in 0..16 {
            assert!((o1[i] - o0[i] - 10.0).abs() < 1e-9);
        }
    }

    #[test]
    fn hierarchy_descends_to_none() {
        let g = Grid2d::poisson(31);
        let mut level = Some(g);
        let mut sizes = Vec::new();
        while let Some(l) = level {
            sizes.push(l.n());
            level = l.coarser();
        }
        assert_eq!(sizes, vec![31, 15, 7, 3, 1]);
    }

    #[test]
    fn restriction_then_prolongation_preserves_smooth_mass() {
        let g = Grid2d::poisson(15);
        // A smooth field.
        let fine: Vec<f64> = (0..225)
            .map(|idx| {
                let i = idx / 15;
                let j = idx % 15;
                ((i as f64) / 16.0 * std::f64::consts::PI).sin()
                    * ((j as f64) / 16.0 * std::f64::consts::PI).sin()
            })
            .collect();
        let (coarse, _) = g.restrict(&fine);
        let mut back = vec![0.0; 225];
        g.prolong_add(&coarse, &mut back);
        // Smooth fields survive the round trip to within interpolation error.
        let err: f64 = fine
            .iter()
            .zip(&back)
            .map(|(a, b)| (a - b).abs())
            .sum::<f64>()
            / 225.0;
        assert!(err < 0.2, "round-trip error {err}");
    }

    #[test]
    fn screened_mg_converges() {
        let n = 15;
        let coeff: Vec<f64> = (0..n * n).map(|i| (i % 5) as f64).collect();
        let g = Grid2d::screened(n, coeff);
        let f = vec![1.0; n * n];
        let (u, _) = mg_solve(&g, &f, 10, &MgOptions::default());
        let (r, _) = residual(&g, &u, &f);
        assert!(rms(&r) / rms(&f) < 1e-6);
    }
}
