//! The generic multigrid machinery: the [`Level`] abstraction and the
//! solver family (multigrid cycles, CG, plain smoothing, dense direct).
//!
//! Every routine returns its flop count so benchmarks can charge
//! deterministic cost.

use intune_linalg::{Cholesky, Matrix};

/// Smoother choices (a switch gene in the PDE benchmarks).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Smoother {
    /// Weighted Jacobi.
    Jacobi,
    /// Lexicographic Gauss–Seidel.
    GaussSeidel,
    /// Successive over-relaxation (ω from a float gene).
    Sor,
    /// Red–black Gauss–Seidel.
    RedBlack,
}

impl Smoother {
    /// Decodes a switch gene value.
    ///
    /// # Panics
    /// Panics if `idx > 3`.
    pub fn from_index(idx: usize) -> Self {
        match idx {
            0 => Smoother::Jacobi,
            1 => Smoother::GaussSeidel,
            2 => Smoother::Sor,
            3 => Smoother::RedBlack,
            other => panic!("smoother index {other} out of range"),
        }
    }
}

/// Multigrid cycle shapes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CycleKind {
    /// One coarse-grid visit per level.
    V,
    /// Two coarse-grid visits per level.
    W,
}

/// Tunable multigrid cycle parameters (the "cycle shape" of the paper).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MgOptions {
    /// Pre-smoothing sweeps.
    pub pre: usize,
    /// Post-smoothing sweeps.
    pub post: usize,
    /// Smoother used on every level.
    pub smoother: Smoother,
    /// Relaxation factor for [`Smoother::Sor`] / weighted Jacobi.
    pub omega: f64,
    /// V or W cycle.
    pub cycle: CycleKind,
    /// Solve the coarsest grid directly (dense Cholesky) instead of smoothing.
    pub coarse_direct: bool,
}

impl Default for MgOptions {
    fn default() -> Self {
        MgOptions {
            pre: 2,
            post: 2,
            smoother: Smoother::RedBlack,
            omega: 1.1,
            cycle: CycleKind::V,
            coarse_direct: true,
        }
    }
}

/// One grid level of a discretized symmetric positive-definite operator.
pub trait Level: Sized {
    /// Number of unknowns on this level.
    fn unknowns(&self) -> usize;

    /// `out = A·u`; returns flops.
    fn apply(&self, u: &[f64], out: &mut [f64]) -> f64;

    /// Runs `sweeps` smoothing sweeps of `smoother` on `A·u = f` in place;
    /// returns flops.
    fn smooth(
        &self,
        smoother: Smoother,
        omega: f64,
        u: &mut [f64],
        f: &[f64],
        sweeps: usize,
    ) -> f64;

    /// Full-weighting restriction of a fine-level vector to the next-coarser
    /// level; returns `(coarse, flops)`.
    fn restrict(&self, fine: &[f64]) -> (Vec<f64>, f64);

    /// Interpolates a coarse-level correction and adds it into `fine_u`;
    /// returns flops.
    fn prolong_add(&self, coarse: &[f64], fine_u: &mut [f64]) -> f64;

    /// The next-coarser level, or `None` at the bottom of the hierarchy.
    fn coarser(&self) -> Option<Self>;

    /// Assembles the operator densely (coarse-grid direct solves only).
    fn dense(&self) -> Matrix;
}

/// `r = f − A·u`; returns `(r, flops)`.
pub fn residual<L: Level>(level: &L, u: &[f64], f: &[f64]) -> (Vec<f64>, f64) {
    let mut au = vec![0.0; u.len()];
    let flops = level.apply(u, &mut au);
    let r: Vec<f64> = f.iter().zip(&au).map(|(fi, ai)| fi - ai).collect();
    (r, flops + u.len() as f64)
}

/// RMS of a vector (0 for empty).
pub fn rms(v: &[f64]) -> f64 {
    if v.is_empty() {
        0.0
    } else {
        (v.iter().map(|x| x * x).sum::<f64>() / v.len() as f64).sqrt()
    }
}

/// One multigrid cycle (V or W per `opts.cycle`) on `A·u = f`; returns flops.
pub fn mg_cycle<L: Level>(level: &L, u: &mut [f64], f: &[f64], opts: &MgOptions) -> f64 {
    let mut flops = 0.0;
    match level.coarser() {
        None => {
            // Coarsest grid.
            flops += coarse_solve(level, u, f, opts);
        }
        Some(coarse_level) => {
            flops += level.smooth(opts.smoother, opts.omega, u, f, opts.pre);
            let (r, fl) = residual(level, u, f);
            flops += fl;
            let (coarse_f, fl) = level.restrict(&r);
            flops += fl;
            let visits = match opts.cycle {
                CycleKind::V => 1,
                CycleKind::W => 2,
            };
            let mut coarse_u = vec![0.0; coarse_f.len()];
            for _ in 0..visits {
                flops += mg_cycle(&coarse_level, &mut coarse_u, &coarse_f, opts);
            }
            flops += level.prolong_add(&coarse_u, u);
            flops += level.smooth(opts.smoother, opts.omega, u, f, opts.post);
        }
    }
    flops
}

fn coarse_solve<L: Level>(level: &L, u: &mut [f64], f: &[f64], opts: &MgOptions) -> f64 {
    let n = level.unknowns();
    if opts.coarse_direct && n <= 4096 {
        let a = level.dense();
        match Cholesky::new(&a) {
            Some(ch) => {
                let x = ch.solve(f);
                u.copy_from_slice(&x);
                return ch.flops + ch.solve_flops();
            }
            None => { /* fall through to smoothing */ }
        }
    }
    level.smooth(opts.smoother.max_fallback(), 1.0, u, f, 50)
}

impl Smoother {
    /// Gauss–Seidel as the robust fallback for coarse solves.
    fn max_fallback(self) -> Smoother {
        Smoother::GaussSeidel
    }
}

/// Runs `cycles` multigrid cycles from a zero initial guess; returns
/// `(solution, flops)`.
pub fn mg_solve<L: Level>(
    level: &L,
    f: &[f64],
    cycles: usize,
    opts: &MgOptions,
) -> (Vec<f64>, f64) {
    let mut u = vec![0.0; f.len()];
    let mut flops = 0.0;
    for _ in 0..cycles.max(1) {
        flops += mg_cycle(level, &mut u, f, opts);
    }
    (u, flops)
}

/// Conjugate gradients from a zero guess, `iters` iterations (or early exit
/// on stagnation); returns `(solution, flops)`.
pub fn cg_solve<L: Level>(level: &L, f: &[f64], iters: usize) -> (Vec<f64>, f64) {
    let n = f.len();
    let mut u = vec![0.0; n];
    let mut r = f.to_vec();
    let mut p = r.clone();
    let mut rr: f64 = r.iter().map(|x| x * x).sum();
    let mut flops = 2.0 * n as f64;
    let mut ap = vec![0.0; n];
    for _ in 0..iters.max(1) {
        if rr <= 1e-300 {
            break;
        }
        flops += level.apply(&p, &mut ap);
        let pap: f64 = p.iter().zip(&ap).map(|(a, b)| a * b).sum();
        if pap.abs() <= 1e-300 {
            break;
        }
        let alpha = rr / pap;
        for i in 0..n {
            u[i] += alpha * p[i];
            r[i] -= alpha * ap[i];
        }
        let rr_new: f64 = r.iter().map(|x| x * x).sum();
        let beta = rr_new / rr;
        for i in 0..n {
            p[i] = r[i] + beta * p[i];
        }
        rr = rr_new;
        flops += 10.0 * n as f64;
    }
    (u, flops)
}

/// Plain smoother iteration from a zero guess; returns `(solution, flops)`.
pub fn smooth_solve<L: Level>(
    level: &L,
    f: &[f64],
    smoother: Smoother,
    omega: f64,
    sweeps: usize,
) -> (Vec<f64>, f64) {
    let mut u = vec![0.0; f.len()];
    let flops = level.smooth(smoother, omega, &mut u, f, sweeps.max(1));
    (u, flops)
}

/// Dense direct solve (assemble + Cholesky). Only sensible for small
/// problems; callers guard the size (see the benchmarks' estimate path for
/// large grids). Returns `(solution, flops)`; `None` if not SPD.
pub fn direct_solve<L: Level>(level: &L, f: &[f64]) -> Option<(Vec<f64>, f64)> {
    let a = level.dense();
    let assemble_flops = (level.unknowns() * level.unknowns()) as f64;
    let ch = Cholesky::new(&a)?;
    let x = ch.solve(f);
    let flops = assemble_flops + ch.flops + ch.solve_flops();
    Some((x, flops))
}

/// Flop estimate of a dense direct solve with `n` unknowns (used when the
/// solve is too large to actually execute: `n³/3` factor + `2n²` solve).
pub fn direct_solve_flops_estimate(n: usize) -> f64 {
    let nf = n as f64;
    nf * nf * nf / 3.0 + 2.0 * nf * nf
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dim2::Grid2d;

    fn poisson_problem(n: usize) -> (Grid2d, Vec<f64>) {
        let g = Grid2d::poisson(n);
        // Smooth rhs: f = sin(pi x) sin(pi y).
        let h = 1.0 / (n as f64 + 1.0);
        let mut f = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                let x = (i as f64 + 1.0) * h;
                let y = (j as f64 + 1.0) * h;
                f[i * n + j] = (std::f64::consts::PI * x).sin() * (std::f64::consts::PI * y).sin();
            }
        }
        (g, f)
    }

    /// ‖f − A·u‖ / ‖f‖.
    fn rel_residual(g: &Grid2d, u: &[f64], f: &[f64]) -> f64 {
        let (r, _) = residual(g, u, f);
        rms(&r) / rms(f).max(1e-300)
    }

    #[test]
    fn mg_v_cycles_converge_fast() {
        let (g, f) = poisson_problem(31);
        let (u, flops) = mg_solve(&g, &f, 8, &MgOptions::default());
        assert!(
            rel_residual(&g, &u, &f) < 1e-6,
            "res {}",
            rel_residual(&g, &u, &f)
        );
        assert!(flops > 0.0);
    }

    #[test]
    fn w_cycles_no_worse_per_cycle() {
        let (g, f) = poisson_problem(31);
        let v = MgOptions::default();
        let w = MgOptions {
            cycle: CycleKind::W,
            ..v
        };
        let (uv, fv) = mg_solve(&g, &f, 4, &v);
        let (uw, fw) = mg_solve(&g, &f, 4, &w);
        assert!(rel_residual(&g, &uw, &f) <= rel_residual(&g, &uv, &f) * 1.5);
        assert!(fw > fv, "W cycles must cost more");
    }

    #[test]
    fn cg_converges() {
        let (g, f) = poisson_problem(15);
        let (u, _) = cg_solve(&g, &f, 60);
        assert!(rel_residual(&g, &u, &f) < 1e-8);
    }

    #[test]
    fn smoother_alone_converges_slowly() {
        let (g, f) = poisson_problem(31);
        let (u_few, _) = smooth_solve(&g, &f, Smoother::GaussSeidel, 1.0, 5);
        let (u_many, _) = smooth_solve(&g, &f, Smoother::GaussSeidel, 1.0, 50);
        let few = rel_residual(&g, &u_few, &f);
        let many = rel_residual(&g, &u_many, &f);
        assert!(many < few, "more sweeps reduce residual");
        // But far slower than MG on smooth error: 3 V-cycles trounce 50
        // sweeps on the n=31 grid.
        let (u_mg, _) = mg_solve(&g, &f, 3, &MgOptions::default());
        assert!(rel_residual(&g, &u_mg, &f) < many);
    }

    #[test]
    fn direct_solve_is_exact() {
        let (g, f) = poisson_problem(7);
        let (u, _) = direct_solve(&g, &f).expect("poisson is SPD");
        assert!(rel_residual(&g, &u, &f) < 1e-10);
    }

    #[test]
    fn all_smoothers_reduce_error() {
        let (g, f) = poisson_problem(15);
        for s in [
            Smoother::Jacobi,
            Smoother::GaussSeidel,
            Smoother::Sor,
            Smoother::RedBlack,
        ] {
            let omega = if s == Smoother::Jacobi { 0.8 } else { 1.2 };
            let (u, _) = smooth_solve(&g, &f, s, omega, 50);
            assert!(
                rel_residual(&g, &u, &f) < 0.9,
                "{s:?} failed to reduce residual"
            );
        }
    }

    #[test]
    fn estimate_matches_cubic_growth() {
        assert!(direct_solve_flops_estimate(200) > 8.0 * direct_solve_flops_estimate(100) * 0.9);
    }
}
