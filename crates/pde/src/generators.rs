//! Right-hand-side generators, reference solutions and shared feature
//! extraction for the PDE benchmarks.
//!
//! Reference solutions are computed once per input by a deep multigrid run
//! (red–black V(3,3), direct coarse solve, 40 cycles) — accurate to machine
//! precision, so the accuracy metric's denominator is trustworthy across
//! the whole 10⁷-reduction range the threshold demands.

use crate::dim2::Grid2d;
use crate::dim3::Grid3d;
use crate::level::{mg_solve, CycleKind, MgOptions, Smoother};
use intune_core::FeatureSample;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One Poisson 2D input: grid size, right-hand side, reference solution.
#[derive(Debug, Clone)]
pub struct PdeInput2d {
    /// Interior points per dimension.
    pub n: usize,
    /// Right-hand side (n² values).
    pub rhs: Vec<f64>,
    /// Reference solution (n² values).
    pub reference: Vec<f64>,
}

/// One Helmholtz 3D input: grid size, coefficient field, rhs, reference.
#[derive(Debug, Clone)]
pub struct PdeInput3d {
    /// Interior points per dimension.
    pub n: usize,
    /// Variable coefficient field `c(x) ≥ 0` (n³ values).
    pub coeff: Vec<f64>,
    /// Right-hand side (n³ values).
    pub rhs: Vec<f64>,
    /// Reference solution (n³ values).
    pub reference: Vec<f64>,
}

/// Families of right-hand sides.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PdeInputClass {
    /// Few low-frequency sine modes (multigrid's home turf).
    SmoothLowFreq,
    /// Near-Nyquist modes (plain smoothing suffices).
    HighFreq,
    /// Uniform random noise (all frequencies).
    Noise,
    /// A handful of point sources; mostly zeros.
    PointSources,
    /// Random field with rectangular zeroed patches.
    ZeroPatches,
    /// Low + high + noise mixture.
    Mixed,
}

fn reference_opts() -> MgOptions {
    MgOptions {
        pre: 3,
        post: 3,
        smoother: Smoother::RedBlack,
        omega: 1.0,
        cycle: CycleKind::V,
        coarse_direct: true,
    }
}

impl PdeInputClass {
    /// All generator classes.
    pub fn all() -> &'static [PdeInputClass] {
        use PdeInputClass::*;
        &[
            SmoothLowFreq,
            HighFreq,
            Noise,
            PointSources,
            ZeroPatches,
            Mixed,
        ]
    }

    fn field_2d(self, n: usize, rng: &mut StdRng) -> Vec<f64> {
        let mut f = vec![0.0; n * n];
        let pi = std::f64::consts::PI;
        let h = 1.0 / (n as f64 + 1.0);
        let add_mode = |f: &mut Vec<f64>, kx: usize, ky: usize, amp: f64| {
            for i in 0..n {
                for j in 0..n {
                    let x = (i as f64 + 1.0) * h;
                    let y = (j as f64 + 1.0) * h;
                    f[i * n + j] += amp * (kx as f64 * pi * x).sin() * (ky as f64 * pi * y).sin();
                }
            }
        };
        use PdeInputClass::*;
        match self {
            SmoothLowFreq => {
                for _ in 0..3 {
                    add_mode(
                        &mut f,
                        rng.gen_range(1..4),
                        rng.gen_range(1..4),
                        rng.gen_range(0.5..2.0),
                    );
                }
            }
            HighFreq => {
                for _ in 0..3 {
                    add_mode(
                        &mut f,
                        rng.gen_range(n / 2..n),
                        rng.gen_range(n / 2..n),
                        rng.gen_range(0.5..2.0),
                    );
                }
            }
            Noise => {
                for v in &mut f {
                    *v = rng.gen_range(-1.0..1.0);
                }
            }
            PointSources => {
                let sources = rng.gen_range(2..8);
                for _ in 0..sources {
                    let idx = rng.gen_range(0..n * n);
                    f[idx] = rng.gen_range(5.0..20.0) * if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
                }
            }
            ZeroPatches => {
                for v in &mut f {
                    *v = rng.gen_range(-1.0..1.0);
                }
                for _ in 0..3 {
                    let i0 = rng.gen_range(0..n);
                    let j0 = rng.gen_range(0..n);
                    let w = rng.gen_range(n / 4..n / 2 + 1);
                    for i in i0..(i0 + w).min(n) {
                        for j in j0..(j0 + w).min(n) {
                            f[i * n + j] = 0.0;
                        }
                    }
                }
            }
            Mixed => {
                add_mode(&mut f, 1, 2, 1.0);
                add_mode(&mut f, n - 1, n - 2, 0.7);
                for v in f.iter_mut() {
                    *v += rng.gen_range(-0.2..0.2);
                }
            }
        }
        f
    }

    /// Generates a 2-D input with its reference solution.
    pub fn generate_2d(self, n: usize, rng: &mut StdRng) -> PdeInput2d {
        let rhs = self.field_2d(n, rng);
        let grid = Grid2d::poisson(n);
        let (reference, _) = mg_solve(&grid, &rhs, 40, &reference_opts());
        PdeInput2d { n, rhs, reference }
    }

    /// Generates a 3-D input (random smooth screening field) with reference.
    pub fn generate_3d(self, n: usize, rng: &mut StdRng) -> PdeInput3d {
        let base: f64 = rng.gen_range(0.0..50.0);
        self.generate_3d_with_screen(n, base, rng)
    }

    /// Generates a 3-D input with a given mean screening strength.
    pub fn generate_3d_with_screen(self, n: usize, screen: f64, rng: &mut StdRng) -> PdeInput3d {
        // Variable coefficient: smooth positive bumps around `screen`.
        let mut coeff = vec![0.0; n * n * n];
        let pi = std::f64::consts::PI;
        let h = 1.0 / (n as f64 + 1.0);
        let (ax, ay, az) = (
            rng.gen_range(0.5..1.5),
            rng.gen_range(0.5..1.5),
            rng.gen_range(0.5..1.5),
        );
        for i in 0..n {
            for j in 0..n {
                for k in 0..n {
                    let x = (i as f64 + 1.0) * h;
                    let y = (j as f64 + 1.0) * h;
                    let z = (k as f64 + 1.0) * h;
                    let bump = (ax * pi * x).sin().abs()
                        * (ay * pi * y).sin().abs()
                        * (az * pi * z).sin().abs();
                    coeff[(i * n + j) * n + k] = screen * (0.5 + bump);
                }
            }
        }

        // Rhs: reuse the 2-D pattern machinery on each z-slab with phase
        // variation, which preserves the class character in 3-D.
        let mut rhs = vec![0.0; n * n * n];
        for k in 0..n {
            let slab = self.field_2d(n, rng);
            let scale = 0.5 + 0.5 * ((k as f64 + 1.0) * h * pi).sin();
            for (dst, src) in rhs[k * n * n..(k + 1) * n * n].iter_mut().zip(&slab) {
                *dst = src * scale;
            }
        }

        let grid = Grid3d::new(n, coeff.clone());
        let (reference, _) = mg_solve(&grid, &rhs, 40, &reference_opts());
        PdeInput3d {
            n,
            coeff,
            rhs,
            reference,
        }
    }
}

/// Shared rhs-field feature extraction: *residual measure*, standard
/// deviation, and zeros fraction, each at three sampling levels.
///
/// The residual measure deepens with its level, as the paper's costlier
/// Encodes one scalar field for the journal codec (bit-exact: every
/// value prints in shortest-round-trip decimal form).
pub(crate) fn encode_field(field: &[f64]) -> serde_json::Value {
    use serde::Serialize as _;
    serde_json::Value::Array(field.iter().map(|v| v.to_value()).collect())
}

/// Decodes a scalar field encoded by [`encode_field`]; `None` on any
/// non-numeric entry.
pub(crate) fn decode_field(value: &serde_json::Value) -> Option<Vec<f64>> {
    use serde::Deserialize as _;
    value
        .as_array()?
        .iter()
        .map(|v| f64::from_value(v).ok())
        .collect()
}

/// sampling levels do: level 0 is the plain RMS of the sampled right-hand
/// side (`‖f − A·0‖` on a sample); levels 1 and 2 report how much of the
/// field survives 1 or 3 cheap 1-D smoothing passes — smoothing annihilates
/// high-frequency content, so the surviving fraction is a frequency probe
/// that predicts whether plain relaxation will suffice as a solver.
///
/// # Panics
/// Panics if `property > 2`.
pub fn extract_field_feature(property: usize, level: usize, field: &[f64]) -> FeatureSample {
    let n = field.len();
    if n == 0 {
        return FeatureSample::new(0.0, 1.0);
    }
    let m = match level {
        0 => n.min(64),
        1 => n.min(512),
        _ => n,
    }
    .max(1);
    let sample: Vec<f64> = (0..m).map(|i| field[i * n / m]).collect();
    match property {
        0 => {
            let rms = |v: &[f64]| -> f64 {
                (v.iter().map(|x| x * x).sum::<f64>() / v.len() as f64).sqrt()
            };
            let base = rms(&sample);
            if level == 0 {
                return FeatureSample::new(base, m as f64);
            }
            // Deep levels: fraction of the field surviving `level * 1..3`
            // three-point smoothing passes.
            let passes = if level == 1 { 1 } else { 3 };
            let mut smooth = sample.clone();
            for _ in 0..passes {
                let prev = smooth.clone();
                for i in 0..smooth.len() {
                    let left = if i > 0 { prev[i - 1] } else { 0.0 };
                    let right = if i + 1 < prev.len() { prev[i + 1] } else { 0.0 };
                    smooth[i] = 0.25 * left + 0.5 * prev[i] + 0.25 * right;
                }
            }
            let survived = rms(&smooth) / base.max(1e-300);
            FeatureSample::new(survived, (m * (1 + 2 * passes)) as f64)
        }
        1 => {
            let mean = sample.iter().sum::<f64>() / sample.len() as f64;
            let var =
                sample.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / sample.len() as f64;
            FeatureSample::new(var.sqrt(), 2.0 * m as f64)
        }
        2 => {
            let zeros = sample.iter().filter(|x| **x == 0.0).count();
            FeatureSample::new(zeros as f64 / sample.len() as f64, m as f64)
        }
        other => panic!("pde benchmarks have 3 properties, got {other}"),
    }
}

/// A corpus of Poisson 2D inputs.
#[derive(Debug, Clone)]
pub struct PdeCorpus2d {
    /// The inputs.
    pub inputs: Vec<PdeInput2d>,
    /// Generator class per input (diagnostics only).
    pub classes: Vec<PdeInputClass>,
}

impl PdeCorpus2d {
    /// Builds `count` inputs cycling through classes and the given grid
    /// sizes (each must be of the form 2^k − 1).
    pub fn synthetic(count: usize, sizes: &[usize], seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let classes = PdeInputClass::all();
        let mut inputs = Vec::with_capacity(count);
        let mut labels = Vec::with_capacity(count);
        for i in 0..count {
            let class = classes[i % classes.len()];
            let n = sizes[i % sizes.len()];
            inputs.push(class.generate_2d(n, &mut rng));
            labels.push(class);
        }
        PdeCorpus2d {
            inputs,
            classes: labels,
        }
    }
}

/// A corpus of Helmholtz 3D inputs.
#[derive(Debug, Clone)]
pub struct PdeCorpus3d {
    /// The inputs.
    pub inputs: Vec<PdeInput3d>,
    /// Generator class per input (diagnostics only).
    pub classes: Vec<PdeInputClass>,
}

impl PdeCorpus3d {
    /// Builds `count` inputs cycling through classes and grid sizes.
    pub fn synthetic(count: usize, sizes: &[usize], seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let classes = PdeInputClass::all();
        let mut inputs = Vec::with_capacity(count);
        let mut labels = Vec::with_capacity(count);
        for i in 0..count {
            let class = classes[i % classes.len()];
            let n = sizes[i % sizes.len()];
            inputs.push(class.generate_3d(n, &mut rng));
            labels.push(class);
        }
        PdeCorpus3d {
            inputs,
            classes: labels,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::level::{residual, rms};

    #[test]
    fn references_solve_the_equation_2d() {
        let mut rng = StdRng::seed_from_u64(1);
        for class in PdeInputClass::all() {
            let input = class.generate_2d(15, &mut rng);
            let grid = Grid2d::poisson(15);
            let (r, _) = residual(&grid, &input.reference, &input.rhs);
            let rel = rms(&r) / rms(&input.rhs).max(1e-300);
            assert!(rel < 1e-9, "{class:?}: reference residual {rel}");
        }
    }

    #[test]
    fn references_solve_the_equation_3d() {
        let mut rng = StdRng::seed_from_u64(2);
        let input = PdeInputClass::Noise.generate_3d(7, &mut rng);
        let grid = Grid3d::new(7, input.coeff.clone());
        let (r, _) = residual(&grid, &input.reference, &input.rhs);
        let rel = rms(&r) / rms(&input.rhs).max(1e-300);
        assert!(rel < 1e-9, "reference residual {rel}");
    }

    #[test]
    fn point_sources_have_many_zeros() {
        let mut rng = StdRng::seed_from_u64(3);
        let input = PdeInputClass::PointSources.generate_2d(31, &mut rng);
        let zeros = extract_field_feature(2, 2, &input.rhs).value;
        assert!(zeros > 0.9, "zeros fraction {zeros}");
        let noise = PdeInputClass::Noise.generate_2d(31, &mut rng);
        assert!(extract_field_feature(2, 2, &noise.rhs).value < 0.05);
    }

    #[test]
    fn feature_levels_cost_ordering() {
        let mut rng = StdRng::seed_from_u64(4);
        let input = PdeInputClass::Mixed.generate_2d(31, &mut rng);
        for p in 0..3 {
            assert!(
                extract_field_feature(p, 0, &input.rhs).cost
                    < extract_field_feature(p, 2, &input.rhs).cost
            );
        }
    }

    #[test]
    fn corpus_cycles_classes_and_sizes() {
        let c = PdeCorpus2d::synthetic(6, &[15, 31], 5);
        assert_eq!(c.inputs.len(), 6);
        assert_eq!(c.inputs[0].n, 15);
        assert_eq!(c.inputs[1].n, 31);
        let distinct: std::collections::HashSet<_> = c.classes.iter().collect();
        assert_eq!(distinct.len(), 6);
    }
}
