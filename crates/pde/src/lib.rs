//! # intune-pde
//!
//! Multigrid PDE substrate plus the paper's **Poisson 2D** and
//! **Helmholtz 3D** benchmarks.
//!
//! The substrate ([`level`]) provides, generically over a [`level::Level`]:
//! geometric multigrid with tunable *cycle shapes* (V/W, pre/post smoothing
//! counts, smoother choice, coarse-grid strategy), conjugate gradients,
//! plain smoother iteration, and a dense-Cholesky direct solver — exactly
//! the solver menu the paper's benchmarks let the autotuner choose from
//! ("the choices in this benchmark are multigrid, where cycle shapes are
//! determined by the autotuner, and a number of iterative and direct
//! solvers").
//!
//! Concrete discretizations: [`dim2::Grid2d`] (5-point Laplacian with an
//! optional zeroth-order coefficient, homogeneous Dirichlet) and
//! [`dim3::Grid3d`] (7-point, variable coefficient — the screened-Poisson
//! form of the Helmholtz equation, kept SPD so every solver choice is
//! well-posed).
//!
//! The accuracy metric of both benchmarks is the paper's
//! `log₁₀( RMS(err initial) / RMS(err final) )` relative to a reference
//! solution, threshold 7 (seven orders of error reduction). Input
//! sensitivity: high-frequency right-hand sides are annihilated cheaply by
//! plain smoothing, smooth right-hand sides need full multigrid, tiny grids
//! are direct-solver territory.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dim2;
pub mod dim3;
pub mod generators;
pub mod helmholtz;
pub mod level;
pub mod poisson;

pub use generators::{PdeCorpus2d, PdeCorpus3d, PdeInput2d, PdeInput3d, PdeInputClass};
pub use helmholtz::Helmholtz3d;
pub use level::{CycleKind, MgOptions, Smoother};
pub use poisson::Poisson2d;
