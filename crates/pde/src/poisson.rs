//! The **Poisson 2D** benchmark: `-∆u = f` on the unit square.
//!
//! Solver choices (the `either…or` of the paper's benchmark): multigrid
//! with autotuned cycle shape, conjugate gradients, plain smoother
//! iteration, and a dense direct solver. Accuracy =
//! `log₁₀(RMS(err initial)/RMS(err final))` against the precomputed
//! reference solution, threshold 7.

use crate::dim2::Grid2d;
use crate::generators::PdeInput2d;
use crate::level::{
    cg_solve, direct_solve, direct_solve_flops_estimate, mg_solve, rms, smooth_solve, CycleKind,
    MgOptions, Smoother,
};
use intune_core::{
    AccuracySpec, Benchmark, ConfigSpace, Configuration, ExecutionReport, FeatureDef, FeatureSample,
};

/// Unknown-count ceiling for actually executing the dense direct solver;
/// larger instances charge the analytic `n³/3` estimate and are credited
/// machine-precision accuracy (the solve is exact; see DESIGN.md §4).
pub const DIRECT_EXEC_LIMIT: usize = 300;

/// Accuracy ceiling (machine precision floor on the error ratio).
pub const ACCURACY_CAP: f64 = 15.0;

/// Shared solver-gene plumbing for the two PDE benchmarks.
pub(crate) struct SolverGenes {
    pub prefix: &'static str,
}

/// A decoded solver choice.
pub(crate) enum SolverChoice {
    Multigrid {
        cycles: usize,
        opts: MgOptions,
    },
    ConjugateGradient {
        iters: usize,
    },
    SmootherOnly {
        smoother: Smoother,
        omega: f64,
        sweeps: usize,
    },
    Direct,
}

impl SolverGenes {
    pub fn add_to(&self, b: intune_core::ConfigSpaceBuilder) -> intune_core::ConfigSpaceBuilder {
        let p = self.prefix;
        b.switch(format!("{p}.solver"), 4)
            .switch(format!("{p}.cycle"), 2)
            .int(format!("{p}.pre"), 0, 4)
            .int(format!("{p}.post"), 0, 4)
            .switch(format!("{p}.smoother"), 4)
            .float(format!("{p}.omega"), 0.5, 1.95)
            .int(format!("{p}.cycles"), 1, 20)
            .switch(format!("{p}.coarse"), 2)
            .log_int(format!("{p}.cg_iters"), 1, 500)
            .log_int(format!("{p}.sweeps"), 1, 2000)
    }

    pub fn decode(&self, space: &ConfigSpace, cfg: &Configuration) -> SolverChoice {
        let p = self.prefix;
        let g = |name: &str| space.require(&format!("{p}.{name}")).expect("solver gene");
        let smoother = Smoother::from_index(cfg.choice(g("smoother")));
        let omega = cfg.float(g("omega"));
        match cfg.choice(g("solver")) {
            0 => SolverChoice::Multigrid {
                cycles: cfg.int(g("cycles")) as usize,
                opts: MgOptions {
                    pre: cfg.int(g("pre")) as usize,
                    post: cfg.int(g("post")) as usize,
                    smoother,
                    omega,
                    cycle: if cfg.choice(g("cycle")) == 0 {
                        CycleKind::V
                    } else {
                        CycleKind::W
                    },
                    coarse_direct: cfg.choice(g("coarse")) == 0,
                },
            },
            1 => SolverChoice::ConjugateGradient {
                iters: cfg.int(g("cg_iters")) as usize,
            },
            2 => SolverChoice::SmootherOnly {
                smoother,
                omega,
                sweeps: cfg.int(g("sweeps")) as usize,
            },
            _ => SolverChoice::Direct,
        }
    }
}

/// Computes the paper's accuracy metric against a reference solution.
pub(crate) fn accuracy_vs_reference(reference: &[f64], u: &[f64]) -> f64 {
    let initial = rms(reference).max(1e-300);
    let err: Vec<f64> = reference.iter().zip(u).map(|(r, x)| r - x).collect();
    let final_err = rms(&err).max(1e-300);
    (initial / final_err).log10().clamp(-5.0, ACCURACY_CAP)
}

/// Runs a decoded solver on any level type; `None` solution means the
/// (too-large) direct solve was estimated rather than executed.
pub(crate) fn run_solver<L: crate::level::Level>(
    level: &L,
    f: &[f64],
    choice: &SolverChoice,
) -> (Option<Vec<f64>>, f64) {
    match choice {
        SolverChoice::Multigrid { cycles, opts } => {
            let (u, fl) = mg_solve(level, f, *cycles, opts);
            (Some(u), fl)
        }
        SolverChoice::ConjugateGradient { iters } => {
            let (u, fl) = cg_solve(level, f, *iters);
            (Some(u), fl)
        }
        SolverChoice::SmootherOnly {
            smoother,
            omega,
            sweeps,
        } => {
            let (u, fl) = smooth_solve(level, f, *smoother, *omega, *sweeps);
            (Some(u), fl)
        }
        SolverChoice::Direct => {
            let n = level.unknowns();
            if n <= DIRECT_EXEC_LIMIT {
                match direct_solve(level, f) {
                    Some((u, fl)) => (Some(u), fl),
                    None => (None, direct_solve_flops_estimate(n)),
                }
            } else {
                (None, direct_solve_flops_estimate(n))
            }
        }
    }
}

/// The Poisson 2D benchmark.
#[derive(Debug, Clone)]
pub struct Poisson2d;

impl Poisson2d {
    /// Creates the benchmark.
    pub fn new() -> Self {
        Poisson2d
    }

    fn genes() -> SolverGenes {
        SolverGenes { prefix: "p2" }
    }
}

impl Default for Poisson2d {
    fn default() -> Self {
        Poisson2d::new()
    }
}

impl Benchmark for Poisson2d {
    type Input = PdeInput2d;

    fn name(&self) -> &str {
        "poisson2d"
    }

    fn space(&self) -> ConfigSpace {
        Self::genes().add_to(ConfigSpace::builder()).build()
    }

    fn run(&self, cfg: &Configuration, input: &Self::Input) -> ExecutionReport {
        let space = self.space();
        let choice = Self::genes().decode(&space, cfg);
        let grid = Grid2d::poisson(input.n);
        let (u, flops) = run_solver(&grid, &input.rhs, &choice);
        let accuracy = match u {
            Some(u) => accuracy_vs_reference(&input.reference, &u),
            None => ACCURACY_CAP, // estimated exact direct solve
        };
        ExecutionReport::with_accuracy(flops, accuracy)
    }

    fn accuracy(&self) -> Option<AccuracySpec> {
        Some(AccuracySpec::new(7.0))
    }

    fn properties(&self) -> Vec<FeatureDef> {
        vec![
            FeatureDef::new("residual", 3),
            FeatureDef::new("deviation", 3),
            FeatureDef::new("zeros", 3),
        ]
    }

    fn extract(&self, property: usize, level: usize, input: &Self::Input) -> FeatureSample {
        crate::generators::extract_field_feature(property, level, &input.rhs)
    }

    fn encode_input(&self, input: &Self::Input) -> Option<serde_json::Value> {
        Some(serde_json::Value::Object(vec![
            ("n".to_string(), serde_json::Value::UInt(input.n as u64)),
            (
                "rhs".to_string(),
                crate::generators::encode_field(&input.rhs),
            ),
            (
                "reference".to_string(),
                crate::generators::encode_field(&input.reference),
            ),
        ]))
    }

    fn decode_input(&self, payload: &serde_json::Value) -> Option<Self::Input> {
        let n = usize::try_from(payload.get("n")?.as_u64()?).ok()?;
        let rhs = crate::generators::decode_field(payload.get("rhs")?)?;
        let reference = crate::generators::decode_field(payload.get("reference")?)?;
        let cells = n.checked_mul(n)?;
        if n == 0 || rhs.len() != cells || reference.len() != cells {
            return None;
        }
        Some(PdeInput2d { n, rhs, reference })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::PdeInputClass;
    use intune_core::ParamValue;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn smooth_input(n: usize) -> PdeInput2d {
        let mut rng = StdRng::seed_from_u64(4);
        PdeInputClass::SmoothLowFreq.generate_2d(n, &mut rng)
    }

    fn set(cfg: &mut Configuration, space: &ConfigSpace, name: &str, v: ParamValue) {
        cfg.set(space.index_of(name).unwrap(), v);
    }

    #[test]
    fn multigrid_hits_accuracy_target() {
        let b = Poisson2d::new();
        let space = b.space();
        let mut cfg = space.default_config();
        set(&mut cfg, &space, "p2.solver", ParamValue::Choice(0));
        set(&mut cfg, &space, "p2.cycles", ParamValue::Int(12));
        set(&mut cfg, &space, "p2.smoother", ParamValue::Choice(3));
        let report = b.run(&cfg, &smooth_input(31));
        assert!(
            report.accuracy.unwrap() >= 7.0,
            "accuracy {}",
            report.accuracy.unwrap()
        );
    }

    #[test]
    fn starved_smoother_misses_target_on_smooth_rhs() {
        let b = Poisson2d::new();
        let space = b.space();
        let mut cfg = space.default_config();
        set(&mut cfg, &space, "p2.solver", ParamValue::Choice(2));
        set(&mut cfg, &space, "p2.sweeps", ParamValue::Int(20));
        set(&mut cfg, &space, "p2.smoother", ParamValue::Choice(1));
        let report = b.run(&cfg, &smooth_input(31));
        assert!(
            report.accuracy.unwrap() < 7.0,
            "20 GS sweeps cannot clear 7 orders on smooth rhs, got {}",
            report.accuracy.unwrap()
        );
    }

    #[test]
    fn smoother_cheap_and_sufficient_on_high_freq_rhs() {
        let b = Poisson2d::new();
        let space = b.space();
        let mut rng = StdRng::seed_from_u64(9);
        let input = PdeInputClass::HighFreq.generate_2d(31, &mut rng);

        let mut smooth_cfg = space.default_config();
        set(&mut smooth_cfg, &space, "p2.solver", ParamValue::Choice(2));
        // 90 sweeps (not 70): the vendored deterministic RNG draws a
        // slightly richer low-frequency mix for HighFreq than upstream
        // rand's StdRng did, and 70 sweeps land just under the 7-order bar.
        set(&mut smooth_cfg, &space, "p2.sweeps", ParamValue::Int(90));
        set(
            &mut smooth_cfg,
            &space,
            "p2.smoother",
            ParamValue::Choice(1),
        );

        let mut mg_cfg = space.default_config();
        set(&mut mg_cfg, &space, "p2.solver", ParamValue::Choice(0));
        set(&mut mg_cfg, &space, "p2.cycles", ParamValue::Int(12));

        let r_smooth = b.run(&smooth_cfg, &input);
        let r_mg = b.run(&mg_cfg, &input);
        assert!(
            r_smooth.accuracy.unwrap() >= 7.0,
            "smoothing on high-freq rhs reaches {}",
            r_smooth.accuracy.unwrap()
        );
        assert!(
            r_smooth.cost < r_mg.cost,
            "smoother {} should be cheaper than MG {}",
            r_smooth.cost,
            r_mg.cost
        );
    }

    #[test]
    fn direct_small_exact_large_estimated() {
        let b = Poisson2d::new();
        let space = b.space();
        let mut cfg = space.default_config();
        set(&mut cfg, &space, "p2.solver", ParamValue::Choice(3));
        // Small grid: executed, essentially exact.
        let small = b.run(&cfg, &smooth_input(15));
        assert!(small.accuracy.unwrap() > 10.0);
        // Large grid: estimated, exact by construction, cubic cost.
        let large = b.run(&cfg, &smooth_input(31));
        assert_eq!(large.accuracy.unwrap(), ACCURACY_CAP);
        assert!(large.cost > small.cost * 10.0);
    }

    #[test]
    fn cg_feasible_between_extremes() {
        let b = Poisson2d::new();
        let space = b.space();
        let mut cfg = space.default_config();
        set(&mut cfg, &space, "p2.solver", ParamValue::Choice(1));
        set(&mut cfg, &space, "p2.cg_iters", ParamValue::Int(400));
        let report = b.run(&cfg, &smooth_input(31));
        assert!(
            report.accuracy.unwrap() >= 7.0,
            "CG(400) accuracy {}",
            report.accuracy.unwrap()
        );
    }

    #[test]
    fn features_extractable() {
        let b = Poisson2d::new();
        let fv = b.extract_all(&smooth_input(15));
        assert_eq!(fv.len(), 9);
        assert!(fv.dense().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn accuracy_threshold_is_papers() {
        assert_eq!(Poisson2d::new().accuracy().unwrap().threshold, 7.0);
    }

    #[test]
    fn inputs_round_trip_through_journal_codec_bit_exactly() {
        let b = Poisson2d::new();
        // A generated input plus a hand-built one of adversarial values:
        // negative zero, a subnormal, a value with no short decimal form,
        // and huge magnitudes (kept below sqrt(f64::MAX) so the feature
        // extractor's sum of squares stays finite — NaN features would
        // void the bit-for-bit comparison below).
        let adversarial = PdeInput2d {
            n: 2,
            rhs: vec![-0.0, f64::MIN_POSITIVE / 2.0, 0.1 + 0.2, 1e150],
            reference: vec![-1e150, 1.0, -1.5, 0.0],
        };
        for input in [smooth_input(7), adversarial] {
            let encoded = b.encode_input(&input).expect("poisson journals");
            // Through the actual wire representation, not just the Value
            // tree.
            let text = serde_json::to_string(&encoded).unwrap();
            let reparsed: serde_json::Value = serde_json::from_str(&text).unwrap();
            let decoded = b.decode_input(&reparsed).expect("codec round-trips");
            assert_eq!(decoded.n, input.n);
            for (a, c) in input.rhs.iter().zip(&decoded.rhs) {
                assert_eq!(a.to_bits(), c.to_bits());
            }
            for (a, c) in input.reference.iter().zip(&decoded.reference) {
                assert_eq!(a.to_bits(), c.to_bits());
            }
            // Identical treatment: same features, bit for bit.
            assert_eq!(
                b.extract_all(&input).dense(),
                b.extract_all(&decoded).dense()
            );
        }
    }

    #[test]
    fn decode_rejects_malformed_documents() {
        let b = Poisson2d::new();
        for text in [
            "null",
            "{}",
            // rhs shorter than n².
            r#"{"n": 2, "rhs": [1.0, 2.0, 3.0], "reference": [0.0, 0.0, 0.0, 0.0]}"#,
            // reference shorter than n².
            r#"{"n": 2, "rhs": [1.0, 2.0, 3.0, 4.0], "reference": [0.0]}"#,
            // Degenerate grid.
            r#"{"n": 0, "rhs": [], "reference": []}"#,
            // Missing field.
            r#"{"n": 1, "rhs": [1.0]}"#,
            // Non-numeric entry.
            r#"{"n": 1, "rhs": ["x"], "reference": [0.0]}"#,
        ] {
            let payload: serde_json::Value = serde_json::from_str(text).unwrap();
            assert!(b.decode_input(&payload).is_none(), "accepted {text}");
        }
    }
}
