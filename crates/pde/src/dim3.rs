//! 3-D discretization: 7-point Laplacian with a variable zeroth-order
//! coefficient on the unit cube (the screened-Poisson / SPD form of the
//! variable-coefficient Helmholtz equation), homogeneous Dirichlet
//! boundaries, interior grid of `n × n × n` points, `h = 1/(n+1)`.

use crate::level::{Level, Smoother};
use intune_linalg::Matrix;

/// One 3-D grid level of `(-∆ + c(x))·u = f`.
#[derive(Debug, Clone)]
pub struct Grid3d {
    n: usize,
    h: f64,
    coeff: Vec<f64>,
}

impl Grid3d {
    /// A level with per-point coefficient `c` (length n³, all ≥ 0).
    ///
    /// # Panics
    /// Panics if shapes mismatch or any coefficient is negative.
    pub fn new(n: usize, coeff: Vec<f64>) -> Self {
        assert!(n > 0, "grid needs at least one interior point");
        assert_eq!(coeff.len(), n * n * n, "coefficient field shape");
        assert!(
            coeff.iter().all(|c| *c >= 0.0),
            "coefficients must be >= 0 for SPD"
        );
        Grid3d {
            n,
            h: 1.0 / (n as f64 + 1.0),
            coeff,
        }
    }

    /// A constant-coefficient level.
    pub fn constant(n: usize, c: f64) -> Self {
        Grid3d::new(n, vec![c.max(0.0); n * n * n])
    }

    /// Interior points per dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    #[inline]
    fn idx(&self, i: usize, j: usize, k: usize) -> usize {
        (i * self.n + j) * self.n + k
    }

    #[inline]
    fn at(&self, u: &[f64], i: i64, j: i64, k: i64) -> f64 {
        let n = self.n as i64;
        if i < 0 || j < 0 || k < 0 || i >= n || j >= n || k >= n {
            0.0
        } else {
            u[((i * n + j) * n + k) as usize]
        }
    }

    fn neighbors_sum(&self, u: &[f64], i: usize, j: usize, k: usize) -> f64 {
        let (i, j, k) = (i as i64, j as i64, k as i64);
        self.at(u, i - 1, j, k)
            + self.at(u, i + 1, j, k)
            + self.at(u, i, j - 1, k)
            + self.at(u, i, j + 1, k)
            + self.at(u, i, j, k - 1)
            + self.at(u, i, j, k + 1)
    }

    fn gauss_seidel_pass(&self, omega: f64, u: &mut [f64], f: &[f64], parity: Option<usize>) {
        let n = self.n;
        let h2 = self.h * self.h;
        for i in 0..n {
            for j in 0..n {
                for k in 0..n {
                    if let Some(p) = parity {
                        if (i + j + k) % 2 != p {
                            continue;
                        }
                    }
                    let idx = self.idx(i, j, k);
                    let nb = self.neighbors_sum(u, i, j, k);
                    let diag = 6.0 / h2 + self.coeff[idx];
                    let gs = (f[idx] + nb / h2) / diag;
                    u[idx] = (1.0 - omega) * u[idx] + omega * gs;
                }
            }
        }
    }
}

impl Level for Grid3d {
    fn unknowns(&self) -> usize {
        self.n * self.n * self.n
    }

    fn apply(&self, u: &[f64], out: &mut [f64]) -> f64 {
        let n = self.n;
        let h2 = self.h * self.h;
        for i in 0..n {
            for j in 0..n {
                for k in 0..n {
                    let idx = self.idx(i, j, k);
                    let nb = self.neighbors_sum(u, i, j, k);
                    out[idx] = (6.0 * u[idx] - nb) / h2 + self.coeff[idx] * u[idx];
                }
            }
        }
        10.0 * self.unknowns() as f64
    }

    fn smooth(
        &self,
        smoother: Smoother,
        omega: f64,
        u: &mut [f64],
        f: &[f64],
        sweeps: usize,
    ) -> f64 {
        let un = self.unknowns() as f64;
        let mut flops = 0.0;
        for _ in 0..sweeps {
            match smoother {
                Smoother::Jacobi => {
                    let mut au = vec![0.0; u.len()];
                    flops += self.apply(u, &mut au);
                    let h2 = self.h * self.h;
                    let w = if omega > 0.0 { omega.min(1.0) } else { 0.8 };
                    for idx in 0..u.len() {
                        let diag = 6.0 / h2 + self.coeff[idx];
                        u[idx] += w * (f[idx] - au[idx]) / diag;
                    }
                    flops += 4.0 * un;
                }
                Smoother::GaussSeidel => {
                    self.gauss_seidel_pass(1.0, u, f, None);
                    flops += 10.0 * un;
                }
                Smoother::Sor => {
                    self.gauss_seidel_pass(omega.clamp(0.1, 1.95), u, f, None);
                    flops += 12.0 * un;
                }
                Smoother::RedBlack => {
                    self.gauss_seidel_pass(1.0, u, f, Some(0));
                    self.gauss_seidel_pass(1.0, u, f, Some(1));
                    flops += 11.0 * un;
                }
            }
        }
        flops
    }

    fn restrict(&self, fine: &[f64]) -> (Vec<f64>, f64) {
        let n = self.n;
        let nc = (n - 1) / 2;
        let mut coarse = vec![0.0; nc * nc * nc];
        for ci in 0..nc {
            for cj in 0..nc {
                for ck in 0..nc {
                    let (fi, fj, fk) = (
                        (2 * ci + 1) as i64,
                        (2 * cj + 1) as i64,
                        (2 * ck + 1) as i64,
                    );
                    let mut acc = 0.0;
                    for di in -1i64..=1 {
                        for dj in -1i64..=1 {
                            for dk in -1i64..=1 {
                                let manhattan = di.abs() + dj.abs() + dk.abs();
                                let w = match manhattan {
                                    0 => 8.0,
                                    1 => 4.0,
                                    2 => 2.0,
                                    _ => 1.0,
                                } / 64.0;
                                acc += w * self.at(fine, fi + di, fj + dj, fk + dk);
                            }
                        }
                    }
                    coarse[(ci * nc + cj) * nc + ck] = acc;
                }
            }
        }
        (coarse, 28.0 * (nc * nc * nc) as f64)
    }

    fn prolong_add(&self, coarse: &[f64], fine_u: &mut [f64]) -> f64 {
        let n = self.n;
        let nc = (n - 1) / 2;
        let mut add = |i: i64, j: i64, k: i64, v: f64| {
            if i >= 0
                && j >= 0
                && k >= 0
                && (i as usize) < n
                && (j as usize) < n
                && (k as usize) < n
            {
                fine_u[((i as usize) * n + j as usize) * n + k as usize] += v;
            }
        };
        for ci in 0..nc {
            for cj in 0..nc {
                for ck in 0..nc {
                    let e = coarse[(ci * nc + cj) * nc + ck];
                    let (fi, fj, fk) = (
                        (2 * ci + 1) as i64,
                        (2 * cj + 1) as i64,
                        (2 * ck + 1) as i64,
                    );
                    for di in -1i64..=1 {
                        for dj in -1i64..=1 {
                            for dk in -1i64..=1 {
                                let manhattan = di.abs() + dj.abs() + dk.abs();
                                let w = match manhattan {
                                    0 => 1.0,
                                    1 => 0.5,
                                    2 => 0.25,
                                    _ => 0.125,
                                };
                                add(fi + di, fj + dj, fk + dk, w * e);
                            }
                        }
                    }
                }
            }
        }
        27.0 * (nc * nc * nc) as f64
    }

    fn coarser(&self) -> Option<Self> {
        if self.n < 3 {
            return None;
        }
        let nc = (self.n - 1) / 2;
        if nc == 0 {
            return None;
        }
        let n = self.n;
        let mut coeff = vec![0.0; nc * nc * nc];
        for ci in 0..nc {
            for cj in 0..nc {
                for ck in 0..nc {
                    coeff[(ci * nc + cj) * nc + ck] =
                        self.coeff[((2 * ci + 1) * n + (2 * cj + 1)) * n + (2 * ck + 1)];
                }
            }
        }
        Some(Grid3d::new(nc, coeff))
    }

    fn dense(&self) -> Matrix {
        let n = self.n;
        let un = self.unknowns();
        let h2 = self.h * self.h;
        let mut a = Matrix::zeros(un, un);
        for i in 0..n {
            for j in 0..n {
                for k in 0..n {
                    let idx = self.idx(i, j, k);
                    a[(idx, idx)] = 6.0 / h2 + self.coeff[idx];
                    let mut nb = |ii: i64, jj: i64, kk: i64| {
                        if ii >= 0
                            && jj >= 0
                            && kk >= 0
                            && (ii as usize) < n
                            && (jj as usize) < n
                            && (kk as usize) < n
                        {
                            let nidx = ((ii as usize) * n + jj as usize) * n + kk as usize;
                            a[(idx, nidx)] = -1.0 / h2;
                        }
                    };
                    nb(i as i64 - 1, j as i64, k as i64);
                    nb(i as i64 + 1, j as i64, k as i64);
                    nb(i as i64, j as i64 - 1, k as i64);
                    nb(i as i64, j as i64 + 1, k as i64);
                    nb(i as i64, j as i64, k as i64 - 1);
                    nb(i as i64, j as i64, k as i64 + 1);
                }
            }
        }
        a
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::level::{cg_solve, mg_solve, residual, rms, MgOptions};

    #[test]
    fn apply_matches_dense() {
        let g = Grid3d::constant(3, 2.0);
        let a = g.dense();
        let u: Vec<f64> = (0..27).map(|i| ((i * 11) % 5) as f64 - 2.0).collect();
        let mut out = vec![0.0; 27];
        g.apply(&u, &mut out);
        let via = a.matvec(&u);
        for i in 0..27 {
            assert!((out[i] - via[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn hierarchy_sizes() {
        let g = Grid3d::constant(15, 0.0);
        let mut level = Some(g);
        let mut sizes = Vec::new();
        while let Some(l) = level {
            sizes.push(l.n());
            level = l.coarser();
        }
        assert_eq!(sizes, vec![15, 7, 3, 1]);
    }

    #[test]
    fn mg_converges_on_helmholtz() {
        let n = 15;
        let coeff: Vec<f64> = (0..n * n * n).map(|i| ((i % 7) as f64) * 3.0).collect();
        let g = Grid3d::new(n, coeff);
        let f: Vec<f64> = (0..n * n * n).map(|i| ((i % 13) as f64) - 6.0).collect();
        let (u, _) = mg_solve(&g, &f, 10, &MgOptions::default());
        let (r, _) = residual(&g, &u, &f);
        assert!(rms(&r) / rms(&f) < 1e-5, "rel res {}", rms(&r) / rms(&f));
    }

    #[test]
    fn cg_agrees_with_mg() {
        let g = Grid3d::constant(7, 1.0);
        let f: Vec<f64> = (0..343).map(|i| ((i % 10) as f64) / 10.0).collect();
        let (u_mg, _) = mg_solve(&g, &f, 12, &MgOptions::default());
        let (u_cg, _) = cg_solve(&g, &f, 200);
        let diff: f64 = u_mg
            .iter()
            .zip(&u_cg)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt();
        assert!(
            diff < 1e-5 * rms(&u_mg).max(1e-12) * 343.0_f64.sqrt() + 1e-7,
            "diff {diff}"
        );
    }
}
