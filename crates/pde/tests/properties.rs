//! Property-based tests for the multigrid substrate.

use intune_pde::dim2::Grid2d;
use intune_pde::dim3::Grid3d;
use intune_pde::level::{cg_solve, mg_solve, residual, rms, Level, MgOptions};
use proptest::prelude::*;

fn rel_res<L: Level>(g: &L, u: &[f64], f: &[f64]) -> f64 {
    let (r, _) = residual(g, u, f);
    rms(&r) / rms(f).max(1e-300)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Multigrid contracts the residual monotonically in cycle count on
    /// arbitrary right-hand sides.
    #[test]
    fn mg_contracts(f in prop::collection::vec(-5.0f64..5.0, 225..226)) {
        let g = Grid2d::poisson(15);
        prop_assume!(rms(&f) > 1e-6);
        let (u2, _) = mg_solve(&g, &f, 2, &MgOptions::default());
        let (u6, _) = mg_solve(&g, &f, 6, &MgOptions::default());
        let r2 = rel_res(&g, &u2, &f);
        let r6 = rel_res(&g, &u6, &f);
        prop_assert!(r6 <= r2 * 1.001, "6 cycles ({r6}) worse than 2 ({r2})");
        prop_assert!(r6 < 1e-4, "MG failed to contract: {r6}");
    }

    /// CG and MG agree on the solution for arbitrary right-hand sides.
    #[test]
    fn cg_and_mg_agree(f in prop::collection::vec(-5.0f64..5.0, 49..50)) {
        let g = Grid2d::poisson(7);
        prop_assume!(rms(&f) > 1e-6);
        let (u_mg, _) = mg_solve(&g, &f, 14, &MgOptions::default());
        let (u_cg, _) = cg_solve(&g, &f, 120);
        let diff: f64 = u_mg
            .iter()
            .zip(&u_cg)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt();
        let scale = u_mg.iter().map(|x| x * x).sum::<f64>().sqrt().max(1e-12);
        prop_assert!(diff / scale < 1e-4, "solver disagreement {}", diff / scale);
    }

    /// The 2-D operator is symmetric: <Au, v> = <u, Av>.
    #[test]
    fn operator_symmetric_2d(
        u in prop::collection::vec(-3.0f64..3.0, 81..82),
        v in prop::collection::vec(-3.0f64..3.0, 81..82),
        c in 0.0f64..10.0,
    ) {
        let g = Grid2d::screened(9, vec![c; 81]);
        let mut au = vec![0.0; 81];
        let mut av = vec![0.0; 81];
        g.apply(&u, &mut au);
        g.apply(&v, &mut av);
        let left: f64 = au.iter().zip(&v).map(|(a, b)| a * b).sum();
        let right: f64 = u.iter().zip(&av).map(|(a, b)| a * b).sum();
        prop_assert!((left - right).abs() < 1e-6 * left.abs().max(1.0));
    }

    /// Restriction is (1/4)·Pᵀ in 2-D: <P e_c, u_f> = 4·<e_c, R u_f>.
    #[test]
    fn transfer_operators_adjoint_2d(
        coarse in prop::collection::vec(-3.0f64..3.0, 49..50),
        fine in prop::collection::vec(-3.0f64..3.0, 225..226),
    ) {
        let g = Grid2d::poisson(15); // nc = 7 -> 49 coarse unknowns
        let mut p_coarse = vec![0.0; 225];
        g.prolong_add(&coarse, &mut p_coarse);
        let (r_fine, _) = g.restrict(&fine);
        let left: f64 = p_coarse.iter().zip(&fine).map(|(a, b)| a * b).sum();
        let right: f64 = coarse.iter().zip(&r_fine).map(|(a, b)| a * b).sum();
        prop_assert!(
            (left - 4.0 * right).abs() < 1e-8 * left.abs().max(1.0),
            "adjoint mismatch: {} vs {}", left, 4.0 * right
        );
    }

    /// The 3-D operator is symmetric and positive on nonzero vectors.
    #[test]
    fn operator_spd_3d(
        u in prop::collection::vec(-3.0f64..3.0, 27..28),
        c in 0.0f64..10.0,
    ) {
        let g = Grid3d::constant(3, c);
        prop_assume!(u.iter().any(|x| x.abs() > 1e-9));
        let mut au = vec![0.0; 27];
        g.apply(&u, &mut au);
        let quad: f64 = au.iter().zip(&u).map(|(a, b)| a * b).sum();
        prop_assert!(quad > 0.0, "operator not positive definite: {quad}");
    }
}
