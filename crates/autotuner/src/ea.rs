//! Generational evolutionary autotuner.

use crate::objective::Objective;
use intune_core::{ConfigSpace, Configuration, ExecutionReport};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Budget and operator settings for [`EvolutionaryTuner`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TunerOptions {
    /// Population size.
    pub population: usize,
    /// Number of generations.
    pub generations: usize,
    /// Per-gene mutation probability.
    pub mutation_rate: f64,
    /// Tournament size for parent selection.
    pub tournament: usize,
    /// Number of elites copied unchanged each generation.
    pub elites: usize,
    /// Probability that a child is produced by crossover (else cloned parent).
    pub crossover_rate: f64,
    /// RNG seed; the tuner is fully deterministic given the seed and a
    /// deterministic evaluation function.
    pub seed: u64,
}

impl TunerOptions {
    /// A small budget suitable for unit tests and CI-scale pipelines.
    pub fn quick(seed: u64) -> Self {
        TunerOptions {
            population: 24,
            generations: 30,
            mutation_rate: 0.25,
            tournament: 3,
            elites: 2,
            crossover_rate: 0.7,
            seed,
        }
    }

    /// A heavier budget for paper-scale landmark creation.
    pub fn thorough(seed: u64) -> Self {
        TunerOptions {
            population: 60,
            generations: 120,
            mutation_rate: 0.2,
            tournament: 4,
            elites: 3,
            crossover_rate: 0.8,
            seed,
        }
    }
}

impl Default for TunerOptions {
    fn default() -> Self {
        TunerOptions::quick(0)
    }
}

/// The outcome of a tuning run.
#[derive(Debug, Clone)]
pub struct TuningResult {
    /// The best configuration found.
    pub best: Configuration,
    /// Its evaluation report.
    pub best_report: ExecutionReport,
    /// Best-so-far cost after each generation (monotone under the
    /// objective's feasible ordering; used by convergence tests/benches).
    pub history: Vec<f64>,
    /// Total number of evaluations spent.
    pub evaluations: usize,
}

/// A budgeted generational EA with tournament selection, uniform crossover,
/// per-gene mutation and elitism — the workspace stand-in for the PetaBricks
/// evolutionary autotuner.
#[derive(Debug, Clone)]
pub struct EvolutionaryTuner {
    opts: TunerOptions,
}

impl EvolutionaryTuner {
    /// Creates a tuner with the given options.
    pub fn new(opts: TunerOptions) -> Self {
        EvolutionaryTuner { opts }
    }

    /// Searches `space` for a configuration minimizing `objective` under the
    /// evaluation function `eval` (typically: run the benchmark on the
    /// cluster-representative input).
    ///
    /// # Panics
    /// Panics if the space is empty or the population is zero.
    pub fn tune<F>(&self, space: &ConfigSpace, objective: Objective, mut eval: F) -> TuningResult
    where
        F: FnMut(&Configuration) -> ExecutionReport,
    {
        self.try_tune(space, objective, |cfg| Ok(eval(cfg)))
            .unwrap_or_else(|_: intune_core::Error| unreachable!("infallible eval"))
    }

    /// Like [`EvolutionaryTuner::tune`], but with a fallible evaluation
    /// function: the first measurement error aborts the search and is
    /// returned to the caller. This is the entry point the two-level
    /// pipeline uses to route objective evaluations through the
    /// `intune-exec` engine (memoized, typed-error measurement).
    ///
    /// # Panics
    /// Panics if the space is empty or the population is zero.
    pub fn try_tune<F>(
        &self,
        space: &ConfigSpace,
        objective: Objective,
        mut eval: F,
    ) -> intune_core::Result<TuningResult>
    where
        F: FnMut(&Configuration) -> intune_core::Result<ExecutionReport>,
    {
        assert!(!space.is_empty(), "cannot tune an empty space");
        assert!(self.opts.population > 0, "population must be positive");
        let mut rng = StdRng::seed_from_u64(self.opts.seed);
        let mut evaluations = 0usize;

        // Initial population: default config plus random samples, so the
        // search always contains a sane starting point.
        let mut population: Vec<(Configuration, ExecutionReport)> = Vec::new();
        let default = space.default_config();
        let default_report = eval(&default)?;
        evaluations += 1;
        population.push((default, default_report));
        while population.len() < self.opts.population {
            let cfg = space.random(&mut rng);
            let report = eval(&cfg)?;
            evaluations += 1;
            population.push((cfg, report));
        }

        let mut history = Vec::with_capacity(self.opts.generations);
        for _gen in 0..self.opts.generations {
            population.sort_by(|a, b| objective.compare(&a.1, &b.1));
            history.push(population[0].1.cost);

            let mut next: Vec<(Configuration, ExecutionReport)> = population
                .iter()
                .take(self.opts.elites.min(population.len()))
                .cloned()
                .collect();

            while next.len() < self.opts.population {
                let parent_a = self.select(&population, objective, &mut rng);
                let child = if rng.gen::<f64>() < self.opts.crossover_rate {
                    let parent_b = self.select(&population, objective, &mut rng);
                    space.crossover(&population[parent_a].0, &population[parent_b].0, &mut rng)
                } else {
                    population[parent_a].0.clone()
                };
                let child = space.mutate(&child, self.opts.mutation_rate, &mut rng);
                let report = eval(&child)?;
                evaluations += 1;
                next.push((child, report));
            }
            population = next;
        }

        population.sort_by(|a, b| objective.compare(&a.1, &b.1));
        let (best, best_report) = population.into_iter().next().expect("nonempty population");
        history.push(best_report.cost);
        Ok(TuningResult {
            best,
            best_report,
            history,
            evaluations,
        })
    }

    fn select(
        &self,
        population: &[(Configuration, ExecutionReport)],
        objective: Objective,
        rng: &mut StdRng,
    ) -> usize {
        let mut best = rng.gen_range(0..population.len());
        for _ in 1..self.opts.tournament.max(1) {
            let challenger = rng.gen_range(0..population.len());
            if objective.better(&population[challenger].1, &population[best].1) {
                best = challenger;
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use intune_core::ExecutionReport;

    fn quadratic_space() -> ConfigSpace {
        ConfigSpace::builder()
            .int("x", -100, 100)
            .int("y", -100, 100)
            .build()
    }

    #[test]
    fn minimizes_quadratic_bowl() {
        let space = quadratic_space();
        let tuner = EvolutionaryTuner::new(TunerOptions::quick(1));
        let result = tuner.tune(&space, Objective::cost_only(), |cfg| {
            let x = cfg.int(0) as f64 - 13.0;
            let y = cfg.int(1) as f64 + 27.0;
            ExecutionReport::of_cost(x * x + y * y)
        });
        assert!(
            result.best_report.cost < 50.0,
            "EA stuck at cost {}",
            result.best_report.cost
        );
    }

    #[test]
    fn history_is_monotone_nonincreasing_for_cost_only() {
        let space = quadratic_space();
        let tuner = EvolutionaryTuner::new(TunerOptions::quick(2));
        let result = tuner.tune(&space, Objective::cost_only(), |cfg| {
            ExecutionReport::of_cost((cfg.int(0) as f64).abs())
        });
        for w in result.history.windows(2) {
            assert!(w[1] <= w[0] + 1e-12, "history regressed: {:?}", w);
        }
    }

    #[test]
    fn respects_accuracy_target() {
        // Accuracy grows with x, cost grows with x: the tuner must pay just
        // enough cost to clear the target.
        let space = ConfigSpace::builder().int("x", 0, 100).build();
        let tuner = EvolutionaryTuner::new(TunerOptions::quick(3));
        let objective = Objective::with_accuracy_target(0.7);
        let result = tuner.tune(&space, objective, |cfg| {
            let x = cfg.int(0) as f64;
            ExecutionReport::with_accuracy(x, x / 100.0)
        });
        let acc = result.best_report.accuracy.unwrap();
        assert!(acc >= 0.7, "missed accuracy target: {acc}");
        assert!(
            result.best_report.cost <= 80.0,
            "overpaid for accuracy: cost {}",
            result.best_report.cost
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let space = quadratic_space();
        let run = || {
            EvolutionaryTuner::new(TunerOptions::quick(7)).tune(
                &space,
                Objective::cost_only(),
                |cfg| ExecutionReport::of_cost((cfg.int(0) * cfg.int(0)) as f64),
            )
        };
        let a = run();
        let b = run();
        assert_eq!(a.best, b.best);
        assert_eq!(a.history, b.history);
    }

    #[test]
    fn evaluation_budget_accounted() {
        let space = quadratic_space();
        let opts = TunerOptions {
            population: 10,
            generations: 5,
            ..TunerOptions::quick(0)
        };
        let tuner = EvolutionaryTuner::new(opts);
        let result = tuner.tune(&space, Objective::cost_only(), |_| {
            ExecutionReport::of_cost(1.0)
        });
        // initial pop + (pop - elites) per generation
        let expected = 10 + 5 * (10 - opts.elites);
        assert_eq!(result.evaluations, expected);
    }

    #[test]
    fn try_tune_propagates_measurement_errors() {
        let space = quadratic_space();
        let tuner = EvolutionaryTuner::new(TunerOptions::quick(4));
        let mut calls = 0usize;
        let result = tuner.try_tune(&space, Objective::cost_only(), |_| {
            calls += 1;
            if calls == 3 {
                Err(intune_core::Error::Measurement {
                    input: 0,
                    detail: "synthetic failure".into(),
                })
            } else {
                Ok(ExecutionReport::of_cost(1.0))
            }
        });
        match result {
            Err(intune_core::Error::Measurement { detail, .. }) => {
                assert_eq!(detail, "synthetic failure");
            }
            other => panic!("expected measurement error, got {other:?}"),
        }
        assert_eq!(calls, 3, "search must stop at the first error");
    }

    #[test]
    fn try_tune_matches_tune_when_infallible() {
        let space = quadratic_space();
        let f = |cfg: &Configuration| {
            ExecutionReport::of_cost((cfg.int(0) as f64).abs() + (cfg.int(1) as f64).abs())
        };
        let tuner = EvolutionaryTuner::new(TunerOptions::quick(5));
        let plain = tuner.tune(&space, Objective::cost_only(), f);
        let fallible = tuner
            .try_tune(&space, Objective::cost_only(), |cfg| Ok(f(cfg)))
            .unwrap();
        assert_eq!(plain.best, fallible.best);
        assert_eq!(plain.history, fallible.history);
        assert_eq!(plain.evaluations, fallible.evaluations);
    }

    #[test]
    fn beats_random_sampling_on_same_budget() {
        let space = ConfigSpace::builder()
            .int("a", 0, 1000)
            .int("b", 0, 1000)
            .int("c", 0, 1000)
            .build();
        let f = |cfg: &Configuration| {
            let a = cfg.int(0) as f64 - 777.0;
            let b = cfg.int(1) as f64 - 111.0;
            let c = cfg.int(2) as f64 - 444.0;
            ExecutionReport::of_cost(a.abs() + b.abs() + c.abs())
        };
        let tuner = EvolutionaryTuner::new(TunerOptions::quick(9));
        let ea = tuner.tune(&space, Objective::cost_only(), f);

        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let mut best_random = f64::INFINITY;
        for _ in 0..ea.evaluations {
            let cfg = space.random(&mut rng);
            best_random = best_random.min(f(&cfg).cost);
        }
        assert!(
            ea.best_report.cost < best_random,
            "EA {} not better than random {best_random}",
            ea.best_report.cost
        );
    }
}
