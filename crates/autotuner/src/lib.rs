//! # intune-autotuner
//!
//! Evolutionary search over algorithmic-choice configuration spaces — the
//! stand-in for the PetaBricks evolutionary autotuner that Level 1 of the
//! two-level pipeline invokes once per input cluster ("Landmark Creation").
//!
//! The tuner is a budgeted generational EA: tournament parent selection,
//! uniform crossover, per-gene mutation (local step or global re-sample),
//! and elitism. Fitness follows the paper's two-dimensional objective:
//! *first* meet the accuracy target, *then* minimize execution cost
//! ([`Objective`]). A simple hill climber ([`hill::HillClimber`]) is
//! provided as a search-quality baseline for the ablation benches.
//!
//! ## Example
//!
//! ```
//! use intune_autotuner::{EvolutionaryTuner, Objective, TunerOptions};
//! use intune_core::{ConfigSpace, ExecutionReport};
//!
//! // Minimize |x - 37| over a toy 1-gene space.
//! let space = ConfigSpace::builder().int("x", 0, 100).build();
//! let tuner = EvolutionaryTuner::new(TunerOptions::quick(42));
//! let result = tuner.tune(&space, Objective::cost_only(), |cfg| {
//!     ExecutionReport::of_cost((cfg.int(0) - 37).abs() as f64)
//! });
//! assert!(result.best_report.cost <= 5.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ea;
pub mod hill;
pub mod objective;

pub use ea::{EvolutionaryTuner, TunerOptions, TuningResult};
pub use hill::HillClimber;
pub use objective::Objective;
