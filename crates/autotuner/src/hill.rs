//! Hill-climbing baseline searcher.
//!
//! Used by the ablation benches to show that the EA's population diversity
//! matters on rugged algorithmic-choice landscapes; it is *not* part of the
//! two-level pipeline itself.

use crate::ea::TuningResult;
use crate::objective::Objective;
use intune_core::{ConfigSpace, Configuration, ExecutionReport};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// First-improvement stochastic hill climber with restart on stagnation.
#[derive(Debug, Clone, Copy)]
pub struct HillClimber {
    /// Total evaluation budget.
    pub budget: usize,
    /// Per-gene mutation rate of each proposal.
    pub mutation_rate: f64,
    /// Restart from a random point after this many rejected proposals.
    pub patience: usize,
    /// RNG seed.
    pub seed: u64,
}

impl HillClimber {
    /// A climber with the same evaluation budget as a quick EA run.
    pub fn with_budget(budget: usize, seed: u64) -> Self {
        HillClimber {
            budget,
            mutation_rate: 0.3,
            patience: 40,
            seed,
        }
    }

    /// Runs the climb.
    ///
    /// # Panics
    /// Panics if the space is empty or the budget is zero.
    pub fn tune<F>(&self, space: &ConfigSpace, objective: Objective, mut eval: F) -> TuningResult
    where
        F: FnMut(&Configuration) -> ExecutionReport,
    {
        assert!(!space.is_empty(), "cannot tune an empty space");
        assert!(self.budget > 0, "budget must be positive");
        let mut rng = StdRng::seed_from_u64(self.seed);

        let mut current = space.default_config();
        let mut current_report = eval(&current);
        let mut best = current.clone();
        let mut best_report = current_report;
        let mut evaluations = 1usize;
        let mut stale = 0usize;
        let mut history = vec![best_report.cost];

        while evaluations < self.budget {
            let proposal = if stale >= self.patience {
                stale = 0;
                current = space.random(&mut rng);
                current_report = eval(&current);
                evaluations += 1;
                if objective.better(&current_report, &best_report) {
                    best = current.clone();
                    best_report = current_report;
                }
                history.push(best_report.cost);
                continue;
            } else {
                space.mutate(&current, self.mutation_rate, &mut rng)
            };
            let report = eval(&proposal);
            evaluations += 1;
            if objective.better(&report, &current_report) {
                current = proposal;
                current_report = report;
                stale = 0;
                if objective.better(&current_report, &best_report) {
                    best = current.clone();
                    best_report = current_report;
                }
            } else {
                stale += 1;
            }
            history.push(best_report.cost);
        }

        TuningResult {
            best,
            best_report,
            history,
            evaluations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn climbs_to_optimum_on_smooth_landscape() {
        let space = ConfigSpace::builder().int("x", -500, 500).build();
        let hc = HillClimber::with_budget(600, 5);
        let result = hc.tune(&space, Objective::cost_only(), |cfg| {
            ExecutionReport::of_cost((cfg.int(0) as f64 - 42.0).abs())
        });
        assert!(
            result.best_report.cost < 20.0,
            "cost {}",
            result.best_report.cost
        );
        assert_eq!(result.evaluations, 600);
    }

    #[test]
    fn history_monotone_for_best_so_far() {
        let space = ConfigSpace::builder().int("x", 0, 1000).build();
        let hc = HillClimber::with_budget(200, 1);
        let result = hc.tune(&space, Objective::cost_only(), |cfg| {
            ExecutionReport::of_cost(cfg.int(0) as f64)
        });
        for w in result.history.windows(2) {
            assert!(w[1] <= w[0] + 1e-12);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let space = ConfigSpace::builder()
            .int("x", 0, 100)
            .switch("s", 4)
            .build();
        let run = || {
            HillClimber::with_budget(150, 3).tune(&space, Objective::cost_only(), |cfg| {
                ExecutionReport::of_cost(cfg.int(0) as f64 + cfg.choice(1) as f64)
            })
        };
        assert_eq!(run().best, run().best);
    }
}
