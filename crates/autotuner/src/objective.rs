//! The two-dimensional autotuning objective: accuracy first, cost second.
//!
//! PetaBricks variable-accuracy autotuning optimizes "a two dimensional
//! objective space, where its first objective is to meet the accuracy target
//! … and the second objective is to maximize performance". [`Objective`]
//! encodes that lexicographic comparison between [`ExecutionReport`]s.

use intune_core::ExecutionReport;
use std::cmp::Ordering;

/// Comparison policy for execution reports during search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Objective {
    accuracy_target: Option<f64>,
}

impl Objective {
    /// Pure cost minimization (fixed-accuracy programs such as sort).
    pub fn cost_only() -> Self {
        Objective {
            accuracy_target: None,
        }
    }

    /// Meet `target` accuracy first, then minimize cost.
    pub fn with_accuracy_target(target: f64) -> Self {
        Objective {
            accuracy_target: Some(target),
        }
    }

    /// The accuracy target, if any.
    pub fn accuracy_target(&self) -> Option<f64> {
        self.accuracy_target
    }

    /// Whether a report meets the accuracy target (trivially true when no
    /// target is set).
    pub fn feasible(&self, report: &ExecutionReport) -> bool {
        report.meets(self.accuracy_target)
    }

    /// Total (lexicographic) ordering: feasible beats infeasible; among
    /// feasible, lower cost is better; among infeasible, higher accuracy is
    /// better (cost as tie-break). `Ordering::Less` means `a` is better.
    pub fn compare(&self, a: &ExecutionReport, b: &ExecutionReport) -> Ordering {
        match (self.feasible(a), self.feasible(b)) {
            (true, false) => Ordering::Less,
            (false, true) => Ordering::Greater,
            (true, true) => a.cost.partial_cmp(&b.cost).unwrap_or(Ordering::Equal),
            (false, false) => {
                let aa = a.accuracy.unwrap_or(f64::NEG_INFINITY);
                let ba = b.accuracy.unwrap_or(f64::NEG_INFINITY);
                ba.partial_cmp(&aa)
                    .unwrap_or(Ordering::Equal)
                    .then(a.cost.partial_cmp(&b.cost).unwrap_or(Ordering::Equal))
            }
        }
    }

    /// Whether `a` is strictly better than `b`.
    pub fn better(&self, a: &ExecutionReport, b: &ExecutionReport) -> bool {
        self.compare(a, b) == Ordering::Less
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_only_prefers_cheaper() {
        let o = Objective::cost_only();
        let fast = ExecutionReport::of_cost(1.0);
        let slow = ExecutionReport::of_cost(2.0);
        assert!(o.better(&fast, &slow));
        assert!(!o.better(&slow, &fast));
        assert_eq!(o.compare(&fast, &fast), Ordering::Equal);
    }

    #[test]
    fn feasibility_dominates_cost() {
        let o = Objective::with_accuracy_target(0.9);
        let accurate_slow = ExecutionReport::with_accuracy(100.0, 0.95);
        let sloppy_fast = ExecutionReport::with_accuracy(1.0, 0.5);
        assert!(o.better(&accurate_slow, &sloppy_fast));
    }

    #[test]
    fn among_feasible_cheaper_wins() {
        let o = Objective::with_accuracy_target(0.9);
        let a = ExecutionReport::with_accuracy(10.0, 0.92);
        let b = ExecutionReport::with_accuracy(20.0, 0.99);
        assert!(o.better(&a, &b));
    }

    #[test]
    fn among_infeasible_higher_accuracy_wins() {
        let o = Objective::with_accuracy_target(0.9);
        let closer = ExecutionReport::with_accuracy(50.0, 0.8);
        let farther = ExecutionReport::with_accuracy(1.0, 0.2);
        assert!(o.better(&closer, &farther));
    }

    #[test]
    fn missing_accuracy_is_infeasible_under_target() {
        let o = Objective::with_accuracy_target(0.5);
        let no_acc = ExecutionReport::of_cost(1.0);
        assert!(!o.feasible(&no_acc));
        let with_acc = ExecutionReport::with_accuracy(99.0, 0.6);
        assert!(o.better(&with_acc, &no_acc));
    }
}
