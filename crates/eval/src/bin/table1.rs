//! Regenerates **Table 1**: mean speedup over the static oracle for the
//! dynamic oracle, the two-level method (with/without feature-extraction
//! time) and the one-level method (with/without), plus the one-level
//! accuracy column — for all eight tests. Also prints the §4.2 second-level
//! relabeling statistic and the production classifier chosen per test.

use intune_eval::csvout::{speedup, write_csv};
use intune_eval::{run_case_full, Args, TestCase};
use intune_exec::Engine;

fn main() {
    let args = Args::parse();
    let cfg = args.config();
    let mut run = args.run_options();
    // `--daemon ADDR`: the two-level column is scored against a running
    // selection daemon instead of the in-process classifier (and must
    // come out byte-identical — CI diffs the two CSVs).
    if let Some(client) = args.connect_daemon().expect("cannot reach the daemon") {
        let info = client.info();
        eprintln!(
            "remote selection: {} at {} (benchmark `{}`, revision {}, \
             artifact schema v{})",
            info.server,
            args.daemon.as_deref().unwrap_or_default(),
            info.benchmark,
            info.revision,
            info.artifact_version
        );
        run.selector = Some(std::sync::Arc::new(client));
    }
    // One measurement engine serves all eight cases; its counters report
    // how much the memoized cost cache and plan deduplication saved.
    let engine = Engine::from_env_or_exit();

    println!(
        "{:<12} {:>9} {:>10} {:>10} {:>10} {:>10} {:>8} {:>8} {:>8} {:>9}  production classifier",
        "benchmark",
        "dyn-orc",
        "2lvl",
        "2lvl+fx",
        "1lvl",
        "1lvl+fx",
        "1lvl-acc",
        "2lvl-acc",
        "dyn-acc",
        "relabel%"
    );

    let mut rows: Vec<Vec<String>> = vec![vec![
        "benchmark".into(),
        "dynamic_oracle".into(),
        "two_level".into(),
        "two_level_fx".into(),
        "one_level".into(),
        "one_level_fx".into(),
        "one_level_accuracy_pct".into(),
        "two_level_accuracy_pct".into(),
        "relabel_fraction".into(),
        "production_classifier".into(),
    ]];

    let mut training = None;
    for case in TestCase::all() {
        if let Some(only) = &args.only {
            if !case.name().contains(only.as_str()) {
                continue;
            }
        }
        let outcome = run_case_full(case, &cfg, &engine, &run).expect("suite case failed");
        training = Some(outcome.stats);
        let r = &outcome.row;
        println!(
            "{:<12} {:>9} {:>10} {:>10} {:>10} {:>10} {:>7.1}% {:>7.1}% {:>7.1}% {:>8.1}%  {}",
            r.name,
            speedup(r.dynamic_oracle),
            speedup(r.two_level),
            speedup(r.two_level_fx),
            speedup(r.one_level),
            speedup(r.one_level_fx),
            r.one_level_accuracy_pct,
            r.two_level_accuracy_pct,
            r.dynamic_accuracy_pct,
            100.0 * r.relabel_fraction,
            r.production_classifier,
        );
        rows.push(vec![
            r.name.clone(),
            format!("{:.4}", r.dynamic_oracle),
            format!("{:.4}", r.two_level),
            format!("{:.4}", r.two_level_fx),
            format!("{:.4}", r.one_level),
            format!("{:.4}", r.one_level_fx),
            format!("{:.2}", r.one_level_accuracy_pct),
            format!("{:.2}", r.two_level_accuracy_pct),
            format!("{:.4}", r.relabel_fraction),
            r.production_classifier.clone(),
        ]);
    }

    let path = write_csv(&args.out_dir, "table1.csv", &rows);
    println!("\nwrote {path}");
    if let Some(s) = training {
        println!(
            "training cost per test (§4.2): {} tuner evaluations + {} \
             matrix cells requested, {} fresh runs after memoization \
             ({} cache hits, {:.1}% hit rate); an exhaustive per-input \
             search would cost ~{:.0}x more tuner work (paper: 'over 200 \
             times longer')",
            s.tuner_evaluations,
            s.measurement_runs,
            s.measured_runs,
            s.cache_hits,
            100.0 * s.cache_hit_rate(),
            s.exhaustive_ratio()
        );
    }
    println!(
        "measurement engine ({} worker threads, all cases): {}",
        engine.threads(),
        engine.stats()
    );
}
