//! §3.1 ablation: K-means landmark selection vs uniformly random
//! representatives. The paper reports that with 5 configurations, random
//! selection degrades performance by ~41 %, with the gap shrinking as the
//! number of landmarks grows.

use intune_autotuner::TunerOptions;
use intune_eval::csvout::write_csv;
use intune_eval::Args;
use intune_exec::Engine;
use intune_learning::labels::label_inputs;
use intune_learning::level1::{run_level1, LandmarkStrategy, Level1Options};
use intune_learning::oracles::static_oracle;
use intune_sortlib::{PolySort, SortCorpus};

fn oracle_speedup(perf: &intune_learning::PerfMatrix, threshold: Option<f64>) -> f64 {
    let static_lm = static_oracle(perf, threshold, 0.95);
    let labels = label_inputs(perf, threshold);
    let n = perf.num_inputs();
    (0..n)
        .map(|i| perf.cost(static_lm, i) / perf.cost(labels[i], i).max(1e-300))
        .sum::<f64>()
        / n as f64
}

fn main() {
    let args = Args::parse();
    args.reject_daemon("ablation_landmarks");
    let cfg = args.config();

    let b = PolySort::new(cfg.sort_n.1);
    let corpus = SortCorpus::synthetic(cfg.train, cfg.sort_n.0, cfg.sort_n.1, cfg.seed ^ 0xab);

    println!(
        "{:<6} {:>12} {:>12} {:>14}",
        "K", "kmeans", "random", "degradation%"
    );
    let mut rows: Vec<Vec<String>> = vec![vec![
        "landmarks".into(),
        "kmeans_speedup".into(),
        "random_speedup".into(),
        "degradation_pct".into(),
    ]];

    let ks: &[usize] = if args.paper {
        &[2, 5, 10, 20, 40, 70, 100]
    } else {
        &[2, 5, 8, 12]
    };
    let engine = Engine::from_env_or_exit();
    for &k in ks {
        let mut speedups = [0.0f64; 2];
        for (slot, strategy) in [
            LandmarkStrategy::KMeansMedoids,
            LandmarkStrategy::UniformRandom,
        ]
        .iter()
        .enumerate()
        {
            let opts = Level1Options {
                clusters: k,
                tuner: TunerOptions {
                    population: cfg.ea_population,
                    generations: cfg.ea_generations,
                    ..TunerOptions::quick(cfg.seed)
                },
                strategy: *strategy,
                seed: cfg.seed,
            };
            let r = run_level1(&b, &corpus.inputs, &opts, &engine).expect("level 1 failed");
            speedups[slot] = oracle_speedup(&r.perf, None);
        }
        let degradation = 100.0 * (speedups[0] - speedups[1]) / speedups[0].max(1e-300);
        println!(
            "{:<6} {:>12.3} {:>12.3} {:>13.1}%",
            k, speedups[0], speedups[1], degradation
        );
        rows.push(vec![
            k.to_string(),
            format!("{:.6}", speedups[0]),
            format!("{:.6}", speedups[1]),
            format!("{degradation:.2}"),
        ]);
    }

    let path = write_csv(&args.out_dir, "ablation_landmarks.csv", &rows);
    println!("\nwrote {path}");
    println!(
        "Expected shape (paper §3.1): random selection is markedly worse at \
         small K (~41% at K=5) and the gap shrinks as K grows."
    );
}
