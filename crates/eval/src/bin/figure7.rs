//! Regenerates **Figure 7**: the analytic diminishing-returns model.
//!
//! (a) Predicted lost speedup `L(p, k) = p(1 − p)^k` contributed by input
//!     regions of size `p`, for k = 2…9 landmarks.
//! (b) Predicted fraction of the full speedup retained at the worst-case
//!     region size `p* = 1/(k+1)`, for k = 1…100 landmarks.

use intune_eval::csvout::write_csv;
use intune_eval::model::{lost_speedup, worst_case_fraction, worst_case_region};
use intune_eval::Args;

fn main() {
    let args = Args::parse();
    args.reject_daemon("figure7");

    // (a) L(p) curves.
    let mut rows_a: Vec<Vec<String>> = Vec::new();
    let mut header = vec!["p".to_string()];
    header.extend((2..=9).map(|k| format!("k{k}")));
    rows_a.push(header);
    println!("Figure 7a: lost speedup vs region size (k = 2..9)");
    for step in 0..=100 {
        let p = step as f64 / 100.0;
        let mut row = vec![format!("{p:.2}")];
        for k in 2..=9 {
            row.push(format!("{:.6}", lost_speedup(p, k)));
        }
        rows_a.push(row);
    }
    for k in [2usize, 5, 9] {
        let p_star = worst_case_region(k);
        println!(
            "  k={k}: worst-case region p*={:.3}, max loss {:.4}",
            p_star,
            lost_speedup(p_star, k)
        );
    }
    let path_a = write_csv(&args.out_dir, "figure7a.csv", &rows_a);
    println!("  wrote {path_a}");

    // (b) Fraction of full speedup vs landmark count.
    let mut rows_b: Vec<Vec<String>> =
        vec![vec!["landmarks".into(), "fraction_of_full_speedup".into()]];
    println!("\nFigure 7b: fraction of full speedup vs landmarks (worst-case region)");
    for k in 1..=100usize {
        let f = worst_case_fraction(k);
        rows_b.push(vec![k.to_string(), format!("{f:.6}")]);
        if [1, 2, 5, 10, 20, 30, 50, 100].contains(&k) {
            let bar: String = std::iter::repeat_n('#', (f * 50.0).round() as usize).collect();
            println!("  k={k:<4} {f:.4} |{bar}");
        }
    }
    let path_b = write_csv(&args.out_dir, "figure7b.csv", &rows_b);
    println!("  wrote {path_b}");

    println!(
        "\nShape check: 10–30 landmarks already retain {:.1}%–{:.1}% of the \
         full speedup — the paper's 'a little adaptation goes a long way'.",
        100.0 * worst_case_fraction(10),
        100.0 * worst_case_fraction(30)
    );
}
