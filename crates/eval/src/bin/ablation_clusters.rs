//! §4.2 ablation: sensitivity to the number of first-level clusters K
//! (the paper uses 100 and discusses the choice's sensitivity; Figure 8
//! covers the landmark-count dimension, this sweep covers the full
//! two-level pipeline including classifier training).

use intune_autotuner::TunerOptions;
use intune_eval::csvout::write_csv;
use intune_eval::{Args, SuiteConfig};
use intune_exec::Engine;
use intune_learning::pipeline::{evaluate, learn};
use intune_learning::selection::SelectionOptions;
use intune_learning::{Level1Options, TwoLevelOptions};
use intune_ml::TreeOptions;
use intune_sortlib::{PolySort, SortCorpus};

fn options(cfg: &SuiteConfig, clusters: usize) -> TwoLevelOptions {
    TwoLevelOptions {
        level1: Level1Options {
            clusters,
            tuner: TunerOptions {
                population: cfg.ea_population,
                generations: cfg.ea_generations,
                ..TunerOptions::quick(cfg.seed)
            },
            seed: cfg.seed,
            ..Level1Options::default()
        },
        lambda: cfg.lambda,
        selection: SelectionOptions {
            folds: cfg.folds,
            tree: TreeOptions {
                max_depth: 10,
                max_thresholds: 24,
                ..TreeOptions::default()
            },
            seed: cfg.seed,
            ..SelectionOptions::default()
        },
        selection_fraction: 0.3,
    }
}

fn main() {
    let args = Args::parse();
    args.reject_daemon("ablation_clusters");
    let cfg = args.config();

    let b = PolySort::new(cfg.sort_n.1);
    let train = SortCorpus::synthetic(cfg.train, cfg.sort_n.0, cfg.sort_n.1, cfg.seed ^ 0x61);
    let test = SortCorpus::synthetic(cfg.test, cfg.sort_n.0, cfg.sort_n.1, cfg.seed ^ 0x62);

    println!(
        "{:<6} {:>12} {:>12} {:>10}",
        "K", "2lvl+fx", "dyn-oracle", "relabel%"
    );
    let mut rows: Vec<Vec<String>> = vec![vec![
        "clusters".into(),
        "two_level_fx_speedup".into(),
        "dynamic_oracle_speedup".into(),
        "relabel_pct".into(),
    ]];

    let ks: &[usize] = if args.paper {
        &[2, 5, 10, 20, 50, 100]
    } else {
        &[2, 4, 6, 10]
    };
    let engine = Engine::from_env_or_exit();
    for &k in ks {
        let result = learn(&b, &train.inputs, &options(&cfg, k), &engine).expect("learning failed");
        let row = evaluate(&b, &result, &test.inputs, &engine).expect("evaluation failed");
        println!(
            "{:<6} {:>11.3}x {:>11.3}x {:>9.1}%",
            k,
            row.two_level_fx,
            row.dynamic_oracle,
            100.0 * row.relabel_fraction
        );
        rows.push(vec![
            k.to_string(),
            format!("{:.6}", row.two_level_fx),
            format!("{:.6}", row.dynamic_oracle),
            format!("{:.2}", 100.0 * row.relabel_fraction),
        ]);
    }

    let path = write_csv(&args.out_dir, "ablation_clusters.csv", &rows);
    println!("\nwrote {path}");
    println!("Expected shape: speedup grows with K then plateaus (diminishing returns, cf. Figure 7b/8).");
}
