//! §3.2 ablation: sweep the cost-matrix accuracy weight λ from 0.001 to 1.
//! The paper tried this range and settled on λ = 0.5.

use intune_autotuner::TunerOptions;
use intune_clusterlib::{ClusterCorpus, Clustering};
use intune_eval::csvout::write_csv;
use intune_eval::{Args, SuiteConfig};
use intune_exec::Engine;
use intune_learning::pipeline::{evaluate, learn};
use intune_learning::selection::SelectionOptions;
use intune_learning::{Level1Options, TwoLevelOptions};
use intune_ml::TreeOptions;

fn options(cfg: &SuiteConfig, lambda: f64) -> TwoLevelOptions {
    TwoLevelOptions {
        level1: Level1Options {
            clusters: cfg.clusters,
            tuner: TunerOptions {
                population: cfg.ea_population,
                generations: cfg.ea_generations,
                ..TunerOptions::quick(cfg.seed)
            },
            seed: cfg.seed,
            ..Level1Options::default()
        },
        lambda,
        selection: SelectionOptions {
            folds: cfg.folds,
            tree: TreeOptions {
                max_depth: 10,
                max_thresholds: 24,
                ..TreeOptions::default()
            },
            seed: cfg.seed,
            ..SelectionOptions::default()
        },
        selection_fraction: 0.3,
    }
}

fn main() {
    let args = Args::parse();
    args.reject_daemon("ablation_lambda");
    let cfg = args.config();

    // Clustering is the most accuracy-stressed benchmark: use it for the sweep.
    let b = Clustering::new();
    let train =
        ClusterCorpus::synthetic(cfg.train, cfg.cluster_n.0, cfg.cluster_n.1, cfg.seed ^ 0x51);
    let test =
        ClusterCorpus::synthetic(cfg.test, cfg.cluster_n.0, cfg.cluster_n.1, cfg.seed ^ 0x52);

    println!(
        "{:<8} {:>12} {:>12} {:>10}",
        "lambda", "2lvl+fx", "accuracy%", "classifier"
    );
    let mut rows: Vec<Vec<String>> = vec![vec![
        "lambda".into(),
        "two_level_fx_speedup".into(),
        "two_level_accuracy_pct".into(),
        "production_classifier".into(),
    ]];

    let engine = Engine::from_env_or_exit();
    for lambda in [0.001, 0.01, 0.1, 0.3, 0.5, 0.7, 1.0] {
        let result =
            learn(&b, &train.inputs, &options(&cfg, lambda), &engine).expect("learning failed");
        let row = evaluate(&b, &result, &test.inputs, &engine).expect("evaluation failed");
        println!(
            "{:<8} {:>11.3}x {:>11.1}% {:>10}",
            lambda, row.two_level_fx, row.two_level_accuracy_pct, row.production_classifier
        );
        rows.push(vec![
            lambda.to_string(),
            format!("{:.6}", row.two_level_fx),
            format!("{:.2}", row.two_level_accuracy_pct),
            row.production_classifier,
        ]);
    }

    let path = write_csv(&args.out_dir, "ablation_lambda.csv", &rows);
    println!("\nwrote {path}");
    println!("Expected shape (paper §3.2): mid-range λ (≈0.5) balances accuracy and speed best.");
}
