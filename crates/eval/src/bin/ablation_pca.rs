//! §1 ablation: "Standard unsupervised feature selection (e.g., PCA) does
//! not solve the [mapping disparity] problem."
//!
//! Compares three ways of choosing a landmark for an input:
//!   1. one-level: nearest centroid in the full normalized feature space;
//!   2. one-level + PCA: nearest centroid in a PCA-reduced space
//!      (unsupervised feature selection);
//!   3. two-level: the performance-relabeled production classifier.
//!
//! PCA re-weights directions by input-feature variance — which has nothing
//! to do with how configurations *perform* on the inputs — so variant 2
//! should track variant 1, while the two-level method pulls ahead.

use intune_autotuner::TunerOptions;
use intune_core::Benchmark;
use intune_eval::csvout::write_csv;
use intune_eval::{Args, SuiteConfig};
use intune_exec::Engine;
use intune_learning::labels::label_inputs;
use intune_learning::level1::{measure, run_level1, Level1Options};
use intune_learning::oracles::static_oracle;
use intune_learning::pipeline::{evaluate, learn};
use intune_ml::{KMeans, KMeansOptions, Pca};
use intune_sortlib::{PolySort, SortCorpus};

fn main() {
    let args = Args::parse();
    args.reject_daemon("ablation_pca");
    let cfg: SuiteConfig = args.config();

    let b = PolySort::new(cfg.sort_n.1);
    let train = SortCorpus::synthetic(cfg.train, cfg.sort_n.0, cfg.sort_n.1, cfg.seed ^ 0x71);
    let test = SortCorpus::synthetic(cfg.test, cfg.sort_n.0, cfg.sort_n.1, cfg.seed ^ 0x72);

    // Shared Level-1 artifacts.
    let l1_opts = Level1Options {
        clusters: cfg.clusters,
        tuner: TunerOptions {
            population: cfg.ea_population,
            generations: cfg.ea_generations,
            ..TunerOptions::quick(cfg.seed)
        },
        seed: cfg.seed,
        ..Level1Options::default()
    };
    let engine = Engine::from_env_or_exit();
    let l1 = run_level1(&b, &train.inputs, &l1_opts, &engine).expect("level 1 failed");
    let perf_test =
        measure(&b, &l1.landmarks, &test.inputs, &engine).expect("test measurement failed");
    let static_lm = static_oracle(&l1.perf, None, 0.95);

    let features_test: Vec<Vec<f64>> = test
        .inputs
        .iter()
        .map(|i| b.extract_all(i).dense())
        .collect();
    let normalized_train: Vec<Vec<f64>> = l1
        .features
        .iter()
        .map(|f| l1.normalizer.transform(&f.dense()))
        .collect();

    let mean_speedup = |assign: &dyn Fn(usize) -> usize| -> f64 {
        (0..test.inputs.len())
            .map(|i| perf_test.cost(static_lm, i) / perf_test.cost(assign(i), i).max(1e-300))
            .sum::<f64>()
            / test.inputs.len() as f64
    };

    // 1) Plain one-level.
    let centroids = l1.centroids.clone();
    let nearest = |z: &[f64], cents: &[Vec<f64>]| -> usize {
        cents
            .iter()
            .enumerate()
            .min_by(|a, b| {
                let da: f64 = a.1.iter().zip(z).map(|(x, y)| (x - y) * (x - y)).sum();
                let db: f64 = b.1.iter().zip(z).map(|(x, y)| (x - y) * (x - y)).sum();
                da.partial_cmp(&db).unwrap()
            })
            .map(|(c, _)| c)
            .unwrap()
    };
    let one_level =
        mean_speedup(&|i| nearest(&l1.normalizer.transform(&features_test[i]), &centroids));

    // 2) One-level over a PCA-reduced space: re-cluster the training inputs
    //    in the top-3-component space, autotune is shared (reuse the
    //    nearest landmark by mapping PCA cluster -> majority landmark label).
    let pca = Pca::fit(&normalized_train, 3.min(normalized_train[0].len()));
    let reduced_train = pca.transform_all(&normalized_train);
    let km = KMeans::fit(
        &reduced_train,
        KMeansOptions {
            k: cfg.clusters,
            seed: cfg.seed,
            ..KMeansOptions::default()
        },
    );
    // Map each PCA-space cluster to the landmark that is best on average
    // for its members (the one-level analogue in the reduced space).
    let labels_perf = label_inputs(&l1.perf, None);
    let mut cluster_landmark = vec![0usize; cfg.clusters];
    for (c, slot) in cluster_landmark.iter_mut().enumerate() {
        let mut votes = vec![0usize; l1.landmarks.len()];
        for (i, &cl) in km.labels().iter().enumerate() {
            if cl == c {
                votes[labels_perf[i]] += 1;
            }
        }
        *slot = votes
            .iter()
            .enumerate()
            .max_by_key(|(_, v)| **v)
            .map(|(l, _)| l)
            .unwrap_or(0);
    }
    let pca_one_level = mean_speedup(&|i| {
        let z = pca.transform(&l1.normalizer.transform(&features_test[i]));
        cluster_landmark[km.predict(&z)]
    });

    // 3) Two-level.
    let result = learn(
        &b,
        &train.inputs,
        &intune_learning::TwoLevelOptions {
            level1: l1_opts.clone(),
            ..Default::default()
        },
        &engine,
    )
    .expect("two-level learning failed");
    let row = evaluate(&b, &result, &test.inputs, &engine).expect("evaluation failed");

    println!("speedup over static oracle (sort2, no extraction cost):");
    println!("  one-level (full feature space) : {one_level:.3}x");
    println!("  one-level + PCA(3)             : {pca_one_level:.3}x");
    println!("  two-level                      : {:.3}x", row.two_level);
    println!(
        "\nExpected shape (paper §1): PCA stays in the one-level regime; the \
         performance-based second level is what closes the gap."
    );

    let rows = vec![
        vec!["method".to_string(), "speedup".to_string()],
        vec!["one_level".into(), format!("{one_level:.6}")],
        vec!["one_level_pca3".into(), format!("{pca_one_level:.6}")],
        vec!["two_level".into(), format!("{:.6}", row.two_level)],
    ];
    let path = write_csv(&args.out_dir, "ablation_pca.csv", &rows);
    println!("wrote {path}");
}
