//! Prints the log₁₀ configuration-space size of every benchmark (the paper
//! quotes 10³¹² to 10¹⁰¹⁶ for the PetaBricks originals; ours are smaller in
//! absolute terms — fewer choice sites — but structurally analogous, and the
//! `--paper` flag deepens the sort selector to show how the count scales).

use intune_binpacklib::BinPacking;
use intune_clusterlib::Clustering;
use intune_core::Benchmark;
use intune_eval::Args;
use intune_pde::{Helmholtz3d, Poisson2d};
use intune_sortlib::PolySort;
use intune_svdlib::SvdBench;

fn line(name: &str, log10: f64, params: usize) {
    println!("{name:<14} 10^{log10:<10.1} ({params} genes)");
}

fn main() {
    let args = Args::parse();
    args.reject_daemon("space_size");
    let levels = if args.paper { 16 } else { 3 };

    println!("{:<14} {:<13} genes", "benchmark", "config space");
    let sort = PolySort::new(1 << 20).with_selector_levels(levels);
    line("sort", sort.space().log10_size(), sort.space().len());
    let clustering = Clustering::new();
    line(
        "clustering",
        clustering.space().log10_size(),
        clustering.space().len(),
    );
    let pack = BinPacking::new(1 << 16);
    line("binpacking", pack.space().log10_size(), pack.space().len());
    let svd = SvdBench::new();
    line("svd", svd.space().log10_size(), svd.space().len());
    let p2 = Poisson2d::new();
    line("poisson2d", p2.space().log10_size(), p2.space().len());
    let h3 = Helmholtz3d::new();
    line("helmholtz3d", h3.space().log10_size(), h3.space().len());

    println!(
        "\n(The PetaBricks originals reach 10^312..10^1016 because every\n\
         recursive either...or site contributes its own genes; pass --paper\n\
         to deepen the sort selector and watch the exponent scale.)"
    );
}
