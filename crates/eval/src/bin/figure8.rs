//! Regenerates **Figure 8**: measured speedup over the static oracle as the
//! number of landmark configurations varies, using random subsets of the
//! trained landmarks (the paper samples 1000 subsets of its 100 landmarks;
//! error bars show min, quartiles, median, max).
//!
//! As in the paper's setup, the per-subset speedup is the best-feasible
//! (dynamic-oracle) choice within the subset, measured against the global
//! static oracle — the quantity the theoretical model of Figure 7 predicts.

use intune_eval::csvout::write_csv;
use intune_eval::{run_case_with, Args, TestCase};
use intune_exec::Engine;
use intune_learning::pipeline::subset_oracle_speedup;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

fn quartiles(xs: &mut [f64]) -> (f64, f64, f64, f64, f64) {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let q = |f: f64| xs[((xs.len() - 1) as f64 * f) as usize];
    (q(0.0), q(0.25), q(0.5), q(0.75), q(1.0))
}

fn main() {
    let args = Args::parse();
    args.reject_daemon("figure8");
    let cfg = args.config();
    let subsets_per_size = if args.paper { 1000 } else { 200 };

    let engine = Engine::from_env_or_exit();
    for case in TestCase::all() {
        if let Some(only) = &args.only {
            if !case.name().contains(only.as_str()) {
                continue;
            }
        }
        let outcome = run_case_with(case, &cfg, &engine).expect("suite case failed");
        let perf = &outcome.perf_train;
        let k_total = perf.num_landmarks();
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xf18);

        println!("{} (of {} landmarks):", outcome.row.name, k_total);
        let mut rows: Vec<Vec<String>> = vec![vec![
            "landmarks".into(),
            "min".into(),
            "q1".into(),
            "median".into(),
            "q3".into(),
            "max".into(),
        ]];
        let sizes: Vec<usize> = (1..=k_total).collect();
        for k in sizes {
            let mut speedups = Vec::with_capacity(subsets_per_size);
            let all: Vec<usize> = (0..k_total).collect();
            for _ in 0..subsets_per_size {
                let mut pool = all.clone();
                pool.shuffle(&mut rng);
                let subset = &pool[..k];
                speedups.push(subset_oracle_speedup(
                    perf,
                    subset,
                    outcome.accuracy_threshold,
                    0.95,
                ));
            }
            let (min, q1, med, q3, max) = quartiles(&mut speedups);
            println!(
                "  k={k:<3} min={min:<8.3} q1={q1:<8.3} median={med:<8.3} q3={q3:<8.3} max={max:<8.3}"
            );
            rows.push(vec![
                k.to_string(),
                format!("{min:.6}"),
                format!("{q1:.6}"),
                format!("{med:.6}"),
                format!("{q3:.6}"),
                format!("{max:.6}"),
            ]);
        }
        let path = write_csv(
            &args.out_dir,
            &format!("figure8_{}.csv", outcome.row.name),
            &rows,
        );
        println!("  wrote {path}\n");
    }
}
