//! Regenerates **Figure 6**: the distribution of per-input speedups over
//! the static oracle (two-level method including feature-extraction time),
//! sorted ascending — the paper's point being the heavy right tail: a small
//! set of inputs enjoys very large speedups.

use intune_eval::csvout::write_csv;
use intune_eval::{run_case_with, Args, TestCase};
use intune_exec::Engine;

fn main() {
    let args = Args::parse();
    args.reject_daemon("figure6");
    let cfg = args.config();

    let engine = Engine::from_env_or_exit();
    for case in TestCase::all() {
        if let Some(only) = &args.only {
            if !case.name().contains(only.as_str()) {
                continue;
            }
        }
        let outcome = run_case_with(case, &cfg, &engine).expect("suite case failed");
        let sp = &outcome.row.per_input_speedups; // already ascending
        let n = sp.len();
        let q = |f: f64| sp[((n - 1) as f64 * f) as usize];
        println!(
            "{:<12} n={:<5} min={:<8.3} p25={:<8.3} median={:<8.3} p75={:<8.3} p90={:<8.3} max={:<8.3}",
            outcome.row.name,
            n,
            q(0.0),
            q(0.25),
            q(0.5),
            q(0.75),
            q(0.9),
            q(1.0)
        );
        // ASCII sparkline of the sorted distribution (paper plots the same).
        let buckets = 48.min(n);
        let glyphs = [' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'];
        let max = q(1.0).max(1e-9);
        let line: String = (0..buckets)
            .map(|b| {
                let v = sp[b * n / buckets] / max;
                glyphs[((v * (glyphs.len() - 1) as f64).round() as usize).min(glyphs.len() - 1)]
            })
            .collect();
        println!("             [{line}]");

        let mut rows: Vec<Vec<String>> =
            vec![vec!["rank".into(), "speedup_over_static_oracle".into()]];
        for (i, s) in sp.iter().enumerate() {
            rows.push(vec![i.to_string(), format!("{s:.6}")]);
        }
        let path = write_csv(
            &args.out_dir,
            &format!("figure6_{}.csv", outcome.row.name),
            &rows,
        );
        println!("             wrote {path}");
    }
}
