//! The unified suite runner for the paper's eight tests.

use intune_autotuner::TunerOptions;
use intune_binpacklib::{BinPacking, PackCorpus};
use intune_clusterlib::{ClusterCorpus, Clustering};
use intune_core::Benchmark;
use intune_exec::{Engine, EngineStats};
use intune_learning::pipeline::{evaluate, learn, EvaluationRow};
use intune_learning::selection::SelectionOptions;
use intune_learning::{Level1Options, PerfMatrix, TwoLevelOptions};
use intune_ml::TreeOptions;
use intune_pde::{Helmholtz3d, PdeCorpus2d, PdeCorpus3d, Poisson2d};
use intune_sortlib::{PolySort, SortCorpus};
use intune_svdlib::{SvdBench, SvdCorpus};

/// The eight tests of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TestCase {
    /// Sorting, CCR-FOIA-like real-world stand-in inputs.
    Sort1,
    /// Sorting, synthetic generator mix.
    Sort2,
    /// Clustering, Poker-Hand-like real-world stand-in inputs.
    Clustering1,
    /// Clustering, synthetic generator mix.
    Clustering2,
    /// Bin packing, synthetic mix.
    Binpacking,
    /// SVD low-rank approximation.
    Svd,
    /// Poisson 2D.
    Poisson2d,
    /// Helmholtz 3D.
    Helmholtz3d,
}

impl TestCase {
    /// All eight tests in Table-1 order.
    pub fn all() -> [TestCase; 8] {
        [
            TestCase::Sort1,
            TestCase::Sort2,
            TestCase::Clustering1,
            TestCase::Clustering2,
            TestCase::Binpacking,
            TestCase::Svd,
            TestCase::Poisson2d,
            TestCase::Helmholtz3d,
        ]
    }

    /// Table-1 row name.
    pub fn name(self) -> &'static str {
        match self {
            TestCase::Sort1 => "sort1",
            TestCase::Sort2 => "sort2",
            TestCase::Clustering1 => "clustering1",
            TestCase::Clustering2 => "clustering2",
            TestCase::Binpacking => "binpacking",
            TestCase::Svd => "svd",
            TestCase::Poisson2d => "poisson2d",
            TestCase::Helmholtz3d => "helmholtz3d",
        }
    }
}

/// Corpus sizes and learning budgets for a suite run.
#[derive(Debug, Clone)]
pub struct SuiteConfig {
    /// Training inputs per test.
    pub train: usize,
    /// Held-out test inputs per test.
    pub test: usize,
    /// Number of clusters / landmarks K.
    pub clusters: usize,
    /// EA population per landmark.
    pub ea_population: usize,
    /// EA generations per landmark.
    pub ea_generations: usize,
    /// Cross-validation folds.
    pub folds: usize,
    /// Cost-matrix λ.
    pub lambda: f64,
    /// Sort input length range.
    pub sort_n: (usize, usize),
    /// Clustering point-count range.
    pub cluster_n: (usize, usize),
    /// Bin-packing item-count range.
    pub pack_n: (usize, usize),
    /// SVD column-count range.
    pub svd_n: (usize, usize),
    /// Poisson grid sizes (must be 2^k − 1).
    pub pde2_sizes: Vec<usize>,
    /// Helmholtz grid sizes (must be 2^k − 1).
    pub pde3_sizes: Vec<usize>,
    /// Base seed.
    pub seed: u64,
}

impl SuiteConfig {
    /// CI-scale defaults: minutes, not hours.
    pub fn ci() -> Self {
        SuiteConfig {
            train: 96,
            test: 64,
            clusters: 8,
            ea_population: 12,
            ea_generations: 8,
            folds: 3,
            lambda: 0.5,
            sort_n: (256, 2048),
            cluster_n: (200, 700),
            pack_n: (200, 500),
            svd_n: (12, 18),
            pde2_sizes: vec![15],
            pde3_sizes: vec![7, 11],
            seed: 0,
        }
    }

    /// Paper-scale settings: K = 100 landmarks, thousands of inputs.
    pub fn paper_scale() -> Self {
        SuiteConfig {
            train: 1200,
            test: 800,
            clusters: 100,
            ea_population: 30,
            ea_generations: 30,
            folds: 10,
            lambda: 0.5,
            sort_n: (512, 16384),
            cluster_n: (300, 2000),
            pack_n: (400, 3000),
            svd_n: (16, 40),
            pde2_sizes: vec![15, 31, 63],
            pde3_sizes: vec![7, 15],
            seed: 0,
        }
    }

    fn two_level(&self, case_seed: u64) -> TwoLevelOptions {
        TwoLevelOptions {
            level1: Level1Options {
                clusters: self.clusters,
                tuner: TunerOptions {
                    population: self.ea_population,
                    generations: self.ea_generations,
                    ..TunerOptions::quick(self.seed ^ case_seed)
                },
                seed: self.seed ^ case_seed,
                ..Level1Options::default()
            },
            lambda: self.lambda,
            selection: SelectionOptions {
                folds: self.folds,
                tree: TreeOptions {
                    max_depth: 8,
                    min_leaf: 2,
                    max_thresholds: 24,
                    ..TreeOptions::default()
                },
                seed: self.seed ^ case_seed,
                ..SelectionOptions::default()
            },
            selection_fraction: 0.3,
        }
    }
}

/// The artifacts of one suite case, enough for Table 1 and Figures 6/8.
#[derive(Debug, Clone)]
pub struct CaseOutcome {
    /// Table-1 row (plus Figure-6 distribution).
    pub row: EvaluationRow,
    /// Landmark × training-input performance (Figure 8 resampling).
    pub perf_train: PerfMatrix,
    /// The benchmark's accuracy threshold H1, if any.
    pub accuracy_threshold: Option<f64>,
    /// `(name, objective, satisfaction, valid)` per candidate classifier.
    pub candidates: Vec<(String, f64, f64, bool)>,
    /// Training-cost accounting (§4.2: landmark autotuning dominates; an
    /// exhaustive per-input search costs `inputs/clusters` times more).
    pub stats: intune_learning::pipeline::TrainingStats,
    /// Measurement-engine counters for this case only (cells measured,
    /// cache hits, deduplication, steals). Everything except `steals` is
    /// deterministic for a given configuration.
    pub engine: EngineStats,
}

fn run_generic<B: Benchmark + Sync>(
    benchmark: &B,
    name: &str,
    train: &[B::Input],
    test: &[B::Input],
    cfg: &SuiteConfig,
    case_seed: u64,
    engine: &Engine,
) -> intune_core::Result<CaseOutcome>
where
    B::Input: Sync,
{
    let before = engine.stats();
    let opts = cfg.two_level(case_seed);
    let result = learn(benchmark, train, &opts, engine)?;
    let mut row = evaluate(benchmark, &result, test, engine)?;
    row.name = name.to_string();
    Ok(CaseOutcome {
        perf_train: result.level1.perf.clone(),
        accuracy_threshold: benchmark.accuracy().map(|a| a.threshold),
        candidates: result
            .candidates
            .iter()
            .zip(&result.scores)
            .map(|(c, s)| (c.name.clone(), s.objective, s.satisfaction, s.valid))
            .collect(),
        stats: result.stats,
        engine: engine.stats().since(&before),
        row,
    })
}

/// Runs one of the eight tests end to end on a fresh engine sized from
/// the `INTUNE_THREADS` environment (see [`run_case_with`] to share one
/// engine — and its counters — across cases).
///
/// # Panics
/// Panics if any measurement cell fails (use [`run_case_with`] for typed
/// errors).
pub fn run_case(case: TestCase, cfg: &SuiteConfig) -> CaseOutcome {
    run_case_with(case, cfg, &Engine::from_env()).expect("suite case failed")
}

/// Runs one of the eight tests end to end on the given engine. The engine
/// is reusable (and meant to be reused) across all eight cases; per-corpus
/// memoization state is created inside and scoped to each case.
///
/// # Errors
/// Returns [`intune_core::Error::Measurement`] if any benchmark cell fails.
pub fn run_case_with(
    case: TestCase,
    cfg: &SuiteConfig,
    engine: &Engine,
) -> intune_core::Result<CaseOutcome> {
    let seed = cfg.seed;
    match case {
        TestCase::Sort1 => {
            let b = PolySort::new(cfg.sort_n.1);
            let train = SortCorpus::ccr(cfg.train, cfg.sort_n.0, cfg.sort_n.1, seed ^ 0x01);
            let test = SortCorpus::ccr(cfg.test, cfg.sort_n.0, cfg.sort_n.1, seed ^ 0x02);
            run_generic(
                &b,
                case.name(),
                &train.inputs,
                &test.inputs,
                cfg,
                0x11,
                engine,
            )
        }
        TestCase::Sort2 => {
            let b = PolySort::new(cfg.sort_n.1);
            let train = SortCorpus::synthetic(cfg.train, cfg.sort_n.0, cfg.sort_n.1, seed ^ 0x03);
            let test = SortCorpus::synthetic(cfg.test, cfg.sort_n.0, cfg.sort_n.1, seed ^ 0x04);
            run_generic(
                &b,
                case.name(),
                &train.inputs,
                &test.inputs,
                cfg,
                0x12,
                engine,
            )
        }
        TestCase::Clustering1 => {
            let b = Clustering::new();
            let train =
                ClusterCorpus::poker(cfg.train, cfg.cluster_n.0, cfg.cluster_n.1, seed ^ 0x05);
            let test =
                ClusterCorpus::poker(cfg.test, cfg.cluster_n.0, cfg.cluster_n.1, seed ^ 0x06);
            run_generic(
                &b,
                case.name(),
                &train.inputs,
                &test.inputs,
                cfg,
                0x13,
                engine,
            )
        }
        TestCase::Clustering2 => {
            let b = Clustering::new();
            let train =
                ClusterCorpus::synthetic(cfg.train, cfg.cluster_n.0, cfg.cluster_n.1, seed ^ 0x07);
            let test =
                ClusterCorpus::synthetic(cfg.test, cfg.cluster_n.0, cfg.cluster_n.1, seed ^ 0x08);
            run_generic(
                &b,
                case.name(),
                &train.inputs,
                &test.inputs,
                cfg,
                0x14,
                engine,
            )
        }
        TestCase::Binpacking => {
            let b = BinPacking::new(cfg.pack_n.1);
            let train = PackCorpus::synthetic(cfg.train, cfg.pack_n.0, cfg.pack_n.1, seed ^ 0x09);
            let test = PackCorpus::synthetic(cfg.test, cfg.pack_n.0, cfg.pack_n.1, seed ^ 0x0a);
            run_generic(
                &b,
                case.name(),
                &train.inputs,
                &test.inputs,
                cfg,
                0x15,
                engine,
            )
        }
        TestCase::Svd => {
            let b = SvdBench::new();
            let train = SvdCorpus::synthetic(cfg.train, cfg.svd_n.0, cfg.svd_n.1, seed ^ 0x0b);
            let test = SvdCorpus::synthetic(cfg.test, cfg.svd_n.0, cfg.svd_n.1, seed ^ 0x0c);
            run_generic(
                &b,
                case.name(),
                &train.inputs,
                &test.inputs,
                cfg,
                0x16,
                engine,
            )
        }
        TestCase::Poisson2d => {
            let b = Poisson2d::new();
            let train = PdeCorpus2d::synthetic(cfg.train, &cfg.pde2_sizes, seed ^ 0x0d);
            let test = PdeCorpus2d::synthetic(cfg.test, &cfg.pde2_sizes, seed ^ 0x0e);
            run_generic(
                &b,
                case.name(),
                &train.inputs,
                &test.inputs,
                cfg,
                0x17,
                engine,
            )
        }
        TestCase::Helmholtz3d => {
            let b = Helmholtz3d::new();
            let train = PdeCorpus3d::synthetic(cfg.train, &cfg.pde3_sizes, seed ^ 0x0f);
            let test = PdeCorpus3d::synthetic(cfg.test, &cfg.pde3_sizes, seed ^ 0x10);
            run_generic(
                &b,
                case.name(),
                &train.inputs,
                &test.inputs,
                cfg,
                0x18,
                engine,
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SuiteConfig {
        SuiteConfig {
            train: 24,
            test: 16,
            clusters: 4,
            ea_population: 8,
            ea_generations: 4,
            folds: 2,
            sort_n: (64, 256),
            cluster_n: (60, 120),
            pack_n: (40, 120),
            svd_n: (8, 12),
            pde2_sizes: vec![7],
            pde3_sizes: vec![3],
            ..SuiteConfig::ci()
        }
    }

    #[test]
    fn names_are_unique() {
        let names: std::collections::HashSet<_> =
            TestCase::all().iter().map(|c| c.name()).collect();
        assert_eq!(names.len(), 8);
    }

    #[test]
    fn binpacking_case_runs_end_to_end() {
        let outcome = run_case(TestCase::Binpacking, &tiny());
        assert_eq!(outcome.row.name, "binpacking");
        assert_eq!(outcome.perf_train.num_landmarks(), 4);
        assert!(!outcome.candidates.is_empty());
        assert!(outcome.row.dynamic_oracle >= 1.0 - 1e-9);
        assert_eq!(outcome.row.per_input_speedups.len(), 16);
        assert_eq!(outcome.accuracy_threshold, Some(0.95));
    }

    #[test]
    fn sort2_case_runs_end_to_end() {
        let outcome = run_case(TestCase::Sort2, &tiny());
        assert_eq!(outcome.row.name, "sort2");
        // Sort is fixed-accuracy: both methods trivially satisfy.
        assert_eq!(outcome.accuracy_threshold, None);
        assert!(outcome.row.two_level_accuracy_pct >= 99.0);
        assert!(outcome.row.dynamic_oracle >= outcome.row.two_level - 1e-9);
    }

    #[test]
    fn shared_engine_accumulates_and_reports_cache_hits() {
        let engine = Engine::serial();
        let a = run_case_with(TestCase::Sort2, &tiny(), &engine).unwrap();
        // The landmark autotuner revisits configurations and the matrix
        // fill re-measures the tuner's winners: warm-cache hits are
        // structural, not incidental.
        assert!(
            a.engine.cache_hits > 0,
            "expected a warm cost cache, stats: {}",
            a.engine
        );
        assert!(a.engine.cells_measured > 0);

        let b = run_case_with(TestCase::Binpacking, &tiny(), &engine).unwrap();
        let total = engine.stats();
        assert_eq!(
            total.cells_measured,
            a.engine.cells_measured + b.engine.cells_measured,
            "one engine accumulates across cases"
        );
    }

    #[test]
    fn case_outcome_identical_at_one_and_four_workers() {
        let serial = run_case_with(TestCase::Sort2, &tiny(), &Engine::new(1)).unwrap();
        let pooled = run_case_with(TestCase::Sort2, &tiny(), &Engine::new(4)).unwrap();
        assert_eq!(
            serial.row.two_level.to_bits(),
            pooled.row.two_level.to_bits()
        );
        assert_eq!(
            serial.row.two_level_fx.to_bits(),
            pooled.row.two_level_fx.to_bits()
        );
        assert_eq!(
            serial.row.dynamic_oracle.to_bits(),
            pooled.row.dynamic_oracle.to_bits()
        );
        assert_eq!(serial.engine.cells_measured, pooled.engine.cells_measured);
        assert_eq!(serial.engine.cache_hits, pooled.engine.cache_hits);
    }
}
