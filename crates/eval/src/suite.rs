//! The unified suite runner for the paper's eight tests.

use intune_autotuner::TunerOptions;
use intune_binpacklib::{BinPacking, PackCorpus};
use intune_clusterlib::{ClusterCorpus, Clustering};
use intune_core::Benchmark;
use intune_exec::{CostCache, Engine, EngineStats};
use intune_learning::pipeline::{
    evaluate_with_backend, evaluate_with_cache, learn_with_cache, EvaluationRow, SelectionBackend,
    TwoLevelResult,
};
use intune_learning::selection::SelectionOptions;
use intune_learning::{Level1Options, PerfMatrix, TwoLevelOptions};
use intune_ml::TreeOptions;
use intune_pde::{Helmholtz3d, PdeCorpus2d, PdeCorpus3d, Poisson2d};
use intune_serve::ModelArtifact;
use intune_sortlib::{PolySort, SortCorpus};
use intune_svdlib::{SvdBench, SvdCorpus};
use std::path::{Path, PathBuf};

/// The eight tests of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TestCase {
    /// Sorting, CCR-FOIA-like real-world stand-in inputs.
    Sort1,
    /// Sorting, synthetic generator mix.
    Sort2,
    /// Clustering, Poker-Hand-like real-world stand-in inputs.
    Clustering1,
    /// Clustering, synthetic generator mix.
    Clustering2,
    /// Bin packing, synthetic mix.
    Binpacking,
    /// SVD low-rank approximation.
    Svd,
    /// Poisson 2D.
    Poisson2d,
    /// Helmholtz 3D.
    Helmholtz3d,
}

impl TestCase {
    /// All eight tests in Table-1 order.
    pub fn all() -> [TestCase; 8] {
        [
            TestCase::Sort1,
            TestCase::Sort2,
            TestCase::Clustering1,
            TestCase::Clustering2,
            TestCase::Binpacking,
            TestCase::Svd,
            TestCase::Poisson2d,
            TestCase::Helmholtz3d,
        ]
    }

    /// Table-1 row name.
    pub fn name(self) -> &'static str {
        match self {
            TestCase::Sort1 => "sort1",
            TestCase::Sort2 => "sort2",
            TestCase::Clustering1 => "clustering1",
            TestCase::Clustering2 => "clustering2",
            TestCase::Binpacking => "binpacking",
            TestCase::Svd => "svd",
            TestCase::Poisson2d => "poisson2d",
            TestCase::Helmholtz3d => "helmholtz3d",
        }
    }
}

/// Corpus sizes and learning budgets for a suite run.
#[derive(Debug, Clone)]
pub struct SuiteConfig {
    /// Training inputs per test.
    pub train: usize,
    /// Held-out test inputs per test.
    pub test: usize,
    /// Number of clusters / landmarks K.
    pub clusters: usize,
    /// EA population per landmark.
    pub ea_population: usize,
    /// EA generations per landmark.
    pub ea_generations: usize,
    /// Cross-validation folds.
    pub folds: usize,
    /// Cost-matrix λ.
    pub lambda: f64,
    /// Sort input length range.
    pub sort_n: (usize, usize),
    /// Clustering point-count range.
    pub cluster_n: (usize, usize),
    /// Bin-packing item-count range.
    pub pack_n: (usize, usize),
    /// SVD column-count range.
    pub svd_n: (usize, usize),
    /// Poisson grid sizes (must be 2^k − 1).
    pub pde2_sizes: Vec<usize>,
    /// Helmholtz grid sizes (must be 2^k − 1).
    pub pde3_sizes: Vec<usize>,
    /// Base seed.
    pub seed: u64,
}

impl SuiteConfig {
    /// CI-scale defaults: minutes, not hours.
    pub fn ci() -> Self {
        SuiteConfig {
            train: 96,
            test: 64,
            clusters: 8,
            ea_population: 12,
            ea_generations: 8,
            folds: 3,
            lambda: 0.5,
            sort_n: (256, 2048),
            cluster_n: (200, 700),
            pack_n: (200, 500),
            svd_n: (12, 18),
            pde2_sizes: vec![15],
            pde3_sizes: vec![7, 11],
            seed: 0,
        }
    }

    /// Paper-scale settings: K = 100 landmarks, thousands of inputs.
    pub fn paper_scale() -> Self {
        SuiteConfig {
            train: 1200,
            test: 800,
            clusters: 100,
            ea_population: 30,
            ea_generations: 30,
            folds: 10,
            lambda: 0.5,
            sort_n: (512, 16384),
            cluster_n: (300, 2000),
            pack_n: (400, 3000),
            svd_n: (16, 40),
            pde2_sizes: vec![15, 31, 63],
            pde3_sizes: vec![7, 15],
            seed: 0,
        }
    }

    fn two_level(&self, case_seed: u64) -> TwoLevelOptions {
        TwoLevelOptions {
            level1: Level1Options {
                clusters: self.clusters,
                tuner: TunerOptions {
                    population: self.ea_population,
                    generations: self.ea_generations,
                    ..TunerOptions::quick(self.seed ^ case_seed)
                },
                seed: self.seed ^ case_seed,
                ..Level1Options::default()
            },
            lambda: self.lambda,
            selection: SelectionOptions {
                folds: self.folds,
                tree: TreeOptions {
                    max_depth: 8,
                    min_leaf: 2,
                    max_thresholds: 24,
                    ..TreeOptions::default()
                },
                seed: self.seed ^ case_seed,
                ..SelectionOptions::default()
            },
            selection_fraction: 0.3,
        }
    }
}

/// The artifacts of one suite case, enough for Table 1 and Figures 6/8.
#[derive(Debug, Clone)]
pub struct CaseOutcome {
    /// Table-1 row (plus Figure-6 distribution).
    pub row: EvaluationRow,
    /// Landmark × training-input performance (Figure 8 resampling).
    pub perf_train: PerfMatrix,
    /// The benchmark's accuracy threshold H1, if any.
    pub accuracy_threshold: Option<f64>,
    /// `(name, objective, satisfaction, valid)` per candidate classifier.
    pub candidates: Vec<(String, f64, f64, bool)>,
    /// Training-cost accounting (§4.2: landmark autotuning dominates; an
    /// exhaustive per-input search costs `inputs/clusters` times more).
    pub stats: intune_learning::pipeline::TrainingStats,
    /// Measurement-engine counters for this case only (cells measured,
    /// cache hits, deduplication, steals). Everything except `steals` is
    /// deterministic for a given configuration.
    pub engine: EngineStats,
}

/// Typed access to one suite case: `visit_case` builds the benchmark and
/// its train/test corpora (whose input types differ per case) and hands
/// them to the visitor. This is how downstream layers — the serving
/// round-trip tests, `serve_bench`, the artifact-mode CLI — reach every
/// Table-1 case generically without `intune_eval` leaking eight concrete
/// input types.
pub trait CaseVisitor {
    /// What the visitor produces per case.
    type Output;

    /// Called once with the fully-built case. Inputs are `Clone` so
    /// visitors can assemble derived corpora (the continuous-learning
    /// retrainer merges base and journaled inputs); every suite input
    /// type is plain data.
    ///
    /// # Errors
    /// Implementations propagate measurement/artifact errors.
    fn visit<B: Benchmark + Sync>(
        &mut self,
        case: TestCase,
        benchmark: &B,
        train: &[B::Input],
        test: &[B::Input],
        opts: &TwoLevelOptions,
        engine: &Engine,
    ) -> intune_core::Result<Self::Output>
    where
        B::Input: Sync + Clone;
}

/// Builds one of the eight cases (benchmark + corpora + learning options)
/// and applies `visitor` to it.
///
/// # Errors
/// Propagates the visitor's error.
pub fn visit_case<V: CaseVisitor>(
    case: TestCase,
    cfg: &SuiteConfig,
    engine: &Engine,
    visitor: &mut V,
) -> intune_core::Result<V::Output> {
    let seed = cfg.seed;
    match case {
        TestCase::Sort1 => {
            let b = PolySort::new(cfg.sort_n.1);
            let train = SortCorpus::ccr(cfg.train, cfg.sort_n.0, cfg.sort_n.1, seed ^ 0x01);
            let test = SortCorpus::ccr(cfg.test, cfg.sort_n.0, cfg.sort_n.1, seed ^ 0x02);
            let opts = cfg.two_level(0x11);
            visitor.visit(case, &b, &train.inputs, &test.inputs, &opts, engine)
        }
        TestCase::Sort2 => {
            let b = PolySort::new(cfg.sort_n.1);
            let train = SortCorpus::synthetic(cfg.train, cfg.sort_n.0, cfg.sort_n.1, seed ^ 0x03);
            let test = SortCorpus::synthetic(cfg.test, cfg.sort_n.0, cfg.sort_n.1, seed ^ 0x04);
            let opts = cfg.two_level(0x12);
            visitor.visit(case, &b, &train.inputs, &test.inputs, &opts, engine)
        }
        TestCase::Clustering1 => {
            let b = Clustering::new();
            let train =
                ClusterCorpus::poker(cfg.train, cfg.cluster_n.0, cfg.cluster_n.1, seed ^ 0x05);
            let test =
                ClusterCorpus::poker(cfg.test, cfg.cluster_n.0, cfg.cluster_n.1, seed ^ 0x06);
            let opts = cfg.two_level(0x13);
            visitor.visit(case, &b, &train.inputs, &test.inputs, &opts, engine)
        }
        TestCase::Clustering2 => {
            let b = Clustering::new();
            let train =
                ClusterCorpus::synthetic(cfg.train, cfg.cluster_n.0, cfg.cluster_n.1, seed ^ 0x07);
            let test =
                ClusterCorpus::synthetic(cfg.test, cfg.cluster_n.0, cfg.cluster_n.1, seed ^ 0x08);
            let opts = cfg.two_level(0x14);
            visitor.visit(case, &b, &train.inputs, &test.inputs, &opts, engine)
        }
        TestCase::Binpacking => {
            let b = BinPacking::new(cfg.pack_n.1);
            let train = PackCorpus::synthetic(cfg.train, cfg.pack_n.0, cfg.pack_n.1, seed ^ 0x09);
            let test = PackCorpus::synthetic(cfg.test, cfg.pack_n.0, cfg.pack_n.1, seed ^ 0x0a);
            let opts = cfg.two_level(0x15);
            visitor.visit(case, &b, &train.inputs, &test.inputs, &opts, engine)
        }
        TestCase::Svd => {
            let b = SvdBench::new();
            let train = SvdCorpus::synthetic(cfg.train, cfg.svd_n.0, cfg.svd_n.1, seed ^ 0x0b);
            let test = SvdCorpus::synthetic(cfg.test, cfg.svd_n.0, cfg.svd_n.1, seed ^ 0x0c);
            let opts = cfg.two_level(0x16);
            visitor.visit(case, &b, &train.inputs, &test.inputs, &opts, engine)
        }
        TestCase::Poisson2d => {
            let b = Poisson2d::new();
            let train = PdeCorpus2d::synthetic(cfg.train, &cfg.pde2_sizes, seed ^ 0x0d);
            let test = PdeCorpus2d::synthetic(cfg.test, &cfg.pde2_sizes, seed ^ 0x0e);
            let opts = cfg.two_level(0x17);
            visitor.visit(case, &b, &train.inputs, &test.inputs, &opts, engine)
        }
        TestCase::Helmholtz3d => {
            let b = Helmholtz3d::new();
            let train = PdeCorpus3d::synthetic(cfg.train, &cfg.pde3_sizes, seed ^ 0x0f);
            let test = PdeCorpus3d::synthetic(cfg.test, &cfg.pde3_sizes, seed ^ 0x10);
            let opts = cfg.two_level(0x18);
            visitor.visit(case, &b, &train.inputs, &test.inputs, &opts, engine)
        }
    }
}

/// How [`run_case_full`] treats a persisted model artifact.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArtifactMode {
    /// Train, then export + save the artifact before evaluating.
    Save,
    /// Train, then *replace* the trained model with the loaded artifact
    /// before evaluating — so the resulting table proves the persisted
    /// model reproduces the in-process one (CI diffs the two CSVs).
    Load,
}

/// Optional persistence / remote-selection knobs of a suite run.
#[derive(Clone, Default)]
pub struct CaseRunOptions {
    /// Directory for per-corpus cost caches (`{case}.{train,test}.cache
    /// .json`). Present caches warm-start measurement; both caches are
    /// (re)saved after the run.
    pub cache_dir: Option<PathBuf>,
    /// Directory + mode for model artifacts (`{case}.model.json`).
    pub artifacts: Option<(PathBuf, ArtifactMode)>,
    /// A remote selection backend (e.g. an `intune_daemon` client): when
    /// present, the two-level row is scored against *its* answers instead
    /// of the in-process production classifier — `table1 --daemon ADDR`.
    pub selector: Option<std::sync::Arc<dyn SelectionBackend>>,
}

impl std::fmt::Debug for CaseRunOptions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CaseRunOptions")
            .field("cache_dir", &self.cache_dir)
            .field("artifacts", &self.artifacts)
            .field("selector", &self.selector.as_ref().map(|_| "<backend>"))
            .finish()
    }
}

/// Substitutes a loaded artifact's model into a training result, so the
/// standard evaluation path scores the *persisted* model: landmarks,
/// production classifier, normalizer and centroids all come from the
/// artifact.
///
/// # Errors
/// Returns [`intune_core::Error::Artifact`] when the artifact does not
/// validate against the benchmark or disagrees with the result's shapes.
pub fn apply_artifact<B: Benchmark>(
    result: &mut TwoLevelResult,
    benchmark: &B,
    artifact: &ModelArtifact,
) -> intune_core::Result<()> {
    artifact.validate(benchmark)?;
    if artifact.landmarks.len() != result.level1.landmarks.len() {
        return Err(intune_core::Error::artifact(format!(
            "artifact has {} landmarks, training produced {}",
            artifact.landmarks.len(),
            result.level1.landmarks.len()
        )));
    }
    result.level1.landmarks = artifact.landmarks.clone();
    result.level1.normalizer = artifact.normalizer.clone();
    result.level1.centroids = artifact.centroids.clone();
    let chosen = result.chosen;
    result.candidates[chosen].classifier = artifact.classifier.clone();
    Ok(())
}

/// Cost-cache file name for one case's corpus slice. The file name embeds
/// a fingerprint of the full [`SuiteConfig`] because cache cells are keyed
/// by input *index*: a different seed or scale generates a different
/// corpus, and reusing its cache would silently return stale reports.
fn cache_path(dir: &Path, case: TestCase, cfg: &SuiteConfig, slice: &str) -> PathBuf {
    let fingerprint = intune_core::codec::fnv1a64(format!("{cfg:?}").as_bytes());
    dir.join(format!(
        "{}.{fingerprint:016x}.{slice}.cache.json",
        case.name()
    ))
}

/// Path of a case's model artifact inside an artifact directory.
pub fn artifact_path(dir: &Path, case: TestCase) -> PathBuf {
    dir.join(format!("{}.model.json", case.name()))
}

fn load_cache_if_present(path: &Path) -> intune_core::Result<CostCache> {
    if path.exists() {
        CostCache::load(path)
    } else {
        Ok(CostCache::new())
    }
}

/// The standard suite runner as a visitor: learn (optionally warm-started
/// from persisted caches), handle artifact save/load, evaluate, persist
/// caches back.
struct OutcomeVisitor<'a> {
    run: &'a CaseRunOptions,
    /// The full suite configuration, used to fingerprint cache files
    /// (the visitor only receives the derived `TwoLevelOptions`).
    cfg: &'a SuiteConfig,
}

impl CaseVisitor for OutcomeVisitor<'_> {
    type Output = CaseOutcome;

    fn visit<B: Benchmark + Sync>(
        &mut self,
        case: TestCase,
        benchmark: &B,
        train: &[B::Input],
        test: &[B::Input],
        opts: &TwoLevelOptions,
        engine: &Engine,
    ) -> intune_core::Result<CaseOutcome>
    where
        B::Input: Sync,
    {
        let before = engine.stats();
        let train_cache = match &self.run.cache_dir {
            Some(dir) => load_cache_if_present(&cache_path(dir, case, self.cfg, "train"))?,
            None => CostCache::new(),
        };
        let mut result = learn_with_cache(benchmark, train, opts, engine, train_cache)?;

        match &self.run.artifacts {
            Some((dir, ArtifactMode::Save)) => {
                ModelArtifact::export(benchmark, &result).save(&artifact_path(dir, case))?;
            }
            Some((dir, ArtifactMode::Load)) => {
                let artifact = ModelArtifact::load(&artifact_path(dir, case))?;
                apply_artifact(&mut result, benchmark, &artifact)?;
            }
            None => {}
        }

        let mut test_cache = match &self.run.cache_dir {
            Some(dir) => load_cache_if_present(&cache_path(dir, case, self.cfg, "test"))?,
            None => CostCache::new(),
        };
        let mut row = match &self.run.selector {
            Some(backend) => evaluate_with_backend(
                benchmark,
                &result,
                test,
                engine,
                &mut test_cache,
                backend.as_ref(),
            )?,
            None => evaluate_with_cache(benchmark, &result, test, engine, &mut test_cache)?,
        };
        row.name = case.name().to_string();

        // The directory itself was created by `run_case_full`.
        if let Some(dir) = &self.run.cache_dir {
            result
                .level1
                .cache
                .save(&cache_path(dir, case, self.cfg, "train"))?;
            test_cache.save(&cache_path(dir, case, self.cfg, "test"))?;
        }

        Ok(CaseOutcome {
            perf_train: result.level1.perf.clone(),
            accuracy_threshold: benchmark.accuracy().map(|a| a.threshold),
            candidates: result
                .candidates
                .iter()
                .zip(&result.scores)
                .map(|(c, s)| (c.name.clone(), s.objective, s.satisfaction, s.valid))
                .collect(),
            stats: result.stats,
            engine: engine.stats().since(&before),
            row,
        })
    }
}

/// Runs one of the eight tests end to end on a fresh engine sized from
/// the `INTUNE_THREADS` environment (see [`run_case_with`] to share one
/// engine — and its counters — across cases).
///
/// # Panics
/// Panics if any measurement cell fails (use [`run_case_with`] for typed
/// errors).
pub fn run_case(case: TestCase, cfg: &SuiteConfig) -> CaseOutcome {
    run_case_with(case, cfg, &Engine::from_env()).expect("suite case failed")
}

/// Runs one of the eight tests end to end on the given engine. The engine
/// is reusable (and meant to be reused) across all eight cases; per-corpus
/// memoization state is created inside and scoped to each case.
///
/// # Errors
/// Returns [`intune_core::Error::Measurement`] if any benchmark cell fails.
pub fn run_case_with(
    case: TestCase,
    cfg: &SuiteConfig,
    engine: &Engine,
) -> intune_core::Result<CaseOutcome> {
    run_case_full(case, cfg, engine, &CaseRunOptions::default())
}

/// [`run_case_with`] plus persistence: optional warm-start cost caches
/// and optional model-artifact save/load (see [`CaseRunOptions`]).
///
/// # Errors
/// Returns [`intune_core::Error::Measurement`] on failing cells and
/// [`intune_core::Error::Artifact`] on persistence failures.
pub fn run_case_full(
    case: TestCase,
    cfg: &SuiteConfig,
    engine: &Engine,
    run: &CaseRunOptions,
) -> intune_core::Result<CaseOutcome> {
    if let Some(dir) = &run.cache_dir {
        std::fs::create_dir_all(dir)
            .map_err(|e| intune_core::Error::artifact(format!("cache dir: {e}")))?;
    }
    if let Some((dir, ArtifactMode::Save)) = &run.artifacts {
        std::fs::create_dir_all(dir)
            .map_err(|e| intune_core::Error::artifact(format!("artifact dir: {e}")))?;
    }
    visit_case(case, cfg, engine, &mut OutcomeVisitor { run, cfg })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SuiteConfig {
        SuiteConfig {
            train: 24,
            test: 16,
            clusters: 4,
            ea_population: 8,
            ea_generations: 4,
            folds: 2,
            sort_n: (64, 256),
            cluster_n: (60, 120),
            pack_n: (40, 120),
            svd_n: (8, 12),
            pde2_sizes: vec![7],
            pde3_sizes: vec![3],
            ..SuiteConfig::ci()
        }
    }

    #[test]
    fn names_are_unique() {
        let names: std::collections::HashSet<_> =
            TestCase::all().iter().map(|c| c.name()).collect();
        assert_eq!(names.len(), 8);
    }

    #[test]
    fn binpacking_case_runs_end_to_end() {
        let outcome = run_case(TestCase::Binpacking, &tiny());
        assert_eq!(outcome.row.name, "binpacking");
        assert_eq!(outcome.perf_train.num_landmarks(), 4);
        assert!(!outcome.candidates.is_empty());
        assert!(outcome.row.dynamic_oracle >= 1.0 - 1e-9);
        assert_eq!(outcome.row.per_input_speedups.len(), 16);
        assert_eq!(outcome.accuracy_threshold, Some(0.95));
    }

    #[test]
    fn sort2_case_runs_end_to_end() {
        let outcome = run_case(TestCase::Sort2, &tiny());
        assert_eq!(outcome.row.name, "sort2");
        // Sort is fixed-accuracy: both methods trivially satisfy.
        assert_eq!(outcome.accuracy_threshold, None);
        assert!(outcome.row.two_level_accuracy_pct >= 99.0);
        assert!(outcome.row.dynamic_oracle >= outcome.row.two_level - 1e-9);
    }

    #[test]
    fn shared_engine_accumulates_and_reports_cache_hits() {
        let engine = Engine::serial();
        let a = run_case_with(TestCase::Sort2, &tiny(), &engine).unwrap();
        // The landmark autotuner revisits configurations and the matrix
        // fill re-measures the tuner's winners: warm-cache hits are
        // structural, not incidental.
        assert!(
            a.engine.cache_hits > 0,
            "expected a warm cost cache, stats: {}",
            a.engine
        );
        assert!(a.engine.cells_measured > 0);

        let b = run_case_with(TestCase::Binpacking, &tiny(), &engine).unwrap();
        let total = engine.stats();
        assert_eq!(
            total.cells_measured,
            a.engine.cells_measured + b.engine.cells_measured,
            "one engine accumulates across cases"
        );
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("intune-suite-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn rows_equal(a: &super::EvaluationRow, b: &super::EvaluationRow) -> bool {
        a.two_level.to_bits() == b.two_level.to_bits()
            && a.two_level_fx.to_bits() == b.two_level_fx.to_bits()
            && a.one_level_fx.to_bits() == b.one_level_fx.to_bits()
            && a.dynamic_oracle.to_bits() == b.dynamic_oracle.to_bits()
            && a.production_classifier == b.production_classifier
    }

    #[test]
    fn persisted_caches_warm_start_a_second_run() {
        let dir = tmp_dir("cache");
        let run = CaseRunOptions {
            cache_dir: Some(dir.clone()),
            ..CaseRunOptions::default()
        };
        let cold_engine = Engine::serial();
        let cold = run_case_full(TestCase::Sort2, &tiny(), &cold_engine, &run).unwrap();

        let warm_engine = Engine::serial();
        let warm = run_case_full(TestCase::Sort2, &tiny(), &warm_engine, &run).unwrap();
        assert_eq!(
            warm.engine.cells_measured, 0,
            "a fully-persisted corpus re-runs nothing: {}",
            warm.engine
        );
        assert!(warm.engine.cache_hits >= cold.engine.cells_measured);
        assert!(
            rows_equal(&cold.row, &warm.row),
            "warm-started run must reproduce the cold row"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn cache_files_are_keyed_by_suite_config() {
        // A different seed generates a different corpus; its cache must
        // not collide with (and silently reuse) the first run's file.
        let dir = tmp_dir("cache-key");
        let run = CaseRunOptions {
            cache_dir: Some(dir.clone()),
            ..CaseRunOptions::default()
        };
        run_case_full(TestCase::Sort2, &tiny(), &Engine::serial(), &run).unwrap();

        let reseeded = SuiteConfig { seed: 7, ..tiny() };
        let engine = Engine::serial();
        let outcome = run_case_full(TestCase::Sort2, &reseeded, &engine, &run).unwrap();
        assert!(
            outcome.engine.cells_measured > 0,
            "a different corpus must run cold, not reuse stale cells: {}",
            outcome.engine
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn artifact_save_then_load_reproduces_the_row() {
        let dir = tmp_dir("artifact");
        let engine = Engine::serial();
        let saved = run_case_full(
            TestCase::Binpacking,
            &tiny(),
            &engine,
            &CaseRunOptions {
                artifacts: Some((dir.clone(), ArtifactMode::Save)),
                ..CaseRunOptions::default()
            },
        )
        .unwrap();
        assert!(super::artifact_path(&dir, TestCase::Binpacking).exists());

        let loaded = run_case_full(
            TestCase::Binpacking,
            &tiny(),
            &Engine::serial(),
            &CaseRunOptions {
                artifacts: Some((dir.clone(), ArtifactMode::Load)),
                ..CaseRunOptions::default()
            },
        )
        .unwrap();
        assert!(
            rows_equal(&saved.row, &loaded.row),
            "the loaded artifact must reproduce the trained model's row"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn loading_a_missing_artifact_is_a_typed_error() {
        let dir = tmp_dir("missing-artifact");
        let err = run_case_full(
            TestCase::Sort2,
            &tiny(),
            &Engine::serial(),
            &CaseRunOptions {
                artifacts: Some((dir.clone(), ArtifactMode::Load)),
                ..CaseRunOptions::default()
            },
        )
        .unwrap_err();
        assert!(
            matches!(err, intune_core::Error::Artifact { .. }),
            "{err:?}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn case_outcome_identical_at_one_and_four_workers() {
        let serial = run_case_with(TestCase::Sort2, &tiny(), &Engine::new(1)).unwrap();
        let pooled = run_case_with(TestCase::Sort2, &tiny(), &Engine::new(4)).unwrap();
        assert_eq!(
            serial.row.two_level.to_bits(),
            pooled.row.two_level.to_bits()
        );
        assert_eq!(
            serial.row.two_level_fx.to_bits(),
            pooled.row.two_level_fx.to_bits()
        );
        assert_eq!(
            serial.row.dynamic_oracle.to_bits(),
            pooled.row.dynamic_oracle.to_bits()
        );
        assert_eq!(serial.engine.cells_measured, pooled.engine.cells_measured);
        assert_eq!(serial.engine.cache_hits, pooled.engine.cache_hits);
    }
}
