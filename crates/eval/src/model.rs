//! The paper's §4.3 analytic model of diminishing returns from more
//! landmark configurations.
//!
//! Regions of the input space of size `pᵢ` are dominated by distinct optimal
//! configurations with speedups `sᵢ`. With `k` landmarks sampled uniformly
//! at random, the chance of missing region `i` is `(1 − pᵢ)^k`, so the
//! expected lost speedup is `L = Σᵢ (1 − pᵢ)^k · pᵢ·sᵢ / Σᵢ sᵢ`.

/// Expected lost speedup for equal-speedup regions all of size `p`
/// (Figure 7a's curves): `L(p, k) = p(1 − p)^k`.
pub fn lost_speedup(p: f64, k: usize) -> f64 {
    assert!((0.0..=1.0).contains(&p), "region size must be in [0,1]");
    p * (1.0 - p).powi(k as i32)
}

/// The worst-case region size for `k` landmarks: `p* = 1/(k+1)`
/// (from `dL/dp = 0`).
pub fn worst_case_region(k: usize) -> f64 {
    1.0 / (k as f64 + 1.0)
}

/// Fraction of the full speedup retained at the worst-case region size
/// (Figure 7b's curve): `1 − L(p*, k)`.
pub fn worst_case_fraction(k: usize) -> f64 {
    1.0 - lost_speedup(worst_case_region(k), k)
}

/// General form: expected lost speedup for explicit regions
/// `(pᵢ, sᵢ)`.
///
/// # Panics
/// Panics if regions are empty or sizes are not in `[0, 1]`.
pub fn lost_speedup_general(regions: &[(f64, f64)], k: usize) -> f64 {
    assert!(!regions.is_empty(), "need at least one region");
    let total_s: f64 = regions.iter().map(|r| r.1).sum();
    regions
        .iter()
        .map(|&(p, s)| {
            assert!((0.0..=1.0).contains(&p), "region size must be in [0,1]");
            (1.0 - p).powi(k as i32) * p * s
        })
        .sum::<f64>()
        / total_s.max(1e-300)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extremes_lose_nothing() {
        for k in 1..10 {
            assert_eq!(lost_speedup(0.0, k), 0.0);
            assert_eq!(lost_speedup(1.0, k), 0.0);
        }
    }

    #[test]
    fn worst_case_maximizes_loss() {
        for k in 2..10 {
            let p_star = worst_case_region(k);
            let at_star = lost_speedup(p_star, k);
            for p in [p_star / 2.0, p_star * 1.5, 0.9] {
                assert!(
                    lost_speedup(p, k) <= at_star + 1e-12,
                    "k={k}: L({p}) exceeds L(p*)"
                );
            }
        }
    }

    #[test]
    fn diminishing_returns_with_more_landmarks() {
        let mut last = 0.0;
        for k in 1..=100 {
            let f = worst_case_fraction(k);
            assert!(f >= last - 1e-12, "fraction must be nondecreasing at k={k}");
            last = f;
        }
        // A few landmarks already retain most of the speedup…
        assert!(worst_case_fraction(10) > 0.95);
        // …and the curve saturates: the 10→100 gain is tiny.
        assert!(worst_case_fraction(100) - worst_case_fraction(10) < 0.04);
    }

    #[test]
    fn general_model_reduces_to_uniform() {
        let uniform: Vec<(f64, f64)> = (0..4).map(|_| (0.25, 2.0)).collect();
        let g = lost_speedup_general(&uniform, 3);
        let direct = lost_speedup(0.25, 3);
        assert!((g - direct).abs() < 1e-12);
    }

    #[test]
    fn big_easy_regions_found_quickly() {
        // One dominant region (p=0.9) and one rare region (p=0.1).
        let regions = vec![(0.9, 5.0), (0.1, 5.0)];
        let l1 = lost_speedup_general(&regions, 1);
        let l5 = lost_speedup_general(&regions, 5);
        assert!(l5 < l1);
        // After 5 samples the dominant region is almost surely covered; the
        // residual loss is dominated by the rare region.
        assert!(lost_speedup_general(&regions, 20) < 0.02);
    }
}
