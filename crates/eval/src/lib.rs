//! # intune-eval
//!
//! The evaluation harness: corpora for the paper's eight tests (sort1,
//! sort2, clustering1, clustering2, binpacking, svd, poisson2d,
//! helmholtz3d), a unified suite runner, the Figure-7 analytic model, and
//! small CSV/CLI utilities shared by the reproduction binaries:
//!
//! | binary | regenerates |
//! |--------|-------------|
//! | `table1` | Table 1 (+ §4.2 relabel statistic) |
//! | `figure6` | Figure 6 per-input speedup distributions |
//! | `figure7` | Figure 7a/7b model curves |
//! | `figure8` | Figure 8 speedup vs. #landmarks |
//! | `ablation_landmarks` | §3.1 K-means vs. random landmark selection |
//! | `ablation_lambda` | §3.2 λ sweep for the cost matrix |
//! | `ablation_clusters` | §4.2 cluster-count sensitivity |
//! | `space_size` | §1/§4 configuration-space sizes |
//!
//! Every binary accepts `--paper` (larger corpora, K = 100 landmarks),
//! `--seed N`, and writes CSV into `results/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod csvout;
pub mod model;
pub mod suite;

pub use args::Args;
pub use suite::{
    apply_artifact, artifact_path, run_case, run_case_full, run_case_with, visit_case,
    ArtifactMode, CaseOutcome, CaseRunOptions, CaseVisitor, SuiteConfig, TestCase,
};
