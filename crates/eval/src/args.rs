//! Minimal CLI argument handling shared by the reproduction binaries.

use crate::suite::SuiteConfig;

/// Parsed command-line options.
#[derive(Debug, Clone)]
pub struct Args {
    /// Use paper-scale corpora and budgets (much slower).
    pub paper: bool,
    /// Base RNG seed.
    pub seed: u64,
    /// Output directory for CSV files.
    pub out_dir: String,
    /// Restrict to benchmarks whose name contains this substring.
    pub only: Option<String>,
}

impl Args {
    /// Parses `std::env::args()`, understanding `--paper`, `--seed N`,
    /// `--out DIR` and `--only NAME`. Unknown flags abort with usage help.
    pub fn parse() -> Args {
        let mut out = Args {
            paper: false,
            seed: 0,
            out_dir: "results".to_string(),
            only: None,
        };
        let argv: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < argv.len() {
            match argv[i].as_str() {
                "--paper" => out.paper = true,
                "--seed" => {
                    i += 1;
                    out.seed = argv
                        .get(i)
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| usage("--seed needs an integer"));
                }
                "--out" => {
                    i += 1;
                    out.out_dir = argv
                        .get(i)
                        .cloned()
                        .unwrap_or_else(|| usage("--out needs a directory"));
                }
                "--only" => {
                    i += 1;
                    out.only = Some(
                        argv.get(i)
                            .cloned()
                            .unwrap_or_else(|| usage("--only needs a name")),
                    );
                }
                "--help" | "-h" => {
                    usage("");
                }
                other => usage(&format!("unknown flag {other}")),
            }
            i += 1;
        }
        out
    }

    /// The suite configuration implied by the flags.
    pub fn config(&self) -> SuiteConfig {
        let mut cfg = if self.paper {
            SuiteConfig::paper_scale()
        } else {
            SuiteConfig::ci()
        };
        cfg.seed = cfg.seed.wrapping_add(self.seed);
        cfg
    }
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}");
    }
    eprintln!("usage: <binary> [--paper] [--seed N] [--out DIR] [--only NAME]");
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_scales_with_paper_flag() {
        let ci = Args {
            paper: false,
            seed: 0,
            out_dir: "results".into(),
            only: None,
        };
        let paper = Args {
            paper: true,
            ..ci.clone()
        };
        assert!(paper.config().train > ci.config().train);
        assert!(paper.config().clusters > ci.config().clusters);
    }

    #[test]
    fn seed_offsets_base_config() {
        let a = Args {
            paper: false,
            seed: 7,
            out_dir: "results".into(),
            only: None,
        };
        assert_eq!(a.config().seed, SuiteConfig::ci().seed.wrapping_add(7));
    }
}
