//! Minimal CLI argument handling shared by the reproduction binaries.

use crate::suite::{ArtifactMode, CaseRunOptions, SuiteConfig};
use std::path::PathBuf;

/// Parsed command-line options.
#[derive(Debug, Clone)]
pub struct Args {
    /// Use paper-scale corpora and budgets (much slower).
    pub paper: bool,
    /// Base RNG seed.
    pub seed: u64,
    /// Output directory for CSV files.
    pub out_dir: String,
    /// Restrict to benchmarks whose name contains this substring.
    pub only: Option<String>,
    /// Directory for model artifacts (`--artifacts DIR`).
    pub artifacts: Option<PathBuf>,
    /// What to do with the artifact directory (`--artifact-mode
    /// save|load`; defaults to `save` when `--artifacts` is given).
    pub artifact_mode: ArtifactMode,
    /// Directory for persistent per-corpus cost caches (`--cache-dir`).
    pub cache_dir: Option<PathBuf>,
    /// Address of a running `intune_daemon` to score selections against
    /// (`--daemon HOST:PORT` or `--daemon unix:/path`); honored by
    /// `table1`, whose two-level row then comes from remote selections.
    pub daemon: Option<String>,
}

impl Args {
    /// Parses `std::env::args()`, understanding `--paper`, `--seed N`,
    /// `--out DIR`, `--only NAME`, `--artifacts DIR`,
    /// `--artifact-mode save|load` and `--cache-dir DIR`. Unknown flags
    /// abort with usage help.
    pub fn parse() -> Args {
        let mut out = Args {
            paper: false,
            seed: 0,
            out_dir: "results".to_string(),
            only: None,
            artifacts: None,
            artifact_mode: ArtifactMode::Save,
            cache_dir: None,
            daemon: None,
        };
        let argv: Vec<String> = std::env::args().skip(1).collect();
        let mut mode_given = false;
        let mut i = 0;
        while i < argv.len() {
            match argv[i].as_str() {
                "--paper" => out.paper = true,
                "--seed" => {
                    i += 1;
                    out.seed = argv
                        .get(i)
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| usage("--seed needs an integer"));
                }
                "--out" => {
                    i += 1;
                    out.out_dir = argv
                        .get(i)
                        .cloned()
                        .unwrap_or_else(|| usage("--out needs a directory"));
                }
                "--only" => {
                    i += 1;
                    out.only = Some(
                        argv.get(i)
                            .cloned()
                            .unwrap_or_else(|| usage("--only needs a name")),
                    );
                }
                "--artifacts" => {
                    i += 1;
                    out.artifacts = Some(PathBuf::from(
                        argv.get(i)
                            .cloned()
                            .unwrap_or_else(|| usage("--artifacts needs a directory")),
                    ));
                }
                "--artifact-mode" => {
                    i += 1;
                    mode_given = true;
                    out.artifact_mode = match argv.get(i).map(String::as_str) {
                        Some("save") => ArtifactMode::Save,
                        Some("load") => ArtifactMode::Load,
                        _ => usage("--artifact-mode needs `save` or `load`"),
                    };
                }
                "--cache-dir" => {
                    i += 1;
                    out.cache_dir = Some(PathBuf::from(
                        argv.get(i)
                            .cloned()
                            .unwrap_or_else(|| usage("--cache-dir needs a directory")),
                    ));
                }
                "--daemon" => {
                    i += 1;
                    out.daemon = Some(
                        argv.get(i)
                            .cloned()
                            .unwrap_or_else(|| usage("--daemon needs an address")),
                    );
                }
                "--help" | "-h" => {
                    usage("");
                }
                other => usage(&format!("unknown flag {other}")),
            }
            i += 1;
        }
        if mode_given && out.artifacts.is_none() {
            // Silently dropping the mode would let `--artifact-mode load`
            // masquerade as a round-trip check while training in-process.
            usage("--artifact-mode requires --artifacts DIR");
        }
        out
    }

    /// The suite configuration implied by the flags.
    pub fn config(&self) -> SuiteConfig {
        let mut cfg = if self.paper {
            SuiteConfig::paper_scale()
        } else {
            SuiteConfig::ci()
        };
        cfg.seed = cfg.seed.wrapping_add(self.seed);
        cfg
    }

    /// The persistence options implied by the flags. The `--daemon`
    /// backend is *not* connected here (flag parsing must stay free of
    /// side effects); binaries that honor it call
    /// [`Args::connect_daemon`] and fill `selector` themselves.
    pub fn run_options(&self) -> CaseRunOptions {
        CaseRunOptions {
            cache_dir: self.cache_dir.clone(),
            artifacts: self
                .artifacts
                .as_ref()
                .map(|dir| (dir.clone(), self.artifact_mode)),
            selector: None,
        }
    }

    /// Connects to the `--daemon` address, if one was given.
    ///
    /// # Errors
    /// Propagates the client's connect/handshake failure.
    pub fn connect_daemon(&self) -> intune_core::Result<Option<intune_daemon::DaemonClient>> {
        self.daemon
            .as_deref()
            .map(intune_daemon::DaemonClient::connect)
            .transpose()
    }

    /// Aborts with usage help if `--daemon` was given. Binaries that do
    /// not route selections through the daemon call this right after
    /// parsing, so the flag is loudly rejected instead of silently
    /// producing in-process numbers the user believes came from the
    /// daemon.
    pub fn reject_daemon(&self, binary: &str) {
        if self.daemon.is_some() {
            usage(&format!(
                "{binary} does not support --daemon (only table1 does)"
            ));
        }
    }
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}");
    }
    eprintln!(
        "usage: <binary> [--paper] [--seed N] [--out DIR] [--only NAME] \
         [--artifacts DIR] [--artifact-mode save|load] [--cache-dir DIR] \
         [--daemon ADDR]"
    );
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_args() -> Args {
        Args {
            paper: false,
            seed: 0,
            out_dir: "results".into(),
            only: None,
            artifacts: None,
            artifact_mode: ArtifactMode::Save,
            cache_dir: None,
            daemon: None,
        }
    }

    #[test]
    fn config_scales_with_paper_flag() {
        let ci = base_args();
        let paper = Args {
            paper: true,
            ..ci.clone()
        };
        assert!(paper.config().train > ci.config().train);
        assert!(paper.config().clusters > ci.config().clusters);
    }

    #[test]
    fn seed_offsets_base_config() {
        let a = Args {
            seed: 7,
            ..base_args()
        };
        assert_eq!(a.config().seed, SuiteConfig::ci().seed.wrapping_add(7));
    }

    #[test]
    fn run_options_mirror_flags() {
        let none = base_args();
        assert!(none.run_options().cache_dir.is_none());
        assert!(none.run_options().artifacts.is_none());

        let full = Args {
            artifacts: Some(PathBuf::from("arts")),
            artifact_mode: ArtifactMode::Load,
            cache_dir: Some(PathBuf::from("caches")),
            ..base_args()
        };
        let run = full.run_options();
        assert_eq!(
            run.cache_dir.as_deref(),
            Some(std::path::Path::new("caches"))
        );
        let (dir, mode) = run.artifacts.unwrap();
        assert_eq!(dir, PathBuf::from("arts"));
        assert_eq!(mode, ArtifactMode::Load);
    }
}
