//! Tiny CSV writer for the reproduction binaries.

use std::fs;
use std::io::Write;
use std::path::Path;

/// Writes `rows` (first row = header) to `dir/name`, creating `dir` if
/// needed. Returns the path written.
///
/// # Panics
/// Panics on I/O errors — the reproduction binaries want loud failures.
pub fn write_csv(dir: &str, name: &str, rows: &[Vec<String>]) -> String {
    fs::create_dir_all(dir).expect("create results directory");
    let path = Path::new(dir).join(name);
    let mut file = fs::File::create(&path).expect("create csv file");
    for row in rows {
        let escaped: Vec<String> = row
            .iter()
            .map(|cell| {
                if cell.contains(',') || cell.contains('"') {
                    format!("\"{}\"", cell.replace('"', "\"\""))
                } else {
                    cell.clone()
                }
            })
            .collect();
        writeln!(file, "{}", escaped.join(",")).expect("write csv row");
    }
    path.display().to_string()
}

/// Formats a float with 3 significant decimals for tables.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats a speedup in the paper's `N.NNx` style.
pub fn speedup(x: f64) -> String {
    format!("{x:.2}x")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_and_escapes() {
        let dir = std::env::temp_dir().join("intune-csv-test");
        let dir = dir.to_str().unwrap();
        let path = write_csv(
            dir,
            "t.csv",
            &[
                vec!["a".into(), "b,c".into()],
                vec!["1".into(), "he said \"hi\"".into()],
            ],
        );
        let text = std::fs::read_to_string(path).unwrap();
        assert!(text.contains("\"b,c\""));
        assert!(text.contains("\"he said \"\"hi\"\"\""));
    }

    #[test]
    fn formatting() {
        assert_eq!(f3(1.23456), "1.235");
        assert_eq!(speedup(2.9512), "2.95x");
    }
}
