use intune_binpacklib::{Heuristic, PackInputClass};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(42);
    for class in PackInputClass::all() {
        let mut worst: f64 = 1.0;
        let mut fails = 0;
        for _ in 0..30 {
            for &n in &[100usize, 250, 400] {
                let items = class.generate(n, &mut rng);
                let best = Heuristic::ALL
                    .iter()
                    .map(|h| h.pack(&items).occupancy())
                    .fold(0.0, f64::max);
                worst = worst.min(best);
                if best < 0.95 {
                    fails += 1;
                }
            }
        }
        println!("{class:?}: worst-best-occupancy {worst:.4}, infeasible {fails}/90");
    }
}
