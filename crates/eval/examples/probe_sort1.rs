//! Diagnostic: inspect sort1 landmark diversity and per-input best costs.

use intune_autotuner::TunerOptions;
use intune_core::Benchmark;
use intune_eval::SuiteConfig;
use intune_exec::Engine;
use intune_learning::labels::label_inputs;
use intune_learning::level1::{run_level1, Level1Options};
use intune_sortlib::{PolySort, SortCorpus};

fn main() {
    let cfg = SuiteConfig::ci();
    let b = PolySort::new(cfg.sort_n.1);
    let corpus = SortCorpus::ccr(48, cfg.sort_n.0, cfg.sort_n.1, 1);
    let opts = Level1Options {
        clusters: 8,
        tuner: TunerOptions {
            population: cfg.ea_population,
            generations: cfg.ea_generations,
            ..TunerOptions::quick(0)
        },
        ..Level1Options::default()
    };
    let r = run_level1(&b, &corpus.inputs, &opts, &Engine::from_env()).expect("level 1 failed");
    let space = b.space();
    for (c, lm) in r.landmarks.iter().enumerate() {
        let sel = intune_core::SelectorSpec::new("sort", 3, cfg.sort_n.1 as i64, 5)
            .decode(&space, lm)
            .unwrap();
        println!(
            "landmark {c}: rules {:?} top {} ways {}",
            sel.rules(),
            sel.top(),
            lm.int(space.index_of("sort.merge_ways").unwrap())
        );
    }
    let labels = label_inputs(&r.perf, None);
    #[allow(clippy::needless_range_loop)]
    for i in 0..12 {
        let costs: Vec<String> = (0..8)
            .map(|l| format!("{:.0}", r.perf.cost(l, i)))
            .collect();
        let n = corpus.inputs[i].len();
        let sortedness = b.extract(0, 2, &corpus.inputs[i]).value;
        println!(
            "input {i} n={n} sortedness={sortedness:.2} best={} costs={costs:?}",
            labels[i]
        );
    }
}
