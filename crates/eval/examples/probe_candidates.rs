//! Diagnostic: print the candidate table (objective / satisfaction / valid)
//! for one suite case. Usage: `probe_candidates [case-name]`.

use intune_eval::{run_case, SuiteConfig, TestCase};

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "svd".into());
    let case = TestCase::all()
        .into_iter()
        .find(|c| c.name() == name)
        .expect("unknown case");
    let outcome = run_case(case, &SuiteConfig::ci());
    let mut cands = outcome.candidates.clone();
    cands.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
    println!("case {} — top 20 candidates by objective:", name);
    for (name, objective, satisfaction, valid) in cands.iter().take(20) {
        println!(
            "  {:<44} obj={objective:<12.1} sat={:.3} valid={valid}",
            name, satisfaction
        );
    }
    println!(
        "\nrow: dyn={:.2} 2lvl={:.2} acc={:.1}%  chosen={}",
        outcome.row.dynamic_oracle,
        outcome.row.two_level,
        outcome.row.two_level_accuracy_pct,
        outcome.row.production_classifier
    );
}
