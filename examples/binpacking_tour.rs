//! A tour of the 13 bin-packing heuristics and learned heuristic selection.
//!
//! ```text
//! cargo run --release --example binpacking_tour
//! ```
//!
//! Races all 13 heuristics across item-size distributions (occupancy =
//! the paper's accuracy metric, threshold 0.95), then runs the two-level
//! learner over the heuristic-selector space and reports which heuristics
//! the landmarks settled on.

use intune::autotuner::TunerOptions;
use intune::binpacklib::{BinPacking, Heuristic, PackCorpus, PackInputClass};
use intune::core::{Benchmark, SelectorSpec};
use intune::learning::pipeline::learn;
use intune::learning::{Level1Options, TwoLevelOptions};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(9);

    println!("occupancy (accuracy metric) per heuristic, 300 items:");
    print!("{:<18}", "class");
    for h in Heuristic::ALL {
        print!("{:>6}", h.name());
    }
    println!();
    for class in PackInputClass::all() {
        let items = class.generate(300, &mut rng);
        print!("{:<18}", format!("{class:?}"));
        for h in Heuristic::ALL {
            print!("{:>6.2}", h.pack(&items).occupancy());
        }
        println!();
    }

    // Learn heuristic selection end to end.
    println!("\nlearning heuristic selection (8 landmarks)...");
    let program = BinPacking::new(500);
    let corpus = PackCorpus::synthetic(80, 200, 500, 1);
    let options = TwoLevelOptions {
        level1: Level1Options {
            clusters: 8,
            tuner: TunerOptions::quick(2),
            ..Level1Options::default()
        },
        ..TwoLevelOptions::default()
    };
    let result = learn(
        &program,
        &corpus.inputs,
        &options,
        &intune::exec::Engine::from_env(),
    )
    .expect("learning failed");

    let space = program.space();
    let spec = SelectorSpec::new("pack", 2, 500, Heuristic::ALL.len());
    for (i, lm) in result.level1.landmarks.iter().enumerate() {
        let sel = spec.decode(&space, lm).unwrap();
        let small = Heuristic::ALL[sel.decide(50)];
        let large = Heuristic::ALL[sel.decide(450)];
        println!(
            "landmark {i}: {} for small instances, {} for large",
            small.name(),
            large.name()
        );
    }
    println!(
        "production classifier: {} (relabeled {:.0}% of inputs)",
        result.candidates[result.chosen].name,
        100.0 * result.relabel_fraction
    );
}
