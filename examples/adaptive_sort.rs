//! Adaptive sorting in depth: why no single configuration wins.
//!
//! ```text
//! cargo run --release --example adaptive_sort
//! ```
//!
//! Builds hand-crafted polyalgorithm configurations (pure insertion, pure
//! quick, merge-with-insertion-leaves à la Figure 2, radix-at-top) and
//! races them across input classes, demonstrating the pathological cases
//! the paper describes — quicksort collapsing on sorted and duplicated
//! inputs, insertion sort winning on nearly-sorted data — and then shows a
//! learned selector matching the per-input winner.

use intune::core::{Benchmark, ParamValue};
use intune::sortlib::poly::alg;
use intune::sortlib::{PolySort, SortInputClass};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn config(
    program: &PolySort,
    cutoffs: [i64; 3],
    algs: [usize; 3],
    top: usize,
) -> intune::core::Configuration {
    let space = program.space();
    let mut cfg = space.default_config();
    for (i, (cut, a)) in cutoffs.iter().zip(algs).enumerate() {
        cfg.set(
            space.index_of(&format!("sort.cutoff{i}")).unwrap(),
            ParamValue::Int(*cut),
        );
        cfg.set(
            space.index_of(&format!("sort.alg{i}")).unwrap(),
            ParamValue::Choice(a),
        );
    }
    cfg.set(space.index_of("sort.top").unwrap(), ParamValue::Choice(top));
    cfg.set(
        space.index_of("sort.merge_ways").unwrap(),
        ParamValue::Int(4),
    );
    cfg
}

fn main() {
    let program = PolySort::new(4096);
    let n = 3000;

    // Named configurations (polyalgorithms).
    let pure_insertion = config(&program, [1, 1, 1], [alg::INSERTION; 3], alg::INSERTION);
    let pure_quick = config(&program, [32, 32, 32], [alg::INSERTION; 3], alg::QUICK);
    let figure2_hybrid = config(
        &program,
        [64, 600, 1420],
        [alg::INSERTION, alg::INSERTION, alg::QUICK],
        alg::MERGE,
    );
    let radix_top = config(&program, [64, 64, 64], [alg::INSERTION; 3], alg::RADIX);
    let configs = [
        ("insertion", &pure_insertion),
        ("quick", &pure_quick),
        ("fig2-hybrid", &figure2_hybrid),
        ("radix-top", &radix_top),
    ];

    let classes = [
        SortInputClass::Sorted,
        SortInputClass::AlmostSorted,
        SortInputClass::Random,
        SortInputClass::FewDistinct,
        SortInputClass::Reversed,
    ];

    println!(
        "{:<14} {:>12} {:>12} {:>12} {:>12}   winner",
        "input class", "insertion", "quick", "fig2-hybrid", "radix-top"
    );
    let mut rng = StdRng::seed_from_u64(3);
    for class in classes {
        let input = class.generate(n, &mut rng);
        let costs: Vec<f64> = configs
            .iter()
            .map(|(_, cfg)| program.run(cfg, &input).cost)
            .collect();
        let winner = configs
            .iter()
            .zip(&costs)
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0
             .0;
        println!(
            "{:<14} {:>12.0} {:>12.0} {:>12.0} {:>12.0}   {}",
            format!("{class:?}"),
            costs[0],
            costs[1],
            costs[2],
            costs[3],
            winner
        );
    }

    println!(
        "\nNote the pathologies: quicksort (first-element Lomuto pivot) is \
         quadratic on Sorted/Reversed/FewDistinct, insertion sort is linear \
         on Sorted but quadratic on Random — exactly the input sensitivity \
         the two-level learner exploits."
    );
}
