//! PDE solver autotuning: cycle shapes and solver choice vs input frequency.
//!
//! ```text
//! cargo run --release --example pde_autotuning
//! ```
//!
//! Solves Poisson problems with differently-shaped right-hand sides under
//! three solver configurations (tuned multigrid, conjugate gradients, plain
//! Gauss–Seidel smoothing) and shows the crossover the paper's benchmark is
//! built around: smoothing alone is the cheapest way to seven orders of
//! error reduction on high-frequency inputs, while smooth inputs demand
//! full multigrid. Then the evolutionary autotuner is let loose on the
//! cycle-shape space for one input.

use intune::autotuner::{EvolutionaryTuner, Objective, TunerOptions};
use intune::core::{Benchmark, ParamValue};
use intune::pde::{PdeInputClass, Poisson2d};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let program = Poisson2d::new();
    let space = program.space();
    let mut rng = StdRng::seed_from_u64(5);

    let mut mg = space.default_config();
    mg.set(space.index_of("p2.solver").unwrap(), ParamValue::Choice(0));
    mg.set(space.index_of("p2.cycles").unwrap(), ParamValue::Int(10));
    mg.set(
        space.index_of("p2.smoother").unwrap(),
        ParamValue::Choice(3),
    );

    let mut cg = space.default_config();
    cg.set(space.index_of("p2.solver").unwrap(), ParamValue::Choice(1));
    cg.set(space.index_of("p2.cg_iters").unwrap(), ParamValue::Int(300));

    let mut smooth = space.default_config();
    smooth.set(space.index_of("p2.solver").unwrap(), ParamValue::Choice(2));
    smooth.set(space.index_of("p2.sweeps").unwrap(), ParamValue::Int(80));
    smooth.set(
        space.index_of("p2.smoother").unwrap(),
        ParamValue::Choice(1),
    );

    println!(
        "{:<16} {:>14} {:>14} {:>14}  (cost | accuracy, target 7.0)",
        "rhs class", "multigrid", "cg(300)", "gauss-seidel(80)"
    );
    for class in [
        PdeInputClass::SmoothLowFreq,
        PdeInputClass::HighFreq,
        PdeInputClass::Noise,
        PdeInputClass::PointSources,
    ] {
        let input = class.generate_2d(31, &mut rng);
        let mut cells = Vec::new();
        for cfg in [&mg, &cg, &smooth] {
            let r = program.run(cfg, &input);
            let ok = if r.accuracy.unwrap() >= 7.0 {
                "ok"
            } else {
                "MISS"
            };
            cells.push(format!("{:>8.0}k/{ok}", r.cost / 1000.0));
        }
        println!(
            "{:<16} {:>14} {:>14} {:>14}",
            format!("{class:?}"),
            cells[0],
            cells[1],
            cells[2]
        );
    }

    // Autotune the full space for one smooth input.
    println!("\nautotuning cycle shapes for a smooth right-hand side...");
    let input = PdeInputClass::SmoothLowFreq.generate_2d(31, &mut rng);
    let tuner = EvolutionaryTuner::new(TunerOptions::quick(11));
    let result = tuner.tune(&space, Objective::with_accuracy_target(7.0), |cfg| {
        program.run(cfg, &input)
    });
    let best = &result.best;
    println!(
        "best config: solver {} cycle {} pre {} post {} smoother {} -> cost {:.0} accuracy {:.1}",
        best.choice(space.index_of("p2.solver").unwrap()),
        best.choice(space.index_of("p2.cycle").unwrap()),
        best.int(space.index_of("p2.pre").unwrap()),
        best.int(space.index_of("p2.post").unwrap()),
        best.choice(space.index_of("p2.smoother").unwrap()),
        result.best_report.cost,
        result.best_report.accuracy.unwrap_or(0.0),
    );
    println!(
        "({} evaluations; best-so-far cost went {:.0} -> {:.0})",
        result.evaluations,
        result.history.first().unwrap(),
        result.history.last().unwrap()
    );
}
