//! Serve quickstart: the train → save → load → serve lifecycle.
//!
//! ```text
//! cargo run --release --example serve_quickstart
//! ```
//!
//! Continues where `examples/quickstart.rs` stops: instead of using the
//! trained model in-process, export it as a versioned, checksummed
//! **model artifact**, reload it (as a serving box would after a deploy),
//! and answer batched selection requests through the `SelectorService` —
//! including what happens when the input distribution drifts away from
//! the training corpus.

use intune::autotuner::TunerOptions;
use intune::exec::Engine;
use intune::learning::pipeline::learn;
use intune::learning::{Level1Options, TwoLevelOptions};
use intune::serve::{ModelArtifact, SelectorService, ServeOptions};
use intune::sortlib::{PolySort, SortCorpus};

fn main() {
    // ------------------------------------------------------------------
    // Training box: learn, export, save. In production this is an
    // offline job; the artifact file is the only thing that ships.
    // ------------------------------------------------------------------
    let program = PolySort::new(2048);
    let train = SortCorpus::synthetic(80, 256, 2048, 1);
    let options = TwoLevelOptions {
        level1: Level1Options {
            clusters: 8,
            tuner: TunerOptions::quick(7),
            ..Level1Options::default()
        },
        ..TwoLevelOptions::default()
    };
    println!("training ({} inputs, 8 landmarks)...", train.inputs.len());
    let engine = Engine::from_env();
    let result = learn(&program, &train.inputs, &options, &engine).expect("learning failed");

    let artifact = ModelArtifact::export(&program, &result);
    let path = std::env::temp_dir().join("intune-quickstart.model.json");
    artifact.save(&path).expect("artifact save failed");
    println!(
        "saved artifact: {} ({} landmarks, {} classifier, {} bytes)",
        path.display(),
        artifact.landmarks.len(),
        artifact.classifier.kind(),
        std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0),
    );

    // ------------------------------------------------------------------
    // Serving box: load, validate, serve. A fresh process would start
    // here — nothing below touches the training corpus or the learner.
    // ------------------------------------------------------------------
    let loaded = ModelArtifact::load(&path).expect("artifact load failed");
    let service = SelectorService::new(&program, loaded, ServeOptions::default())
        .expect("artifact does not fit this benchmark");

    // A batch of fresh requests from the same distribution as training.
    let requests = SortCorpus::synthetic(64, 256, 2048, 99);
    let selections = service.select_batch(&requests.inputs);
    let fallback = service.artifact().fallback;
    println!(
        "served {} requests: landmark histogram {:?}, drift {:.1}%",
        selections.len(),
        histogram(
            selections.iter().map(|s| s.landmark),
            service.landmarks().len()
        ),
        100.0 * service.stats().drift_fraction(),
    );

    // Classify *and execute* one request.
    let (report, selection) = service.run(&requests.inputs[0]);
    println!(
        "request 0 (n = {}): landmark {} after {:.0} extraction work units, ran at cost {:.0}",
        requests.inputs[0].len(),
        selection.landmark,
        selection.extraction_cost,
        report.cost
    );

    // ------------------------------------------------------------------
    // Drift: shift the input distribution far outside the training
    // corpus. The monitor counts out-of-distribution inputs and, past
    // the threshold, pins the safe fallback landmark.
    // ------------------------------------------------------------------
    let drift_service = SelectorService::new(
        &program,
        service.artifact().clone(),
        ServeOptions {
            min_observations: 16,
            drift_threshold: 0.5,
            ..ServeOptions::default()
        },
    )
    .expect("validated above");
    // Same lengths, wildly different value distribution: every element
    // scaled by 1e6 explodes the deviation feature far outside the
    // training clusters' radii.
    let clipped: Vec<Vec<f64>> = SortCorpus::synthetic(64, 256, 2048, 7)
        .inputs
        .into_iter()
        .map(|input| input.into_iter().map(|v| v * 1e6).collect())
        .collect();
    drift_service.select_batch(&clipped);
    println!(
        "after a drifted batch: {} — fallback {}",
        drift_service.stats(),
        if drift_service.fallback_active() {
            format!("ENGAGED (pinning safe landmark {fallback})")
        } else {
            "not engaged".to_string()
        }
    );
    let after = drift_service.select_batch(&clipped);
    println!(
        "next drifted batch: {}/{} requests served by the fallback landmark",
        after.iter().filter(|s| s.fell_back).count(),
        after.len()
    );

    std::fs::remove_file(&path).ok();
}

fn histogram(landmarks: impl Iterator<Item = usize>, k: usize) -> Vec<usize> {
    let mut counts = vec![0usize; k];
    for l in landmarks {
        counts[l] += 1;
    }
    counts
}
