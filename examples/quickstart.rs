//! Quickstart: learn an input-adaptive sorting program and deploy it.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! The pipeline mirrors the paper end to end: generate a training corpus,
//! run the two-level learner (cluster → autotune landmarks → measure →
//! relabel → train classifier family → select production classifier), then
//! classify-and-run unseen inputs and compare against the oracles.

use intune::autotuner::TunerOptions;
use intune::exec::Engine;
use intune::learning::pipeline::{evaluate, learn, TunedProgram};
use intune::learning::{Level1Options, TwoLevelOptions};
use intune::sortlib::{PolySort, SortCorpus};

fn main() {
    // A program with algorithmic choices: the five-way sort polyalgorithm
    // for inputs up to 2048 elements.
    let program = PolySort::new(2048);

    // Training and test corpora spanning the input feature space.
    let train = SortCorpus::synthetic(80, 256, 2048, 1);
    let test = SortCorpus::synthetic(40, 256, 2048, 2);

    // Two-level learning at a laptop-friendly budget.
    let options = TwoLevelOptions {
        level1: Level1Options {
            clusters: 8,
            tuner: TunerOptions::quick(7),
            ..Level1Options::default()
        },
        ..TwoLevelOptions::default()
    };
    println!(
        "learning (8 landmarks, {} training inputs)...",
        train.inputs.len()
    );
    // One measurement engine (worker count from INTUNE_THREADS or the
    // machine) serves learning and evaluation; its cost cache means cells
    // measured while autotuning landmarks are never re-run.
    let engine = Engine::from_env();
    let result = learn(&program, &train.inputs, &options, &engine).expect("learning failed");

    println!(
        "second level relabeled {:.0}% of the inputs; production classifier: {}",
        100.0 * result.relabel_fraction,
        result.candidates[result.chosen].name
    );

    // Evaluate against the oracles on held-out inputs (Table 1 row).
    let row = evaluate(&program, &result, &test.inputs, &engine).expect("evaluation failed");
    println!(
        "speedup over static oracle: dynamic-oracle {:.2}x | two-level {:.2}x \
         (with feature time {:.2}x)",
        row.dynamic_oracle, row.two_level, row.two_level_fx
    );

    // Deploy: classify one fresh input and run its landmark.
    let tuned = TunedProgram::new(&program, &result);
    let fresh = &test.inputs[0];
    let (landmark, feature_cost) = tuned.select(fresh);
    let (report, _) = tuned.run(fresh);
    println!(
        "fresh input (n = {}): chose landmark {} after {:.0} feature-extraction \
         work units; sorted at cost {:.0}",
        fresh.len(),
        landmark,
        feature_cost,
        report.cost
    );

    println!(
        "measurement engine ({} workers): {}",
        engine.threads(),
        engine.stats()
    );
}
