//! End-to-end integration tests: the full two-level pipeline over real
//! benchmarks at tiny scale, checking the orderings the paper's Table 1
//! establishes.

use intune::autotuner::TunerOptions;
use intune::binpacklib::{BinPacking, PackCorpus};
use intune::exec::Engine;
use intune::learning::pipeline::{evaluate, learn};
use intune::learning::selection::SelectionOptions;
use intune::learning::{Level1Options, TwoLevelOptions};
use intune::ml::TreeOptions;
use intune::sortlib::{PolySort, SortCorpus};

fn tiny_options(seed: u64) -> TwoLevelOptions {
    TwoLevelOptions {
        level1: Level1Options {
            clusters: 4,
            tuner: TunerOptions {
                population: 8,
                generations: 5,
                ..TunerOptions::quick(seed)
            },
            seed,
            ..Level1Options::default()
        },
        lambda: 0.5,
        selection: SelectionOptions {
            folds: 2,
            tree: TreeOptions {
                max_depth: 6,
                ..TreeOptions::default()
            },
            seed,
            ..SelectionOptions::default()
        },
        selection_fraction: 0.3,
    }
}

#[test]
fn sort_pipeline_beats_static_oracle_and_respects_oracle_bound() {
    let program = PolySort::new(512);
    let train = SortCorpus::synthetic(40, 64, 512, 1);
    let test = SortCorpus::synthetic(24, 64, 512, 2);
    let result = learn(
        &program,
        &train.inputs,
        &tiny_options(1),
        &Engine::from_env(),
    )
    .unwrap();
    let row = evaluate(&program, &result, &test.inputs, &Engine::from_env()).unwrap();

    assert!(
        row.dynamic_oracle >= 1.0 - 1e-9,
        "dynamic oracle below static: {}",
        row.dynamic_oracle
    );
    assert!(
        row.dynamic_oracle >= row.two_level - 1e-9,
        "classifier cannot beat the per-input oracle on a fixed-accuracy benchmark: {} vs {}",
        row.dynamic_oracle,
        row.two_level
    );
    // Sort is fixed-accuracy: everything trivially satisfies.
    assert_eq!(row.two_level_accuracy_pct, 100.0);
    assert_eq!(row.dynamic_accuracy_pct, 100.0);
    // The Figure 6 distribution is sorted ascending.
    for w in row.per_input_speedups.windows(2) {
        assert!(w[0] <= w[1] + 1e-12);
    }
}

#[test]
fn binpacking_pipeline_produces_consistent_row() {
    let program = BinPacking::new(300);
    let train = PackCorpus::synthetic(40, 100, 300, 3);
    let test = PackCorpus::synthetic(24, 100, 300, 4);
    let result = learn(
        &program,
        &train.inputs,
        &tiny_options(2),
        &Engine::from_env(),
    )
    .unwrap();
    let row = evaluate(&program, &result, &test.inputs, &Engine::from_env()).unwrap();

    assert!(
        row.dynamic_oracle > 0.5,
        "degenerate oracle {}",
        row.dynamic_oracle
    );
    assert!(
        row.two_level > 0.5,
        "degenerate two-level {}",
        row.two_level
    );
    // Feature extraction can only reduce effective speedup.
    assert!(row.two_level_fx <= row.two_level + 1e-9);
    assert!(row.one_level_fx <= row.one_level + 1e-9);
    // Accuracy percentages are percentages.
    for pct in [
        row.one_level_accuracy_pct,
        row.two_level_accuracy_pct,
        row.dynamic_accuracy_pct,
        row.static_accuracy_pct,
    ] {
        assert!((0.0..=100.0).contains(&pct), "pct {pct}");
    }
    // The dynamic oracle is the feasibility ceiling.
    assert!(row.dynamic_accuracy_pct >= row.two_level_accuracy_pct - 1e-9);
}

#[test]
fn learning_is_deterministic() {
    let program = PolySort::new(256);
    let train = SortCorpus::synthetic(30, 64, 256, 5);
    let a = learn(
        &program,
        &train.inputs,
        &tiny_options(7),
        &Engine::from_env(),
    )
    .unwrap();
    let b = learn(
        &program,
        &train.inputs,
        &tiny_options(7),
        &Engine::from_env(),
    )
    .unwrap();
    assert_eq!(a.level1.landmarks, b.level1.landmarks);
    assert_eq!(a.labels, b.labels);
    assert_eq!(a.chosen, b.chosen);
    assert_eq!(a.relabel_fraction, b.relabel_fraction);
}

#[test]
fn candidate_family_is_complete() {
    let program = PolySort::new(256);
    let train = SortCorpus::synthetic(30, 64, 256, 6);
    let result = learn(
        &program,
        &train.inputs,
        &tiny_options(3),
        &Engine::from_env(),
    )
    .unwrap();
    // max-apriori + per-landmark constants + (3+1)^4 - 1 = 255 subset trees
    // + incrementals.
    let names: Vec<&str> = result.candidates.iter().map(|c| c.name.as_str()).collect();
    assert!(names.contains(&"max-apriori"));
    assert!(names.iter().any(|n| n.starts_with("constant[")));
    assert!(names.iter().any(|n| n.starts_with("tree[")));
    assert!(names.iter().any(|n| n.starts_with("incremental[")));
    let trees = names.iter().filter(|n| n.starts_with("tree[")).count();
    assert_eq!(
        trees, 255,
        "one tree per non-empty subset of 4 props x 3 levels"
    );
    // Scores align with candidates.
    assert_eq!(result.candidates.len(), result.scores.len());
    assert!(result.chosen < result.candidates.len());
}

#[test]
fn cost_matrix_shape_and_signs() {
    // Fixed-accuracy benchmark: the diagonal is exactly zero (no accuracy
    // penalty term, and Cp_ii = 0 by construction).
    let program = PolySort::new(256);
    let train = SortCorpus::synthetic(30, 64, 256, 9);
    let result = learn(
        &program,
        &train.inputs,
        &tiny_options(4),
        &Engine::from_env(),
    )
    .unwrap();
    let k = result.level1.landmarks.len();
    assert_eq!(result.cost_matrix.len(), k);
    for (i, row) in result.cost_matrix.iter().enumerate() {
        assert_eq!(row.len(), k);
        assert!(row[i].abs() < 1e-9, "diagonal must be ~0, got {}", row[i]);
        for &c in row {
            assert!(c >= 0.0, "negative misclassification cost {c}");
        }
    }

    // Variable-accuracy benchmark: diagonals may carry accuracy penalties
    // (a label group can be infeasible under every landmark), but signs
    // and shape still hold, and the diagonal never exceeds the row max.
    let program = BinPacking::new(200);
    let train = PackCorpus::synthetic(30, 80, 200, 9);
    let result = learn(
        &program,
        &train.inputs,
        &tiny_options(4),
        &Engine::from_env(),
    )
    .unwrap();
    for row in &result.cost_matrix {
        let row_max = row.iter().cloned().fold(0.0, f64::max);
        for &c in row {
            assert!(c >= 0.0, "negative misclassification cost {c}");
            assert!(c <= row_max + 1e-9);
        }
    }
}
