//! Thread-count determinism: the measurement engine must produce
//! bit-identical pipeline artifacts at 1 and 4 worker threads. CI enforces
//! the same property end-to-end by diffing the `table1` binary's CSV under
//! `INTUNE_THREADS=1` vs `INTUNE_THREADS=4`; this test is the in-process
//! guard in front of that job step.

use intune::eval::{run_case_with, SuiteConfig, TestCase};
use intune::exec::Engine;

fn tiny() -> SuiteConfig {
    SuiteConfig {
        train: 24,
        test: 16,
        clusters: 4,
        ea_population: 8,
        ea_generations: 4,
        folds: 2,
        sort_n: (64, 256),
        cluster_n: (60, 120),
        pack_n: (40, 120),
        svd_n: (8, 12),
        pde2_sizes: vec![7],
        pde3_sizes: vec![3],
        ..SuiteConfig::ci()
    }
}

/// The CSV row the `table1` binary would write for an outcome — compared
/// as rendered strings so any formatting-visible drift fails the test.
fn csv_row(outcome: &intune::eval::CaseOutcome) -> Vec<String> {
    let r = &outcome.row;
    vec![
        r.name.clone(),
        format!("{:.4}", r.dynamic_oracle),
        format!("{:.4}", r.two_level),
        format!("{:.4}", r.two_level_fx),
        format!("{:.4}", r.one_level),
        format!("{:.4}", r.one_level_fx),
        format!("{:.2}", r.one_level_accuracy_pct),
        format!("{:.2}", r.two_level_accuracy_pct),
        format!("{:.4}", r.relabel_fraction),
        r.production_classifier.clone(),
    ]
}

#[test]
fn suite_rows_byte_identical_at_1_and_4_workers() {
    let cfg = tiny();
    let serial = Engine::new(1);
    let pooled = Engine::new(4);
    for case in [TestCase::Sort2, TestCase::Binpacking, TestCase::Svd] {
        let a = run_case_with(case, &cfg, &serial).unwrap();
        let b = run_case_with(case, &cfg, &pooled).unwrap();
        assert_eq!(csv_row(&a), csv_row(&b), "case {}", case.name());
        // Beyond the rendered row: the raw per-input distributions must be
        // bitwise equal, not merely equal after rounding.
        let bits = |xs: &[f64]| xs.iter().map(|x| x.to_bits()).collect::<Vec<u64>>();
        assert_eq!(
            bits(&a.row.per_input_speedups),
            bits(&b.row.per_input_speedups),
            "case {}",
            case.name()
        );
        // Deterministic engine accounting (steals excluded by design).
        assert_eq!(a.engine.cells_measured, b.engine.cells_measured);
        assert_eq!(a.engine.cache_hits, b.engine.cache_hits);
        assert_eq!(a.engine.dedup_saved, b.engine.dedup_saved);
    }
}

#[test]
fn warm_cache_rate_is_nonzero_and_thread_invariant() {
    let cfg = tiny();
    let a = run_case_with(TestCase::Sort2, &cfg, &Engine::new(1)).unwrap();
    let b = run_case_with(TestCase::Sort2, &cfg, &Engine::new(4)).unwrap();
    assert!(a.engine.cache_hits > 0, "stats: {}", a.engine);
    assert_eq!(a.engine.hit_rate().to_bits(), b.engine.hit_rate().to_bits());
}
