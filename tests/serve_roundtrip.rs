//! The acceptance test of the serving subsystem: an artifact saved from
//! `learn()` on each of the eight Table-1 cases reloads (from disk) and
//! produces byte-identical selections on a fresh corpus, while corrupted
//! and wrong-schema-version artifacts are rejected with a typed
//! `Error::Artifact`.

use intune_core::{codec, Benchmark, Error};
use intune_eval::{visit_case, CaseVisitor, SuiteConfig, TestCase};
use intune_exec::Engine;
use intune_learning::pipeline::{learn, TunedProgram};
use intune_learning::TwoLevelOptions;
use intune_serve::{
    ModelArtifact, SelectorService, ServeOptions, ARTIFACT_SCHEMA, ARTIFACT_VERSION,
};
use std::path::PathBuf;

fn micro() -> SuiteConfig {
    SuiteConfig {
        train: 16,
        test: 8,
        clusters: 3,
        ea_population: 6,
        ea_generations: 3,
        folds: 2,
        sort_n: (64, 256),
        cluster_n: (60, 120),
        pack_n: (60, 150),
        svd_n: (8, 12),
        pde2_sizes: vec![7],
        pde3_sizes: vec![3],
        ..SuiteConfig::ci()
    }
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("intune-roundtrip-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Trains a case, ships its artifact through disk, and checks the loaded
/// model selects identically to the in-process one on the held-out
/// (fresh) corpus — through both `TunedProgram` and `SelectorService`.
struct RoundTrip {
    dir: PathBuf,
}

impl CaseVisitor for RoundTrip {
    type Output = ();

    fn visit<B: Benchmark + Sync>(
        &mut self,
        case: TestCase,
        benchmark: &B,
        train: &[B::Input],
        test: &[B::Input],
        opts: &TwoLevelOptions,
        engine: &Engine,
    ) -> intune_core::Result<()>
    where
        B::Input: Sync,
    {
        let result = learn(benchmark, train, opts, engine)?;
        let artifact = ModelArtifact::export(benchmark, &result);
        let path = self.dir.join(format!("{}.model.json", case.name()));
        artifact.save(&path)?;
        let loaded = ModelArtifact::load(&path)?;
        assert_eq!(loaded, artifact, "{}: field-level equality", case.name());
        assert_eq!(
            loaded.to_document(),
            artifact.to_document(),
            "{}: canonical documents are byte-identical",
            case.name()
        );

        let trained = TunedProgram::new(benchmark, &result);
        let served = loaded.tuned(benchmark)?;
        let service = SelectorService::new(benchmark, loaded, ServeOptions::default())?;
        let batch = service.select_batch(test);
        for (i, input) in test.iter().enumerate() {
            let expect = trained.select(input);
            assert_eq!(
                served.select(input),
                expect,
                "{}: TunedProgram from loaded artifact diverged on input {i}",
                case.name()
            );
            assert_eq!(
                (batch[i].landmark, batch[i].extraction_cost),
                expect,
                "{}: SelectorService diverged on input {i}",
                case.name()
            );
        }
        Ok(())
    }
}

#[test]
fn all_eight_cases_round_trip_byte_identically() {
    let dir = tmp_dir("cases");
    let engine = Engine::serial();
    let cfg = micro();
    for case in TestCase::all() {
        visit_case(case, &cfg, &engine, &mut RoundTrip { dir: dir.clone() })
            .unwrap_or_else(|e| panic!("{}: {e}", case.name()));
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// A visitor that exports one case's artifact document for tamper tests.
struct ExportDoc;

impl CaseVisitor for ExportDoc {
    type Output = String;

    fn visit<B: Benchmark + Sync>(
        &mut self,
        _case: TestCase,
        benchmark: &B,
        train: &[B::Input],
        _test: &[B::Input],
        opts: &TwoLevelOptions,
        engine: &Engine,
    ) -> intune_core::Result<String>
    where
        B::Input: Sync,
    {
        let result = learn(benchmark, train, opts, engine)?;
        Ok(ModelArtifact::export(benchmark, &result).to_document())
    }
}

#[test]
fn corrupted_and_stale_artifacts_are_rejected_with_typed_errors() {
    let engine = Engine::serial();
    let text = visit_case(TestCase::Sort2, &micro(), &engine, &mut ExportDoc).unwrap();

    // Corrupted payload byte → checksum mismatch.
    let tampered = text.replacen("\"landmarks\"", "\"landmorks\"", 1);
    assert_ne!(tampered, text);
    let err = ModelArtifact::from_document(&tampered).unwrap_err();
    assert!(matches!(err, Error::Artifact { .. }), "{err:?}");
    assert!(err.to_string().contains("checksum"), "{err}");

    // Old/foreign schema versions → typed rejection, never a parse.
    let payload = codec::decode_document(&text, ARTIFACT_SCHEMA, ARTIFACT_VERSION).unwrap();
    for stale in [0, ARTIFACT_VERSION + 1] {
        let doc = codec::encode_document(ARTIFACT_SCHEMA, stale, payload.clone());
        let err = ModelArtifact::from_document(&doc).unwrap_err();
        assert!(matches!(err, Error::Artifact { .. }), "{err:?}");
        assert!(err.to_string().contains("version"), "{err}");
    }

    // Truncation → typed rejection.
    let err = ModelArtifact::from_document(&text[..text.len() / 2]).unwrap_err();
    assert!(matches!(err, Error::Artifact { .. }), "{err:?}");
}
