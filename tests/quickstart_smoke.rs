//! Tiny-scale smoke test for the `examples/quickstart.rs` path: learn →
//! classify → deploy on `PolySort`. This is the fast guard in front of the
//! heavier `tests/two_level_end_to_end.rs` suite — it exercises the same
//! pipeline surface in well under a second.

use intune::autotuner::TunerOptions;
use intune::exec::Engine;
use intune::learning::pipeline::{evaluate, learn, TunedProgram};
use intune::learning::{Level1Options, TwoLevelOptions};
use intune::sortlib::{PolySort, SortCorpus};

#[test]
fn quickstart_pipeline_smoke() {
    let program = PolySort::new(512);
    let train = SortCorpus::synthetic(24, 64, 512, 1);
    let test = SortCorpus::synthetic(8, 64, 512, 2);

    let options = TwoLevelOptions {
        level1: Level1Options {
            clusters: 3,
            tuner: TunerOptions {
                population: 6,
                generations: 3,
                ..TunerOptions::quick(7)
            },
            ..Level1Options::default()
        },
        ..TwoLevelOptions::default()
    };

    let result = learn(&program, &train.inputs, &options, &Engine::from_env()).unwrap();

    // The learner must produce landmarks, a valid chosen classifier, and a
    // sane relabel fraction.
    assert!(!result.level1.landmarks.is_empty(), "no landmarks learned");
    assert!(
        result.chosen < result.candidates.len(),
        "chosen classifier index {} out of range {}",
        result.chosen,
        result.candidates.len()
    );
    assert!(
        (0.0..=1.0).contains(&result.relabel_fraction),
        "relabel fraction {} outside [0, 1]",
        result.relabel_fraction
    );

    // Evaluation against the oracles must yield finite, positive speedups,
    // and the dynamic oracle can never lose to the static oracle.
    let row = evaluate(&program, &result, &test.inputs, &Engine::from_env()).unwrap();
    for (name, v) in [
        ("dynamic_oracle", row.dynamic_oracle),
        ("two_level", row.two_level),
        ("two_level_fx", row.two_level_fx),
    ] {
        assert!(v.is_finite() && v > 0.0, "{name} speedup not positive: {v}");
    }
    assert!(
        row.dynamic_oracle >= 1.0 - 1e-9,
        "dynamic oracle must dominate the static oracle, got {}",
        row.dynamic_oracle
    );

    // Deployment: select + run a fresh input through the tuned program.
    let tuned = TunedProgram::new(&program, &result);
    let fresh = &test.inputs[0];
    let (landmark, feature_cost) = tuned.select(fresh);
    assert!(
        landmark < result.level1.landmarks.len(),
        "selected landmark {} out of range {}",
        landmark,
        result.level1.landmarks.len()
    );
    assert!(
        feature_cost.is_finite() && feature_cost >= 0.0,
        "feature extraction cost must be non-negative, got {feature_cost}"
    );
    let (report, _) = tuned.run(fresh);
    assert!(
        report.cost.is_finite() && report.cost > 0.0,
        "deployed run must report positive cost, got {}",
        report.cost
    );
}

#[test]
fn quickstart_pipeline_deterministic() {
    // The whole pipeline is seeded: learning twice with identical options
    // must choose the same classifier and landmarks.
    let program = PolySort::new(256);
    let train = SortCorpus::synthetic(16, 64, 256, 3);
    let options = TwoLevelOptions {
        level1: Level1Options {
            clusters: 2,
            tuner: TunerOptions {
                population: 4,
                generations: 2,
                ..TunerOptions::quick(11)
            },
            ..Level1Options::default()
        },
        ..TwoLevelOptions::default()
    };

    let a = learn(&program, &train.inputs, &options, &Engine::new(1)).unwrap();
    let b = learn(&program, &train.inputs, &options, &Engine::new(4)).unwrap();
    assert_eq!(
        a.chosen, b.chosen,
        "classifier choice must be deterministic"
    );
    assert_eq!(
        a.level1.landmarks.len(),
        b.level1.landmarks.len(),
        "landmark count must be deterministic"
    );
    assert_eq!(
        a.relabel_fraction, b.relabel_fraction,
        "relabel fraction must be deterministic"
    );
}
