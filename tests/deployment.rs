//! Deployment-artifact integration tests: `TunedProgram` classify-and-run
//! round trips across benchmarks (Figure 3's deployment path).

use intune::autotuner::TunerOptions;
use intune::clusterlib::{ClusterCorpus, Clustering};
use intune::core::Benchmark;
use intune::exec::Engine;
use intune::learning::pipeline::{learn, TunedProgram};
use intune::learning::selection::SelectionOptions;
use intune::learning::{Level1Options, TwoLevelOptions};
use intune::sortlib::{PolySort, SortCorpus};

fn options(seed: u64) -> TwoLevelOptions {
    TwoLevelOptions {
        level1: Level1Options {
            clusters: 4,
            tuner: TunerOptions {
                population: 8,
                generations: 4,
                ..TunerOptions::quick(seed)
            },
            seed,
            ..Level1Options::default()
        },
        selection: SelectionOptions {
            folds: 2,
            ..SelectionOptions::default()
        },
        ..TwoLevelOptions::default()
    }
}

#[test]
fn sort_deployment_sorts_and_reports_cost() {
    let program = PolySort::new(512);
    let train = SortCorpus::synthetic(32, 64, 512, 11);
    let result = learn(&program, &train.inputs, &options(1), &Engine::from_env()).unwrap();
    let tuned = TunedProgram::new(&program, &result);

    let fresh = SortCorpus::synthetic(10, 64, 512, 12);
    for input in &fresh.inputs {
        let (landmark, fx) = tuned.select(input);
        assert!(landmark < tuned.landmarks().len());
        assert!(fx >= 0.0);
        // The chosen landmark must actually sort.
        let (sorted, cost) = program.sort(&tuned.landmarks()[landmark], input);
        let mut expect = input.clone();
        expect.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(sorted, expect);
        assert!(cost > 0.0);
    }
}

#[test]
fn clustering_deployment_meets_threshold_mostly() {
    let program = Clustering::new();
    let train = ClusterCorpus::synthetic(32, 80, 200, 21);
    let result = learn(&program, &train.inputs, &options(2), &Engine::from_env()).unwrap();
    let tuned = TunedProgram::new(&program, &result);

    let fresh = ClusterCorpus::synthetic(12, 80, 200, 22);
    let mut met = 0;
    for input in &fresh.inputs {
        let (report, fx) = tuned.run(input);
        assert!(fx >= 0.0);
        assert!(report.cost > 0.0);
        let accuracy = report.accuracy.expect("clustering is variable accuracy");
        if accuracy >= program.accuracy().unwrap().threshold {
            met += 1;
        }
    }
    // At tiny scale we tolerate slack, but the artifact must not be junk.
    assert!(
        met >= 8,
        "only {met}/12 deployments met the accuracy threshold"
    );
}

#[test]
fn lazy_selection_never_extracts_outside_production_subset() {
    let program = PolySort::new(512);
    let train = SortCorpus::synthetic(32, 64, 512, 31);
    let result = learn(&program, &train.inputs, &options(3), &Engine::from_env()).unwrap();
    let tuned = TunedProgram::new(&program, &result);
    let set = tuned.classifier().feature_set();

    let fresh = SortCorpus::synthetic(5, 64, 512, 32);
    for input in &fresh.inputs {
        // Reimplement selection with an instrumented extractor.
        let allowed: std::collections::HashSet<(usize, usize)> =
            set.iter().map(|id| (id.property, id.level)).collect();
        let (_, _) = tuned.classifier().classify_lazy(|p, l| {
            assert!(
                allowed.contains(&(p, l)),
                "classifier extracted feature ({p},{l}) outside its declared subset"
            );
            program.extract(p, l, input)
        });
    }
}
