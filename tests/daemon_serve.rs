//! The acceptance test of the selection daemon: a real Table-1 case
//! served over the `intune-wire/2` TCP protocol produces selections —
//! and a full evaluation row — **byte-identical** to the in-process
//! path; a staged shadow artifact with forced disagreement is
//! auto-rejected without ever answering a client; and the whole
//! load → stage → mirror → promote lifecycle works against live traffic.

use intune_core::{Benchmark, FeatureVector};
use intune_daemon::{Daemon, DaemonClient, DaemonOptions, ListenConfig, ShadowPolicy};
use intune_eval::{visit_case, CaseVisitor, SuiteConfig, TestCase};
use intune_exec::{CostCache, Engine};
use intune_learning::pipeline::{evaluate_with_backend, evaluate_with_cache, learn, TunedProgram};
use intune_learning::TwoLevelOptions;
use intune_serve::{ModelArtifact, ServeOptions};

fn micro() -> SuiteConfig {
    SuiteConfig {
        train: 16,
        test: 8,
        clusters: 3,
        ea_population: 6,
        ea_generations: 3,
        folds: 2,
        sort_n: (64, 256),
        cluster_n: (60, 120),
        pack_n: (60, 150),
        svd_n: (8, 12),
        pde2_sizes: vec![7],
        pde3_sizes: vec![3],
        ..SuiteConfig::ci()
    }
}

/// The daemon options every test serves under: the primary's fallback
/// is disabled (`drift_threshold: 1.0` can never be strictly exceeded)
/// so remote selections are pure classifier answers, while staged
/// shadows keep a live drift monitor that trips within one micro batch;
/// the promote gate is sized for micro traffic.
fn daemon_options() -> DaemonOptions {
    DaemonOptions {
        serve: ServeOptions {
            drift_threshold: 1.0,
            ..ServeOptions::default()
        },
        shadow_serve: ServeOptions {
            drift_threshold: 0.5,
            min_observations: 4,
            ..ServeOptions::default()
        },
        shadow: ShadowPolicy {
            min_mirrored: 8,
            min_agreement: 0.99,
        },
        trace: None,
        inject_faults: false,
        ..DaemonOptions::default()
    }
}

struct DaemonRoundTrip;

impl CaseVisitor for DaemonRoundTrip {
    type Output = ();

    fn visit<B: Benchmark + Sync>(
        &mut self,
        case: TestCase,
        benchmark: &B,
        train: &[B::Input],
        test: &[B::Input],
        opts: &TwoLevelOptions,
        engine: &Engine,
    ) -> intune_core::Result<()>
    where
        B::Input: Sync,
    {
        let name = case.name();
        let result = learn(benchmark, train, opts, engine)?;
        let artifact = ModelArtifact::export(benchmark, &result).with_revision(1);

        let daemon = Daemon::bind(artifact.clone(), daemon_options(), &ListenConfig::default())?;
        let addr = daemon.tcp_addr().to_string();
        let handle = daemon.spawn();
        let client = DaemonClient::connect(&addr)?;
        assert_eq!(client.info().benchmark, benchmark.name(), "{name}");

        // 1. Raw selections over the wire match in-process selection
        //    bit for bit (landmark and extraction-cost float).
        let features: Vec<FeatureVector> = test.iter().map(|i| benchmark.extract_all(i)).collect();
        let remote = client.select_batch(&features)?;
        let tuned = TunedProgram::new(benchmark, &result);
        for (i, input) in test.iter().enumerate() {
            let (landmark, cost) = tuned.select(input);
            assert_eq!(remote[i].landmark, landmark, "{name}: input {i}");
            assert_eq!(
                remote[i].extraction_cost.to_bits(),
                cost.to_bits(),
                "{name}: input {i} extraction cost"
            );
        }

        // 2. A whole evaluation row scored through the daemon is
        //    byte-identical to the in-process row.
        let mut local_cache = CostCache::new();
        let local = evaluate_with_cache(benchmark, &result, test, engine, &mut local_cache)?;
        let mut remote_cache = CostCache::new();
        let remote_row =
            evaluate_with_backend(benchmark, &result, test, engine, &mut remote_cache, &client)?;
        assert_eq!(
            local.two_level.to_bits(),
            remote_row.two_level.to_bits(),
            "{name}: two-level speedup"
        );
        assert_eq!(
            local.two_level_fx.to_bits(),
            remote_row.two_level_fx.to_bits(),
            "{name}: two-level + extraction speedup"
        );
        assert_eq!(
            local.two_level_accuracy_pct, remote_row.two_level_accuracy_pct,
            "{name}: accuracy column"
        );

        client.shutdown()?;
        handle.join()?;
        Ok(())
    }
}

#[test]
fn remote_selection_is_byte_identical_to_in_process() {
    let engine = Engine::serial();
    let cfg = micro();
    // Two case families are enough here (feature shapes differ); the CI
    // job re-proves sort across two real OS processes.
    for case in [TestCase::Sort2, TestCase::Binpacking] {
        visit_case(case, &cfg, &engine, &mut DaemonRoundTrip)
            .unwrap_or_else(|e| panic!("{}: {e}", case.name()));
    }
}

struct ShadowLifecycle;

impl CaseVisitor for ShadowLifecycle {
    type Output = ();

    fn visit<B: Benchmark + Sync>(
        &mut self,
        case: TestCase,
        benchmark: &B,
        train: &[B::Input],
        test: &[B::Input],
        opts: &TwoLevelOptions,
        engine: &Engine,
    ) -> intune_core::Result<()>
    where
        B::Input: Sync,
    {
        let name = case.name();
        let result = learn(benchmark, train, opts, engine)?;
        let artifact = ModelArtifact::export(benchmark, &result).with_revision(1);
        let features: Vec<FeatureVector> = test.iter().map(|i| benchmark.extract_all(i)).collect();

        let daemon = Daemon::bind(artifact.clone(), daemon_options(), &ListenConfig::default())?;
        let addr = daemon.tcp_addr().to_string();
        let handle = daemon.spawn();
        let client = DaemonClient::connect(&addr)?;

        let baseline = client.select_batch(&features)?;

        // A "drifted retrain": same model, but its cluster geometry says
        // every production input is out-of-distribution — the shadow's
        // monitor must trip on the first mirrored batch and the daemon
        // must auto-reject it, never letting it answer a client.
        let dims = artifact.feature_slots();
        let mut drifter = artifact.clone().with_revision(2);
        drifter.centroids = vec![vec![1e12; dims]];
        drifter.dispersion = vec![1e-9];
        client.load_artifact(&drifter)?;

        let during = client.select_batch(&features)?;
        assert_eq!(
            during, baseline,
            "{name}: clients always get primary answers"
        );
        let stats = client.stats()?;
        assert!(
            stats.shadow.is_none(),
            "{name}: drift-tripped shadow must be auto-rejected"
        );
        assert_eq!(stats.shadow_rejections, 1, "{name}");
        assert_eq!(stats.revision, 1, "{name}: primary untouched");
        let err = client.promote().unwrap_err();
        assert!(err.to_string().contains("no shadow"), "{name}: {err}");

        // A faithful retrain (identical model, bumped revision) mirrors
        // with full agreement and promotes cleanly.
        client.load_artifact(&artifact.clone().with_revision(3))?;
        client.select_batch(&features)?;
        let shadow = client.stats()?.shadow.expect("staged");
        assert_eq!(shadow.agreement_rate, 1.0, "{name}");
        assert_eq!(client.promote()?, 3, "{name}");
        let after = client.select_batch(&features)?;
        assert_eq!(
            after, baseline,
            "{name}: promoted identical model serves identically"
        );

        client.shutdown()?;
        handle.join()?;
        Ok(())
    }
}

#[test]
fn forced_disagreement_shadow_is_auto_rejected_and_faithful_shadow_promotes() {
    let engine = Engine::serial();
    visit_case(TestCase::Sort2, &micro(), &engine, &mut ShadowLifecycle).unwrap();
}
