//! Property-based tests (proptest) on cross-crate invariants.

use intune::binpacklib::Heuristic;
use intune::core::ExecutionReport;
use intune::core::{Benchmark, ConfigSpace, Selector, SelectorSpec};
use intune::learning::labels::{cost_matrix, label_inputs_with_margin};
use intune::learning::PerfMatrix;
use intune::ml::{KMeans, KMeansOptions, ZScore};
use intune::sortlib::PolySort;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every configuration of the sort polyalgorithm sorts every input.
    #[test]
    fn any_sort_config_sorts_any_input(
        seed in 0u64..1000,
        data in prop::collection::vec(-1e6f64..1e6, 0..300),
    ) {
        use rand::SeedableRng;
        let program = PolySort::new(512);
        let space = program.space();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let cfg = space.random(&mut rng);
        let (sorted, cost) = program.sort(&cfg, &data);
        let mut expect = data.clone();
        expect.sort_by(|a, b| a.partial_cmp(b).unwrap());
        prop_assert_eq!(sorted, expect);
        prop_assert!(cost >= 0.0);
    }

    /// Every heuristic packs every valid instance validly, and occupancy is
    /// in (0, 1].
    #[test]
    fn any_heuristic_packs_validly(
        items in prop::collection::vec(0.01f64..1.0, 1..120),
        h_idx in 0usize..13,
    ) {
        let h = Heuristic::ALL[h_idx];
        let packing = h.pack(&items);
        packing.assert_valid(items.len());
        prop_assert!(packing.occupancy() > 0.0 && packing.occupancy() <= 1.0 + 1e-9);
    }

    /// Selectors are total: any genome decodes to a selector that returns a
    /// valid algorithm for any size.
    #[test]
    fn selectors_are_total(seed in 0u64..1000, n in 0usize..100_000) {
        use rand::SeedableRng;
        let spec = SelectorSpec::new("s", 4, 1 << 16, 7);
        let space = spec.add_to(ConfigSpace::builder()).build();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let cfg = space.random(&mut rng);
        let sel = Selector::from_config(&spec, &space, &cfg).unwrap();
        prop_assert!(sel.decide(n) < 7);
    }

    /// Mutation and crossover are closed over the space.
    #[test]
    fn search_operators_stay_in_space(seed in 0u64..500, rate in 0.0f64..1.0) {
        use rand::SeedableRng;
        let program = PolySort::new(1024);
        let space = program.space();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let a = space.random(&mut rng);
        let b = space.random(&mut rng);
        let m = space.mutate(&a, rate, &mut rng);
        let c = space.crossover(&a, &b, &mut rng);
        prop_assert!(space.validate(&m).is_ok());
        prop_assert!(space.validate(&c).is_ok());
    }

    /// The label rule always picks a feasible landmark when one exists.
    #[test]
    fn labels_prefer_feasible(
        costs in prop::collection::vec(
            prop::collection::vec(1.0f64..100.0, 4), 3),
        accs in prop::collection::vec(
            prop::collection::vec(0.0f64..1.0, 4), 3),
        margin in 0.0f64..0.5,
    ) {
        let rows: Vec<Vec<ExecutionReport>> = costs
            .iter()
            .zip(&accs)
            .map(|(cs, asr)| {
                cs.iter()
                    .zip(asr)
                    .map(|(&c, &a)| ExecutionReport::with_accuracy(c, a))
                    .collect()
            })
            .collect();
        let perf = PerfMatrix::from_reports(rows);
        let threshold = 0.5;
        let labels = label_inputs_with_margin(&perf, Some(threshold), margin);
        for (i, &l) in labels.iter().enumerate() {
            let any_feasible = (0..3).any(|lm| perf.meets(lm, i, Some(threshold)));
            if any_feasible {
                prop_assert!(
                    perf.meets(l, i, Some(threshold)),
                    "label {} infeasible on input {} though a feasible landmark exists", l, i
                );
            }
        }
    }

    /// Cost matrices are non-negative with ~zero diagonals for time-only
    /// problems.
    #[test]
    fn cost_matrix_nonnegative(
        costs in prop::collection::vec(
            prop::collection::vec(1.0f64..100.0, 6), 3),
        lambda in 0.0f64..1.0,
    ) {
        let rows: Vec<Vec<ExecutionReport>> = costs
            .iter()
            .map(|cs| cs.iter().map(|&c| ExecutionReport::of_cost(c)).collect())
            .collect();
        let perf = PerfMatrix::from_reports(rows);
        let labels = label_inputs_with_margin(&perf, None, 0.0);
        let cm = cost_matrix(&perf, &labels, None, lambda);
        for (i, row) in cm.iter().enumerate() {
            prop_assert!(row[i].abs() < 1e-9);
            for &c in row {
                prop_assert!(c >= 0.0);
            }
        }
    }

    /// K-means invariants: labels in range, centroid count respected,
    /// inertia finite and non-negative.
    #[test]
    fn kmeans_invariants(
        points in prop::collection::vec(
            prop::collection::vec(-100.0f64..100.0, 3), 5..60),
        k in 1usize..8,
    ) {
        let km = KMeans::fit(&points, KMeansOptions { k, ..KMeansOptions::default() });
        prop_assert!(km.centroids().len() <= k.min(points.len()).max(1));
        prop_assert_eq!(km.labels().len(), points.len());
        for &l in km.labels() {
            prop_assert!(l < km.centroids().len());
        }
        prop_assert!(km.inertia() >= 0.0 && km.inertia().is_finite());
    }

    /// Z-score round trip recovers data (non-constant dimensions).
    #[test]
    fn zscore_round_trip(
        rows in prop::collection::vec(
            prop::collection::vec(-1e3f64..1e3, 4), 2..40),
    ) {
        let z = ZScore::fit(&rows);
        for row in &rows {
            let back = z.inverse(&z.transform(row));
            for (d, (a, b)) in back.iter().zip(row).enumerate() {
                // Constant dimensions legitimately collapse to their mean.
                let col: Vec<f64> = rows.iter().map(|r| r[d]).collect();
                let constant = col.iter().all(|v| (v - col[0]).abs() < 1e-12);
                if !constant {
                    prop_assert!((a - b).abs() < 1e-6 * (1.0 + b.abs()));
                }
            }
        }
    }

    /// Feature extraction is deterministic and cost-positive for the sort
    /// benchmark across arbitrary inputs.
    #[test]
    fn sort_features_deterministic(
        data in prop::collection::vec(-1e6f64..1e6, 2..400),
        property in 0usize..4,
        level in 0usize..3,
    ) {
        let program = PolySort::new(512);
        let a = program.extract(property, level, &data);
        let b = program.extract(property, level, &data);
        prop_assert_eq!(a, b);
        prop_assert!(a.cost > 0.0);
        prop_assert!(a.value.is_finite());
    }
}
