//! The continuous-learning acceptance test: the closed loop.
//!
//! A daemon serving artifact revision N is fed inputs drawn from a
//! *shifted* distribution (traced over the wire with their raw-input
//! payloads). The retrain controller compacts the daemon's request
//! journal into a corpus, retrains over base + journaled inputs, pushes
//! revision N+1 through the existing `LoadArtifact`/`Promote` wire path,
//! and the daemon's **shadow gate — not this test — makes the promote
//! decision** (mirrored volume + an armed shadow drift monitor). The
//! daemon never restarts; at the end it serves revision N+1 whose
//! `trained_inputs` counts the journaled inputs.

use intune_autotuner::TunerOptions;
use intune_core::{
    AccuracySpec, Benchmark, ConfigSpace, Configuration, ExecutionReport, FeatureDef, FeatureSample,
};
use intune_daemon::{Daemon, DaemonClient, DaemonOptions, ListenConfig, ShadowPolicy};
use intune_exec::Engine;
use intune_learning::pipeline::learn;
use intune_learning::{Level1Options, TwoLevelOptions};
use intune_retrain::{
    compact_journal, retrain_from_corpus, run_cycle, AdmissionPolicy, CorpusStore, CycleOutcome,
    RetrainConfig, RetrainPolicy,
};
use intune_serve::{JournalOptions, JournalSink, ModelArtifact, ServeOptions, TraceSink};
use std::path::PathBuf;
use std::sync::Arc;

/// Three input kinds; the matching switch value is 3–5× cheaper; the kind
/// is readable from a cheap feature and the size from a second feature —
/// so distinct inputs have distinct journal identities, and inputs
/// round-trip through `encode_input`/`decode_input` for retraining.
struct Synthetic;

impl Benchmark for Synthetic {
    type Input = (usize, f64);

    fn name(&self) -> &str {
        "synthetic"
    }

    fn space(&self) -> ConfigSpace {
        ConfigSpace::builder()
            .switch("alg", 3)
            .int("knob", 0, 10)
            .build()
    }

    fn run(&self, cfg: &Configuration, input: &Self::Input) -> ExecutionReport {
        let (kind, size) = *input;
        let alg = cfg.choice(0);
        let penalty = 1.0 + 2.0 * ((alg + 3 - kind) % 3) as f64;
        ExecutionReport::with_accuracy(size * penalty, 1.0)
    }

    fn accuracy(&self) -> Option<AccuracySpec> {
        Some(AccuracySpec::new(0.5))
    }

    fn properties(&self) -> Vec<FeatureDef> {
        vec![FeatureDef::new("kind", 2), FeatureDef::new("size", 1)]
    }

    fn extract(&self, property: usize, level: usize, input: &Self::Input) -> FeatureSample {
        match property {
            0 => FeatureSample::new(input.0 as f64, 1.0 + level as f64),
            _ => FeatureSample::new(input.1, 2.0),
        }
    }

    fn encode_input(&self, input: &Self::Input) -> Option<serde_json::Value> {
        Some(serde_json::Value::Array(vec![
            serde_json::Value::UInt(input.0 as u64),
            serde_json::Value::Float(input.1),
        ]))
    }

    fn decode_input(&self, payload: &serde_json::Value) -> Option<Self::Input> {
        let items = payload.as_array()?;
        if items.len() != 2 {
            return None;
        }
        Some((items[0].as_u64()? as usize, items[1].as_f64()?))
    }
}

/// The distribution the model was trained on: sizes 100–180.
fn base_corpus(n: usize) -> Vec<(usize, f64)> {
    (0..n)
        .map(|i| (i % 3, 100.0 + ((i * 17) % 9) as f64 * 10.0))
        .collect()
}

/// The shifted production distribution: same kinds, sizes 200–315 — far
/// outside the base cluster geometry, so the primary's drift probes flag
/// them and the journal records the evidence.
fn shifted_corpus(n: usize) -> Vec<(usize, f64)> {
    (0..n)
        .map(|i| (i % 3, 200.0 + (i % 24) as f64 * 5.0))
        .collect()
}

fn train_options() -> TwoLevelOptions {
    TwoLevelOptions {
        level1: Level1Options {
            clusters: 3,
            tuner: TunerOptions {
                population: 8,
                generations: 5,
                ..TunerOptions::quick(1)
            },
            ..Level1Options::default()
        },
        ..TwoLevelOptions::default()
    }
}

fn tmp(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "intune-continuous-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn drifted_traffic_retrains_and_promotes_revision_n_plus_one_without_a_restart() {
    let dir = tmp("loop");
    let journal_dir = dir.join("journal");
    let corpus_path = dir.join("corpus.json");
    let cache_path = dir.join("retrain.cache.json");

    // Revision 0: trained on the base distribution only.
    let b = Synthetic;
    let base = base_corpus(24);
    let engine = Engine::serial();
    let opts = train_options();
    let result = learn(&b, &base, &opts, &engine).expect("base training");
    let artifact = ModelArtifact::export(&b, &result);
    assert_eq!(artifact.revision, 0);
    assert_eq!(artifact.trained_inputs, 24);

    // One daemon process for the whole test — the loop must close with
    // zero restarts. The primary journals everything it serves; staged
    // shadows keep an ARMED drift monitor (a candidate that considers
    // production traffic out-of-distribution is auto-rejected), and the
    // promote gate requires mirrored volume. Landmark indices of
    // independently-trained models are not comparable, so the agreement
    // bar is not part of this gate.
    let sink = Arc::new(
        JournalSink::open(
            &journal_dir,
            JournalOptions {
                segment_max_records: 8,
                ..JournalOptions::default()
            },
        )
        .expect("journal opens"),
    );
    let daemon = Daemon::bind(
        artifact,
        DaemonOptions {
            serve: ServeOptions {
                drift_threshold: 1.0, // fallback pinned off; probes still record
                ..ServeOptions::default()
            },
            shadow_serve: ServeOptions {
                drift_threshold: 0.5,
                min_observations: 8,
                ..ServeOptions::default()
            },
            shadow: ShadowPolicy {
                min_mirrored: 24,
                min_agreement: 0.0,
            },
            trace: Some(sink.clone() as Arc<dyn TraceSink>),
            inject_faults: false,
            ..DaemonOptions::default()
        },
        &ListenConfig::default(),
    )
    .expect("daemon binds");
    let addr = daemon.tcp_addr().to_string();
    let handle = daemon.spawn();
    let client = DaemonClient::connect(&addr).expect("client connects");
    assert_eq!(client.info().revision, 0);

    // Production traffic from the shifted distribution, traced with raw
    // inputs. The primary's drift probes must flag the shift.
    let shifted = shifted_corpus(24);
    for chunk in shifted.chunks(8) {
        let features: Vec<_> = chunk.iter().map(|i| b.extract_all(i)).collect();
        let payloads: Vec<_> = chunk
            .iter()
            .map(|i| b.encode_input(i).expect("encodable"))
            .collect();
        client
            .select_batch_traced(&features, &payloads)
            .expect("traced batch");
    }
    let observed = client.stats().expect("stats");
    assert_eq!(observed.journaled, 24, "every served selection journaled");
    assert!(
        observed.primary.ood > 0,
        "shifted sizes must probe out-of-distribution: {:?}",
        observed.primary
    );

    // One controller cycle: compact → decide → retrain → push → the
    // daemon's gate promotes.
    let cfg = RetrainConfig {
        journal_dir: journal_dir.clone(),
        corpus_path: corpus_path.clone(),
        cache_path: Some(cache_path.clone()),
        capacity: 256,
        policy: RetrainPolicy {
            min_new_inputs: 8,
            drift_trip_rate: 1.1, // volume, not drift, drives this test
            min_drift_observations: u64::MAX,
            cooldown_records: 0,
        },
        mirror_target: 24,
        mirror_batch: 8,
        remove_compacted: true,
        admission: AdmissionPolicy::default(),
        events: None,
    };
    let report = run_cycle(&b, &base, &opts, &engine, &cfg, &client).expect("cycle runs");
    assert_eq!(report.compaction.records, 24);
    assert_eq!(report.compaction.added, 24, "24 distinct shifted inputs");
    let CycleOutcome::Promoted {
        revision,
        trained_inputs,
        new_inputs,
        agreement_rate: _,
    } = &report.outcome
    else {
        panic!("expected promotion, got {:?}", report.outcome);
    };
    assert_eq!(*revision, 1, "revision N+1");
    assert_eq!(*new_inputs, 24, "every journaled input decoded");
    assert_eq!(
        *trained_inputs, 48,
        "trained_inputs counts base + journaled inputs"
    );
    let stats = report.retrain.expect("retrain ran");
    assert_eq!(stats.merged_inputs, 48);
    assert_eq!(stats.skipped_payloads, 0);

    // The SAME daemon (no restart) now serves revision 1 and reports the
    // promotion; the previously-shifted traffic is in-distribution for
    // the retrained geometry.
    let after = client.stats().expect("stats");
    assert_eq!(after.revision, 1, "daemon reports the promoted revision");
    assert_eq!(after.promotions, 1);
    assert_eq!(after.shadow_rejections, 0);
    let features: Vec<_> = shifted.iter().map(|i| b.extract_all(i)).collect();
    let again = client.select_batch(&features).expect("serving continues");
    assert_eq!(again.len(), 24);
    let rate_before = after.primary.drift_fraction();
    assert!(
        rate_before < 0.5,
        "retrained geometry covers the shifted inputs: {:?}",
        after.primary
    );

    // A second cycle idles: the first cycle's mirror echoes were
    // absorbed *quietly* (they re-read as stale now), and the
    // post-promote client traffic merges into existing entries — no new
    // retrainable inputs, no phantom drift evidence.
    let second = run_cycle(&b, &base, &opts, &engine, &cfg, &client).expect("second cycle");
    assert!(
        matches!(second.outcome, CycleOutcome::Idle { .. }),
        "echo traffic must not re-trigger retraining: {:?}",
        second.outcome
    );
    assert!(
        second.compaction.stale >= 24,
        "cycle 1's mirror echoes were already absorbed: {:?}",
        second.compaction
    );
    assert_eq!(
        second.compaction.added, 0,
        "no new unique inputs since the promote"
    );
    assert!(second.trigger.is_none());
    assert_eq!(client.stats().expect("stats").revision, 1);

    client.shutdown().expect("shutdown");
    handle.join().expect("daemon exits");

    // Determinism (the CI CSV-diff pattern, applied to artifacts):
    // retraining from the same persisted corpus at 1 vs 4 workers
    // produces byte-identical artifact documents.
    let corpus = CorpusStore::load(&corpus_path).expect("corpus persisted");
    let docs: Vec<String> = [1usize, 4]
        .iter()
        .map(|&threads| {
            retrain_from_corpus(&b, &base, &opts, &Engine::new(threads), &corpus, None, 9)
                .expect("retrain")
                .artifact
                .to_document()
        })
        .collect();
    assert_eq!(
        docs[0], docs[1],
        "same corpus, any worker count, same bytes"
    );

    std::fs::remove_dir_all(&dir).ok();
}

/// A *real* Table-1 case through the traced wire path: clustering inputs
/// (point sets with a precomputed canonical distance) journal via
/// `encode_input`, compact into a retraining corpus, and decode back to
/// inputs the benchmark treats identically — the same flow the sort and
/// bin-packing cases already support.
#[test]
fn clustering_inputs_flow_from_traced_wire_to_retraining_corpus() {
    use intune_clusterlib::{ClusterInputClass, Clustering};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let dir = tmp("cluster");
    let journal_dir = dir.join("journal");
    let b = Clustering::new();
    let mut rng = StdRng::seed_from_u64(11);
    let train: Vec<_> = (0..8)
        .map(|_| ClusterInputClass::Blobs { k: 3 }.generate(60, &mut rng))
        .collect();
    let engine = Engine::serial();
    let opts = train_options();
    let result = learn(&b, &train, &opts, &engine).expect("clustering trains");
    let artifact = ModelArtifact::export(&b, &result);

    let sink = Arc::new(
        JournalSink::open(&journal_dir, JournalOptions::default()).expect("journal opens"),
    );
    let daemon = Daemon::bind(
        artifact,
        DaemonOptions {
            serve: ServeOptions {
                drift_threshold: 1.0,
                ..ServeOptions::default()
            },
            trace: Some(sink.clone() as Arc<dyn TraceSink>),
            ..DaemonOptions::default()
        },
        &ListenConfig::default(),
    )
    .expect("daemon binds");
    let addr = daemon.tcp_addr().to_string();
    let handle = daemon.spawn();
    // Tenant-named handshake against a single-tenant daemon.
    let client = DaemonClient::connect_to(&addr, "clustering").expect("client connects");
    assert_eq!(client.info().benchmark, "clustering");

    // Production traffic from a different geometry, traced with raw
    // point sets.
    let served: Vec<_> = (0..6)
        .map(|_| ClusterInputClass::Uniform.generate(80, &mut rng))
        .collect();
    let features: Vec<_> = served.iter().map(|i| b.extract_all(i)).collect();
    let payloads: Vec<_> = served
        .iter()
        .map(|i| b.encode_input(i).expect("clustering journals"))
        .collect();
    client
        .select_batch_traced(&features, &payloads)
        .expect("traced batch");
    assert_eq!(client.stats().expect("stats").journaled, 6);
    client.shutdown().expect("shutdown");
    handle.join().expect("daemon exits");

    // Journal → corpus: every payload lands, and decodes back to an
    // input whose extracted features are bit-identical to what was
    // served — so retraining re-measures exactly what production saw.
    let mut corpus = CorpusStore::new(64);
    let report = compact_journal(&journal_dir, &mut corpus).expect("journal compacts");
    assert_eq!(report.records, 6);
    assert_eq!(report.added, 6, "6 distinct point sets");
    for entry in corpus.entries() {
        let payload = entry.payload.as_ref().expect("payload journaled");
        let decoded = b.decode_input(payload).expect("payload decodes");
        assert_eq!(b.extract_all(&decoded).dense(), entry.features.dense());
    }
    std::fs::remove_dir_all(&dir).ok();
}
