//! # intune — input-sensitive algorithmic autotuning
//!
//! A Rust reproduction of *"Autotuning Algorithmic Choice for Input
//! Sensitivity"* (Ding, Ansel, Veeramachaneni, Shen, O'Reilly, Amarasinghe —
//! PLDI 2015): a two-level input learning framework that selects, per input,
//! the best of a small set of autotuned *landmark* configurations of a
//! program with algorithmic choices.
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`core`] — configuration spaces, selectors, input features, reports
//! * [`exec`] — the unified measurement engine: work-stealing executor,
//!   deduplicated measurement plans, memoized cost cache
//! * [`ml`] — k-means, cost-sensitive decision trees, naive Bayes, CV
//! * [`autotuner`] — evolutionary configuration search
//! * [`linalg`] — dense matrices, QR, eigen/SVD solvers
//! * [`sortlib`], [`clusterlib`], [`binpacklib`], [`svdlib`], [`pde`] — the
//!   six benchmark programs with algorithmic choices and input generators
//! * [`learning`] — the two-level pipeline, classifiers, oracles
//! * [`serve`] — model-artifact persistence (save/load with schema
//!   version + checksum), the online selector serving runtimes with
//!   drift monitoring, and the request journal
//! * [`daemon`] — the long-running selection daemon (`intune-wire/1`),
//!   hot artifact reload and shadow evaluation
//! * [`datalog`] — wire-traffic record/replay: segmented capture of
//!   daemon request traffic, deterministic playback, divergence reports
//! * [`retrain`] — continuous learning: journal compaction, the
//!   persistent input corpus, and drift-triggered retraining that pushes
//!   artifact revisions into a live daemon
//! * [`eval`] — corpora and the table/figure reproduction harness
//!
//! ## Quickstart
//!
//! See `examples/quickstart.rs` for an end-to-end run: generate a corpus of
//! sorting inputs, learn landmarks + a production classifier, then deploy it
//! on unseen inputs and compare against the static and dynamic oracles.
//! `examples/serve_quickstart.rs` continues the story across the
//! train/deploy boundary: save the model artifact, reload it, and serve
//! batched selection requests with drift monitoring.

pub use intune_autotuner as autotuner;
pub use intune_binpacklib as binpacklib;
pub use intune_clusterlib as clusterlib;
pub use intune_core as core;
pub use intune_daemon as daemon;
pub use intune_datalog as datalog;
pub use intune_eval as eval;
pub use intune_exec as exec;
pub use intune_learning as learning;
pub use intune_linalg as linalg;
pub use intune_ml as ml;
pub use intune_pde as pde;
pub use intune_retrain as retrain;
pub use intune_serve as serve;
pub use intune_sortlib as sortlib;
pub use intune_svdlib as svdlib;
